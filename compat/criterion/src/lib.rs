//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the benchmark-harness surface it uses: `Criterion`, benchmark groups,
//! `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a plain wall-clock loop with a fixed iteration
//! budget — enough to exercise every benchmark body and print per-iteration
//! times, without upstream's statistical machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub runs one input per
/// routine call regardless, so the variants only carry intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness command-line arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {label:<40} {per_iter:>12} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut setups = 0;
        let mut runs = 0;
        c.benchmark_group("g")
            .sample_size(4)
            .bench_function("b", |b| {
                b.iter_batched(
                    || {
                        setups += 1;
                        setups
                    },
                    |v| runs += v.min(1),
                    BatchSize::SmallInput,
                )
            });
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }
}
