//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for a `Vec` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
