//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the property-testing surface it uses: the [`Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, `prop_recursive`, `boxed`), tuple / range /
//! `Vec` / regex-literal strategies, `proptest::collection::vec`, `any`,
//! `Just`, `prop_oneof!`, and the [`proptest!`] test macro with
//! `ProptestConfig`. Sampling is deterministic (SplitMix64 seeded per
//! case index), so failures reproduce exactly; there is no shrinking —
//! a failing case reports its inputs via `Debug` and panics.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner;

pub mod collection;

pub mod string;

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Picks one of several same-valued strategies uniformly at random.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    l
                );
            }
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                // Rendered before the body runs: the body may consume the inputs.
                let rendered_inputs = String::new()
                    $(+ &format!("\n  {} = {:?}", stringify!($arg), $arg))+;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}\ninputs:{rendered_inputs}");
                }
            }
        }
        $crate::__proptest_item! { ($config) $($rest)* }
    };
}
