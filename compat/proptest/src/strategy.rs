//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each sampled value and samples it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Grows `self` (the leaf strategy) into trees up to `depth` levels
    /// deep by repeatedly applying `recurse`. The size-target parameters
    /// of upstream proptest are accepted but unused: depth alone bounds
    /// the stub's generation.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in so sampled trees vary in depth.
            level = OneOf::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the union; panics on an empty branch list.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        OneOf { branches }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.branches.len() as u64) as usize;
        self.branches[idx].sample(rng)
    }
}

/// Values with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias half the draws toward ASCII (the interesting range for
        // text formats), the rest across the whole scalar-value space.
        if rng.next_u64() & 1 == 0 {
            (rng.below(0x80) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(64) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
}

/// A `Vec` of strategies samples each element in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// String literals act as regex-subset generators (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}
