//! Regex-literal string generation: the subset of regex syntax that
//! string-literal strategies in this workspace use — character classes
//! with ranges and escapes, literal characters, and `{n}` / `{m,n}` /
//! `?` / `*` / `+` quantifiers. Unsupported syntax panics loudly rather
//! than silently generating the wrong language.

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
struct Atom {
    /// The characters this atom may produce.
    choices: Vec<char>,
    /// Inclusive repetition bounds.
    min: u32,
    max: u32,
}

/// Samples one string matching `pattern`.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let span = u64::from(atom.max - atom.min);
        let count = atom.min + rng.below(span + 1) as u32;
        for _ in 0..count {
            let idx = rng.below(atom.choices.len() as u64) as usize;
            out.push(atom.choices[idx]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 2;
                vec![unescape(&chars, i - 1, pattern)]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!(
                    "regex stub: unsupported syntax {:?} in {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    assert!(
        chars.get(i) != Some(&'^'),
        "regex stub: negated classes unsupported in {pattern:?}"
    );
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            unescape(chars, i, pattern)
        } else {
            chars[i]
        };
        // A trailing `-x` range?
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            i += 2;
            let hi = if chars[i] == '\\' {
                i += 1;
                unescape(chars, i, pattern)
            } else {
                chars[i]
            };
            assert!(lo <= hi, "regex stub: inverted range in {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
        } else {
            set.push(lo);
        }
        i += 1;
    }
    assert!(
        i < chars.len(),
        "regex stub: unterminated class in {pattern:?}"
    );
    assert!(!set.is_empty(), "regex stub: empty class in {pattern:?}");
    (set, i + 1)
}

fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (u32, u32, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("regex stub: unterminated {{}} in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("regex stub: bad quantifier"),
                    hi.parse().expect("regex stub: bad quantifier"),
                ),
                None => {
                    let n = body.parse().expect("regex stub: bad quantifier");
                    (n, n)
                }
            };
            assert!(min <= max, "regex stub: inverted quantifier in {pattern:?}");
            (min, max, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        // Star and plus get a bounded stand-in: generation must terminate.
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        _ => (1, 1, i),
    }
}

fn unescape(chars: &[char], i: usize, pattern: &str) -> char {
    match chars.get(i) {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('0') => '\0',
        Some(&c) if "\\-][{}().^$|*+?".contains(c) => c,
        other => panic!("regex stub: unsupported escape {other:?} in {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::sample_regex;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_class_with_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..100 {
            let s = sample_regex("[ -~\\n\\t]{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn identifier_shape() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let s = sample_regex("[a-z][a-z0-9_]{0,12}", &mut rng);
            let mut it = s.chars();
            assert!(it.next().unwrap().is_ascii_lowercase());
            assert!(it.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            assert!(s.chars().count() <= 13);
        }
    }

    #[test]
    fn fixed_count_and_literals() {
        let mut rng = TestRng::for_case(2);
        let s = sample_regex("ab[01]{3}c?", &mut rng);
        assert!(s.starts_with("ab"));
        let tail = &s[2..];
        assert!(tail.len() == 3 || tail.len() == 4);
        assert!(tail[..3].chars().all(|c| c == '0' || c == '1'));
    }
}
