//! Deterministic case generation and failure reporting.

/// Per-test configuration; only `cases` is meaningful in the stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to sample per property.
    pub cases: u32,
    /// Accepted for API parity; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (from `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 stream, seeded per case so every case reproduces exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the `case`-th sample of a property.
    pub fn for_case(case: u32) -> Self {
        // Golden-ratio stride separates per-case streams.
        TestRng {
            state: 0x005E_ED0F_0B57_AC1E ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
