//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small PRNG surface it actually uses: seedable `StdRng`/`SmallRng`,
//! `gen_range` over integer ranges, `gen_bool`/`gen_ratio`, and slice
//! shuffling. The generator is SplitMix64 — deterministic, well mixed,
//! and identical across platforms, which is all the callers (seeded
//! input generators and the random-linearization ablation) require. The
//! bit streams differ from upstream `rand`, so any snapshot derived from
//! seeded data is regenerated against this implementation.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a uniform sampler over an interval. The single blanket
/// [`SampleRange`] impl below is what lets type inference flow in both
/// directions (from the range's element type to the result and back).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Draws a value in `[0, span)` without modulo bias (widening multiply).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_span(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] from a full-width random word.
pub trait Standard: Sized {
    /// Draws an unconstrained value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws an unconstrained value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws one value from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, exactly representable in f64.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio by zero");
        assert!(numerator <= denominator, "gen_ratio numerator too large");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one 64-bit word of state, full-period, strongly mixed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Same engine as [`StdRng`]; kept as a distinct name for API parity.
    pub type SmallRng = StdRng;
}

/// Random sequence operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing a seeded Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let c = rng.gen_range(b'a'..=b'z');
            assert!(c.is_ascii_lowercase());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
