//! Criterion microbenchmarks for the compiler pipeline itself: front-end
//! throughput, optimizer, call-graph construction, inline expansion, and
//! VM execution speed. These measure the *implementation*, complementing
//! the table binaries that measure the *result*.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use impact_bench::prepared_module;
use impact_callgraph::CallGraph;
use impact_cfront::{compile, lex, parse_into, ParseContext, Source};
use impact_inline::{inline_module, InlineConfig};
use impact_vm::{run, VmConfig};
use impact_workloads::benchmark;

fn sources_of(name: &str) -> Vec<Source> {
    benchmark(name).expect("known benchmark").sources()
}

fn bench_frontend(c: &mut Criterion) {
    let sources = sources_of("grep");
    let mut g = c.benchmark_group("frontend");
    g.bench_function("lex_grep", |b| {
        b.iter(|| {
            for (i, s) in sources.iter().enumerate() {
                std::hint::black_box(lex(i as u32, &s.text).expect("lexes"));
            }
        })
    });
    g.bench_function("parse_grep", |b| {
        let tokens: Vec<_> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| lex(i as u32, &s.text).expect("lexes"))
            .collect();
        b.iter(|| {
            let mut ctx = ParseContext::new();
            for t in &tokens {
                parse_into(&mut ctx, t).expect("parses");
            }
            std::hint::black_box(ctx);
        })
    });
    g.bench_function("compile_grep", |b| {
        b.iter(|| std::hint::black_box(compile(&sources).expect("compiles")))
    });
    g.finish();
}

fn bench_midend(c: &mut Criterion) {
    let b_grep = benchmark("grep").unwrap();
    let module = prepared_module(&b_grep).unwrap();
    let input = b_grep.run_input(0);
    let cfg = VmConfig::default();
    let baseline = run(&module, input.inputs.clone(), input.args.clone(), &cfg).unwrap();
    let profile = baseline.profile.averaged();

    let mut g = c.benchmark_group("midend");
    g.bench_function("optimize_grep", |b| {
        b.iter_batched(
            || b_grep.compile().unwrap(),
            |mut m| {
                impact_opt::optimize_module(&mut m);
                std::hint::black_box(m);
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("callgraph_grep", |b| {
        b.iter(|| std::hint::black_box(CallGraph::build(&module, &profile)))
    });
    g.bench_function("inline_grep", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| {
                std::hint::black_box(inline_module(&mut m, &profile, &InlineConfig::default()));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    g.sample_size(10);
    for name in ["compress", "wc"] {
        let b = benchmark(name).unwrap();
        let module = prepared_module(&b).unwrap();
        let input = b.run_input(0);
        g.bench_function(format!("run_{name}"), |bench| {
            bench.iter(|| {
                std::hint::black_box(
                    run(
                        &module,
                        input.inputs.clone(),
                        input.args.clone(),
                        &VmConfig::default(),
                    )
                    .expect("runs"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_frontend, bench_midend, bench_vm);
criterion_main!(benches);
