//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * `ablate threshold` — sweep the arc-weight threshold (§3.4's
//!   compilation-time cutoff doubles as the *unsafe* low-weight rule);
//! * `ablate budget` — sweep the code-growth budget (§2.3.1);
//! * `ablate linearization` — the paper's node-weight order vs random and
//!   adversarial orders (§3.3).
//!
//! Each prints achieved call elimination and code growth per setting,
//! averaged over the suite (use `--bench <name>` for one benchmark).

use impact_bench::{mean_sd, prepared_module, profile_benchmark, row, HarnessConfig};
use impact_inline::{inline_module, InlineConfig, Linearization};
use impact_workloads::{all_benchmarks, Benchmark};

struct Outcome {
    call_dec: f64,
    code_inc: f64,
    expanded: usize,
}

fn measure(b: &Benchmark, cfg: &HarnessConfig) -> Outcome {
    let module = prepared_module(b).expect("compiles");
    let merged = profile_benchmark(b, &module, cfg).expect("profiles");
    let averaged = merged.averaged();
    let mut inlined = module.clone();
    let report = inline_module(&mut inlined, &averaged, &cfg.inline);
    let merged_after = profile_benchmark(b, &inlined, cfg).expect("re-profiles");
    let call_dec = if merged.calls == 0 {
        0.0
    } else {
        100.0 * merged.calls.saturating_sub(merged_after.calls) as f64 / merged.calls as f64
    };
    Outcome {
        call_dec,
        code_inc: report.code_increase_percent(),
        expanded: report.expanded.len(),
    }
}

fn sweep(
    benchmarks: &[Benchmark],
    label: &str,
    settings: Vec<(String, InlineConfig)>,
    quick: bool,
) {
    let widths = [26, 10, 10, 10];
    println!("Ablation: {label}");
    println!(
        "{}",
        row(
            &[
                "setting".into(),
                "call dec".into(),
                "code inc".into(),
                "arcs".into(),
            ],
            &widths,
        )
    );
    for (name, inline) in settings {
        let cfg = HarnessConfig {
            max_runs: if quick { 2 } else { 4 },
            inline,
            ..HarnessConfig::default()
        };
        let outcomes: Vec<Outcome> = benchmarks.iter().map(|b| measure(b, &cfg)).collect();
        let decs: Vec<f64> = outcomes.iter().map(|o| o.call_dec).collect();
        let incs: Vec<f64> = outcomes.iter().map(|o| o.code_inc).collect();
        let arcs: usize = outcomes.iter().map(|o| o.expanded).sum();
        println!(
            "{}",
            row(
                &[
                    name,
                    format!("{:.1}%", mean_sd(&decs).0),
                    format!("{:.1}%", mean_sd(&incs).0),
                    arcs.to_string(),
                ],
                &widths,
            )
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let benchmarks: Vec<Benchmark> = match args.iter().position(|a| a == "--bench") {
        Some(i) => {
            let name = args.get(i + 1).expect("--bench needs a name");
            vec![impact_workloads::benchmark(name).expect("known benchmark")]
        }
        None => all_benchmarks(),
    };

    if which == "threshold" || which == "all" {
        let settings = [1u64, 10, 100, 1000, 10000]
            .into_iter()
            .map(|t| {
                (
                    format!("weight_threshold={t}"),
                    InlineConfig {
                        weight_threshold: t,
                        ..InlineConfig::default()
                    },
                )
            })
            .collect();
        sweep(
            &benchmarks,
            "arc-weight threshold (paper: 10)",
            settings,
            quick,
        );
    }
    if which == "budget" || which == "all" {
        let settings = [1.05f64, 1.2, 1.5, 2.0, 3.0]
            .into_iter()
            .map(|l| {
                (
                    format!("code_growth_limit={l}"),
                    InlineConfig {
                        code_growth_limit: l,
                        ..InlineConfig::default()
                    },
                )
            })
            .collect();
        sweep(&benchmarks, "code-growth budget (§2.3.1)", settings, quick);
    }
    if which == "linearization" || which == "all" {
        let settings = vec![
            (
                "node-weight (paper)".to_string(),
                InlineConfig {
                    linearization: Linearization::NodeWeight,
                    ..InlineConfig::default()
                },
            ),
            (
                "source order".to_string(),
                InlineConfig {
                    linearization: Linearization::SourceOrder,
                    ..InlineConfig::default()
                },
            ),
            (
                "random(7)".to_string(),
                InlineConfig {
                    linearization: Linearization::Random(7),
                    ..InlineConfig::default()
                },
            ),
            (
                "reverse node-weight".to_string(),
                InlineConfig {
                    linearization: Linearization::ReverseNodeWeight,
                    ..InlineConfig::default()
                },
            ),
        ];
        sweep(
            &benchmarks,
            "linearization heuristic (§3.3)",
            settings,
            quick,
        );
    }
}
