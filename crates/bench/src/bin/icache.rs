//! Extension experiment — instruction-cache behavior before and after
//! inline expansion (the paper's §5 conclusion, quantified): replay each
//! benchmark's dynamic instruction stream through a small direct-mapped
//! cache and compare miss ratios. Expansion grows the static code but
//! *straightens* the hot path, removing caller/callee mapping conflicts.
//!
//! With `--layout`, a third column applies profile-guided block layout
//! (the paper's trace-selection lineage, `impact_opt::reorder_blocks`)
//! on top of inlining.
//!
//! Usage: `cargo run --release -p impact-bench --bin icache [--quick]
//! [--size KB] [--assoc N] [--layout]`

use impact_bench::{mean_sd, prepared_module, row, HarnessConfig};
use impact_inline::inline_module;
use impact_opt::reorder_blocks;
use impact_vm::{run, IcacheConfig, IcacheStats, VmConfig};

fn accumulate(
    module: &impact_il::Module,
    runs: &[(Vec<impact_vm::NamedFile>, Vec<String>)],
    vm: &VmConfig,
) -> IcacheStats {
    let mut total = IcacheStats::default();
    for (inputs, args) in runs {
        let out = run(module, inputs.clone(), args.clone(), vm).expect("runs");
        let s = out.icache.expect("icache enabled");
        total.accesses += s.accesses;
        total.misses += s.misses;
    }
    total
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let get = |flag: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let size_kb = get("--size", 1);
    let assoc = get("--assoc", 1) as u32;
    let with_layout = args.iter().any(|a| a == "--layout");

    let hcfg = HarnessConfig {
        max_runs: if quick { 1 } else { 3 },
        ..HarnessConfig::default()
    };
    let icache = IcacheConfig {
        size_bytes: size_kb << 10,
        line_bytes: 32,
        assoc,
    };
    let vm = VmConfig {
        icache: Some(icache),
        ..VmConfig::default()
    };

    println!(
        "Instruction cache: {size_kb} KiB, 32-byte lines, {assoc}-way, LRU (extension; paper §5)"
    );
    let widths = [10, 12, 12, 12, 9];
    let mut header = vec![
        "benchmark".to_string(),
        "miss before".to_string(),
        "miss after".to_string(),
    ];
    if with_layout {
        header.push("+layout".to_string());
    }
    header.push("change".to_string());
    println!("{}", row(&header, &widths));
    let mut befores = Vec::new();
    let mut afters = Vec::new();
    let mut laid = Vec::new();
    for b in impact_workloads::all_benchmarks() {
        let module = prepared_module(&b).expect("compiles");
        let runs = b.profile_run_set(hcfg.max_runs);
        let before = accumulate(&module, &runs, &vm);

        let profile = impact_bench::profile_benchmark(&b, &module, &hcfg).expect("profiles");
        let mut inlined = module.clone();
        inline_module(&mut inlined, &profile.averaged(), &hcfg.inline);
        let after = accumulate(&inlined, &runs, &vm);

        let b_ratio = 100.0 * before.miss_ratio();
        let a_ratio = 100.0 * after.miss_ratio();
        befores.push(b_ratio);
        afters.push(a_ratio);

        let mut cells = vec![
            b.name.to_string(),
            format!("{b_ratio:.3}%"),
            format!("{a_ratio:.3}%"),
        ];
        let final_ratio = if with_layout {
            // Re-profile the inlined module to get block counts that
            // match its shape, then lay blocks out along the hot paths.
            let inlined_profile =
                impact_bench::profile_benchmark(&b, &inlined, &hcfg).expect("re-profiles");
            let mut arranged = inlined.clone();
            for (fi, f) in arranged.functions.iter_mut().enumerate() {
                reorder_blocks(
                    f,
                    &inlined_profile.block_counts[fi],
                    &inlined_profile.branch_taken[fi],
                );
            }
            let l = accumulate(&arranged, &runs, &vm);
            let l_ratio = 100.0 * l.miss_ratio();
            laid.push(l_ratio);
            cells.push(format!("{l_ratio:.3}%"));
            l_ratio
        } else {
            a_ratio
        };
        cells.push(format!("{:+.3}%", final_ratio - b_ratio));
        println!("{}", row(&cells, &widths));
    }
    let mut cells = vec![
        "AVG".to_string(),
        format!("{:.3}%", mean_sd(&befores).0),
        format!("{:.3}%", mean_sd(&afters).0),
    ];
    let final_avg = if with_layout {
        let avg = mean_sd(&laid).0;
        cells.push(format!("{avg:.3}%"));
        avg
    } else {
        mean_sd(&afters).0
    };
    cells.push(format!("{:+.3}%", final_avg - mean_sd(&befores).0));
    println!("{}", row(&cells, &widths));
}
