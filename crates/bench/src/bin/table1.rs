//! Regenerates **Table 1 — Benchmark characteristics**: lines of C,
//! number of profiled runs, average dynamic IL instructions and control
//! transfers per run (in thousands), and the input description.
//!
//! Run with `--quick` to profile 2 runs per benchmark instead of the full
//! paper-shaped set.

use impact_bench::{evaluate, row, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = HarnessConfig {
        max_runs: if quick { 2 } else { u32::MAX },
        ..HarnessConfig::default()
    };
    let widths = [10, 8, 6, 10, 10, 34];
    println!("Table 1. Benchmark characteristics.");
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "C lines".into(),
                "runs".into(),
                "IL's".into(),
                "control".into(),
                "input description".into(),
            ],
            &widths,
        )
    );
    for b in impact_workloads::all_benchmarks() {
        let e = evaluate(&b, &cfg).expect("evaluation runs");
        println!(
            "{}",
            row(
                &[
                    e.name.clone(),
                    e.c_lines.to_string(),
                    e.runs.to_string(),
                    format!("{}K", e.avg_ils / 1000),
                    format!("{}K", e.avg_control / 1000),
                    format!("  {}", e.input_description),
                ],
                &widths,
            )
        );
    }
}
