//! Regenerates **Table 2 — Static function call characteristics**: the
//! number of static call sites and the percentage that is external /
//! through-pointer / unsafe / safe. Only safe sites are candidates for
//! inline expansion.

use impact_bench::{evaluate, mean_sd, row, HarnessConfig};
use impact_inline::SiteClass;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = HarnessConfig {
        max_runs: if quick { 2 } else { u32::MAX },
        ..HarnessConfig::default()
    };
    let widths = [10, 7, 10, 9, 8, 7];
    println!("Table 2. Static function call characteristics.");
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "total".into(),
                "external".into(),
                "pointer".into(),
                "unsafe".into(),
                "safe".into(),
            ],
            &widths,
        )
    );
    let mut per_class: [Vec<f64>; 4] = Default::default();
    for b in impact_workloads::all_benchmarks() {
        let e = evaluate(&b, &cfg).expect("evaluation runs");
        let t = e.static_totals;
        let pct = [
            t.percent(SiteClass::External),
            t.percent(SiteClass::Pointer),
            t.percent(SiteClass::Unsafe),
            t.percent(SiteClass::Safe),
        ];
        for (acc, p) in per_class.iter_mut().zip(pct) {
            acc.push(p);
        }
        println!(
            "{}",
            row(
                &[
                    e.name.clone(),
                    t.total().to_string(),
                    format!("{:.1}%", pct[0]),
                    format!("{:.1}%", pct[1]),
                    format!("{:.1}%", pct[2]),
                    format!("{:.1}%", pct[3]),
                ],
                &widths,
            )
        );
    }
    let avgs: Vec<String> = per_class
        .iter()
        .map(|v| format!("{:.1}%", mean_sd(v).0))
        .collect();
    println!(
        "{}",
        row(
            &[
                "AVG".into(),
                "".into(),
                avgs[0].clone(),
                avgs[1].clone(),
                avgs[2].clone(),
                avgs[3].clone(),
            ],
            &widths,
        )
    );
}
