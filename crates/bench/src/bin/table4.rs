//! Regenerates **Table 4 — Inline expansion results**: static code-size
//! increase, dynamic call decrease, and ILs / control transfers executed
//! between calls after expansion, with AVG and SD rows. Pass `--post-mix`
//! to also print the §4.4 post-inline dynamic call mix (the paper's
//! 56.1% / 2.8% / 18.0% / 23.1% statistic).

use impact_bench::{evaluate, mean_sd, row, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let post_mix = std::env::args().any(|a| a == "--post-mix");
    let cfg = HarnessConfig {
        max_runs: if quick { 2 } else { u32::MAX },
        ..HarnessConfig::default()
    };
    let widths = [10, 9, 9, 13, 13];
    println!("Table 4. Inline expansion results.");
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "code inc".into(),
                "call dec".into(),
                "IL's per call".into(),
                "CT's per call".into(),
            ],
            &widths,
        )
    );
    let mut inc = Vec::new();
    let mut dec = Vec::new();
    let mut ipc = Vec::new();
    let mut cpc = Vec::new();
    let mut mixes: [Vec<f64>; 4] = Default::default();
    for b in impact_workloads::all_benchmarks() {
        let e = evaluate(&b, &cfg).expect("evaluation runs");
        inc.push(e.code_inc_percent);
        dec.push(e.call_dec_percent);
        ipc.push(e.ils_per_call as f64);
        cpc.push(e.cts_per_call as f64);
        for (acc, m) in mixes.iter_mut().zip(e.post_mix) {
            acc.push(m);
        }
        println!(
            "{}",
            row(
                &[
                    e.name.clone(),
                    format!("{:.0}%", e.code_inc_percent),
                    format!("{:.0}%", e.call_dec_percent),
                    e.ils_per_call.to_string(),
                    e.cts_per_call.to_string(),
                ],
                &widths,
            )
        );
    }
    let (inc_m, inc_s) = mean_sd(&inc);
    let (dec_m, dec_s) = mean_sd(&dec);
    let (ipc_m, ipc_s) = mean_sd(&ipc);
    let (cpc_m, cpc_s) = mean_sd(&cpc);
    println!(
        "{}",
        row(
            &[
                "AVG".into(),
                format!("{inc_m:.1}%"),
                format!("{dec_m:.1}%"),
                format!("{ipc_m:.0}"),
                format!("{cpc_m:.0}"),
            ],
            &widths,
        )
    );
    println!(
        "{}",
        row(
            &[
                "SD".into(),
                format!("{inc_s:.1}%"),
                format!("{dec_s:.1}%"),
                format!("{ipc_s:.0}"),
                format!("{cpc_s:.0}"),
            ],
            &widths,
        )
    );
    if post_mix {
        println!();
        println!("Post-inline dynamic call mix (paper §4.4: 56.1% external, 2.8% pointer, 18.0% unsafe, 23.1% safe):");
        println!(
            "  external {:.1}%  pointer {:.1}%  unsafe {:.1}%  safe {:.1}%",
            mean_sd(&mixes[0]).0,
            mean_sd(&mixes[1]).0,
            mean_sd(&mixes[2]).0,
            mean_sd(&mixes[3]).0,
        );
    }
}
