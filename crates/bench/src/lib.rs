//! # impact-bench — the experiment harness
//!
//! Reruns the paper's evaluation (§4) end to end and regenerates each of
//! its four tables. The pipeline per benchmark follows §4 exactly:
//!
//! 1. compile the benchmark (program + mini library);
//! 2. apply constant folding and jump optimization **before** inline
//!    expansion (§4.4: "constant folding and jump optimization were
//!    applied before the inline expansion procedure, but not after it");
//! 3. profile over the benchmark's representative inputs (Table 1's
//!    `runs` column) and average;
//! 4. classify call sites (Tables 2 and 3);
//! 5. inline-expand and re-profile the same inputs (Table 4).
//!
//! Numbers will not equal the paper's absolute values (different
//! programs, different decade); what reproduces is the *shape* — see
//! `EXPERIMENTS.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use impact_callgraph::CallGraph;
use impact_il::Module;
use impact_inline::{classify, inline_module, ClassTotals, InlineConfig, InlineReport};
use impact_opt::{constant_fold, jump_optimization};
use impact_vm::{profile_runs, Profile, VmConfig, VmError};
use impact_workloads::Benchmark;

/// Everything measured for one benchmark: the union of what Tables 1–4
/// report.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Benchmark name.
    pub name: String,
    /// Lines of C (Table 1).
    pub c_lines: usize,
    /// Number of profiled runs (Table 1).
    pub runs: u32,
    /// Input description (Table 1).
    pub input_description: String,
    /// Average dynamic IL instructions per run (Table 1's `IL's`).
    pub avg_ils: u64,
    /// Average dynamic control transfers per run, excluding call/return
    /// (Table 1's `control`).
    pub avg_control: u64,
    /// Static call-site classification (Table 2).
    pub static_totals: ClassTotals,
    /// Dynamic (weighted) classification (Table 3).
    pub dynamic_totals: ClassTotals,
    /// Static code-size increase percent (Table 4's `code inc`).
    pub code_inc_percent: f64,
    /// Dynamic call decrease percent (Table 4's `call dec`).
    pub call_dec_percent: f64,
    /// ILs executed between dynamic calls after inlining (Table 4).
    pub ils_per_call: u64,
    /// Control transfers between dynamic calls after inlining (Table 4).
    pub cts_per_call: u64,
    /// Post-inline dynamic call mix (external, pointer, unsafe, safe)
    /// percentages — the §4.4 prose statistic.
    pub post_mix: [f64; 4],
    /// The inliner's own report (sizes, expansions, removals).
    pub report: InlineReport,
}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Cap on the number of runs per benchmark (use `u32::MAX` for the
    /// full paper-shaped set; smaller values keep tests fast).
    pub max_runs: u32,
    /// Inline-expander parameters.
    pub inline: InlineConfig,
    /// VM limits.
    pub vm: VmConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            max_runs: u32::MAX,
            // A 1.2x code budget is the operating point that reproduces
            // the paper's Table 4 trade-off (~17% growth for ~59% call
            // elimination); see the `ablate budget` sweep.
            inline: InlineConfig {
                code_growth_limit: 1.2,
                ..InlineConfig::default()
            },
            vm: VmConfig {
                max_steps: 2_000_000_000,
                ..VmConfig::default()
            },
        }
    }
}

/// Compiles a benchmark and applies the paper's pre-inline optimizations.
///
/// # Errors
///
/// Propagates compile errors (a bug in the bundled sources).
pub fn prepared_module(b: &Benchmark) -> Result<Module, impact_cfront::CompileError> {
    let mut module = b.compile()?;
    for f in &mut module.functions {
        constant_fold(f);
        jump_optimization(f);
    }
    Ok(module)
}

/// Profiles a module over a benchmark's run set; returns the **merged**
/// profile (call [`Profile::averaged`] for per-run weights).
///
/// # Errors
///
/// Fails if any run traps.
pub fn profile_benchmark(
    b: &Benchmark,
    module: &Module,
    cfg: &HarnessConfig,
) -> Result<Profile, VmError> {
    let runs = b.profile_run_set(cfg.max_runs);
    let (merged, _) = profile_runs(module, &runs, &cfg.vm)?;
    Ok(merged)
}

/// Runs the full §4 pipeline on one benchmark.
///
/// # Errors
///
/// Fails on compile errors (reported as a panic — the sources are part of
/// this crate) or VM traps.
pub fn evaluate(b: &Benchmark, cfg: &HarnessConfig) -> Result<Evaluation, VmError> {
    let module = prepared_module(b).expect("bundled benchmark compiles");
    let n_runs = b.runs.min(cfg.max_runs);

    // Baseline profile.
    let merged = profile_benchmark(b, &module, cfg)?;
    let averaged = merged.averaged();

    // Classification on the baseline (Tables 2 and 3).
    let graph = CallGraph::build(&module, &averaged);
    let classification = classify(&module, &graph, &cfg.inline);
    let static_totals = classification.static_totals();
    let dynamic_totals = classification.dynamic_totals();

    // Inline expansion.
    let mut inlined = module.clone();
    let report = inline_module(&mut inlined, &averaged, &cfg.inline);

    // Re-profile the same inputs.
    let merged_after = profile_benchmark(b, &inlined, cfg)?;
    let averaged_after = merged_after.averaged();

    // Post-inline dynamic mix.
    let graph_after = CallGraph::build(&inlined, &averaged_after);
    let classification_after = classify(&inlined, &graph_after, &cfg.inline);
    let mix = classification_after.dynamic_totals();
    let post_mix = [
        mix.percent(impact_inline::SiteClass::External),
        mix.percent(impact_inline::SiteClass::Pointer),
        mix.percent(impact_inline::SiteClass::Unsafe),
        mix.percent(impact_inline::SiteClass::Safe),
    ];

    let call_dec_percent = if merged.calls == 0 {
        0.0
    } else {
        100.0 * merged.calls.saturating_sub(merged_after.calls) as f64 / merged.calls as f64
    };

    Ok(Evaluation {
        name: b.name.to_string(),
        c_lines: b.c_lines(),
        runs: n_runs,
        input_description: b.input_description.to_string(),
        avg_ils: averaged.il_executed,
        avg_control: averaged.control_transfers,
        static_totals,
        dynamic_totals,
        code_inc_percent: report.code_increase_percent(),
        call_dec_percent,
        ils_per_call: averaged_after.ils_per_call(),
        cts_per_call: averaged_after.cts_per_call(),
        post_mix,
        report,
    })
}

/// Evaluates every benchmark of the suite.
///
/// # Errors
///
/// Fails on the first benchmark that traps.
pub fn evaluate_all(cfg: &HarnessConfig) -> Result<Vec<Evaluation>, VmError> {
    impact_workloads::all_benchmarks()
        .iter()
        .map(|b| evaluate(b, cfg))
        .collect()
}

/// Evaluates every benchmark with per-benchmark isolation, the batch
/// supervisor's contract applied to the harness: one benchmark trapping
/// or panicking no longer sinks the whole table. Returns the successful
/// evaluations plus `(name, error)` pairs for the isolated failures.
pub fn evaluate_all_supervised(cfg: &HarnessConfig) -> (Vec<Evaluation>, Vec<(String, String)>) {
    let mut evaluations = Vec::new();
    let mut failures = Vec::new();
    for b in impact_workloads::all_benchmarks() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| evaluate(&b, cfg)));
        match outcome {
            Ok(Ok(e)) => evaluations.push(e),
            Ok(Err(e)) => failures.push((b.name.to_string(), e.to_string())),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                failures.push((b.name.to_string(), format!("panicked: {msg}")));
            }
        }
    }
    (evaluations, failures)
}

/// Mean and (population) standard deviation, as the paper's Table 4
/// AVG/SD rows.
pub fn mean_sd(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Formats one row of an aligned text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        if i == 0 {
            s.push_str(&format!("{c:<w$}"));
        } else {
            s.push_str(&format!("{c:>w$}"));
        }
        s.push_str("  ");
    }
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> HarnessConfig {
        HarnessConfig {
            max_runs: 2,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn evaluate_produces_consistent_numbers_for_grep() {
        let b = impact_workloads::benchmark("grep").unwrap();
        let e = evaluate(&b, &quick_cfg()).unwrap();
        assert_eq!(e.runs, 2);
        assert!(e.avg_ils > 50_000);
        assert!(e.static_totals.total() > 20);
        // Safe sites are a minority of static sites but a majority of
        // dynamic calls (the paper's central observation).
        let static_safe = e.static_totals.percent(impact_inline::SiteClass::Safe);
        let dyn_safe = e.dynamic_totals.percent(impact_inline::SiteClass::Safe);
        assert!(static_safe < 50.0, "static safe {static_safe:.1}%");
        assert!(dyn_safe > 50.0, "dynamic safe {dyn_safe:.1}%");
        assert!(e.call_dec_percent > 90.0);
        // Percentages sum to ~100.
        let sum: f64 = e.post_mix.iter().sum();
        assert!((sum - 100.0).abs() < 0.5, "post mix sums to {sum}");
    }

    #[test]
    fn supervised_evaluation_isolates_failures() {
        let cfg = HarnessConfig {
            max_runs: 1,
            ..HarnessConfig::default()
        };
        let (evaluations, failures) = evaluate_all_supervised(&cfg);
        assert!(
            failures.is_empty(),
            "bundled benchmarks should all evaluate: {failures:?}"
        );
        assert_eq!(evaluations.len(), impact_workloads::all_benchmarks().len());
    }

    #[test]
    fn mean_sd_matches_hand_computation() {
        let (m, s) = mean_sd(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(mean_sd(&[]), (0.0, 0.0));
    }

    #[test]
    fn row_aligns_columns() {
        let r = row(&["name".into(), "12".into(), "3".into()], &[8, 6, 6]);
        assert!(r.starts_with("name    "));
        assert!(r.ends_with("3"));
    }
}
