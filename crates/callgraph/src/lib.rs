//! # impact-callgraph — the weighted call graph
//!
//! The program representation the paper's inline expander reasons over
//! (§2.2): a graph `G = (N, E, main)` where each node is a function
//! weighted by its expected execution count and each arc is a *static call
//! site* weighted by its expected invocation count.
//!
//! Missing information is modelled with two special nodes, exactly as in
//! §3.2:
//!
//! * **`$$$` (external)** — every call to an external function becomes an
//!   arc to `$$$`, and `$$$` has a zero-weight arc back to *every* user
//!   function: an external function must be assumed to call anything.
//! * **`###` (pointer)** — every call through a pointer becomes an arc to
//!   `###`, and `###` has arcs to every function whose address is taken
//!   (to *every* function once the module calls any external, since then
//!   the address-taken set can no longer be computed precisely).
//!
//! These conservative arcs make cycle detection and reachability sound:
//! recursion through a callback is detected, and a called-once function
//! cannot be deleted if an external might re-enter it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

use impact_il::{CallSiteId, Callee, FuncId, Module};
use impact_vm::Profile;

/// Identifies a node of the call graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies an arc of the call graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

/// What a node stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A user function.
    Func(FuncId),
    /// The `$$$` summary node for all external functions.
    External,
    /// The `###` summary node for all calls through pointers.
    Pointer,
}

/// One node with its weight (expected execution count — the profile's
/// function entry count).
#[derive(Clone, Debug)]
pub struct Node {
    /// What this node is.
    pub kind: NodeKind,
    /// Expected execution count.
    pub weight: u64,
    /// Outgoing arcs.
    pub out_arcs: Vec<ArcId>,
    /// Incoming arcs.
    pub in_arcs: Vec<ArcId>,
}

/// One arc. Real call sites carry their [`CallSiteId`]; the synthetic
/// worst-case arcs out of `$$$`/`###` carry `None`.
#[derive(Clone, Debug)]
pub struct Arc {
    /// This arc's id.
    pub id: ArcId,
    /// The static call site, for arcs that come from a real call
    /// instruction.
    pub site: Option<CallSiteId>,
    /// Caller node.
    pub caller: NodeId,
    /// Callee node.
    pub callee: NodeId,
    /// Expected invocation count (the profile's call-site count; synthetic
    /// arcs weigh 0).
    pub weight: u64,
}

/// The weighted call graph of one module + profile.
#[derive(Clone, Debug)]
pub struct CallGraph {
    nodes: Vec<Node>,
    arcs: Vec<Arc>,
    external: Option<NodeId>,
    pointer: Option<NodeId>,
    main: Option<NodeId>,
}

impl CallGraph {
    /// Builds the graph from a module and its (averaged) profile,
    /// following §3.2's construction procedure: one node per function,
    /// arcs for static calls, then worst-case handling of external
    /// functions and calls through pointers.
    pub fn build(module: &Module, profile: &Profile) -> CallGraph {
        let mut g = CallGraph {
            nodes: Vec::with_capacity(module.functions.len() + 2),
            arcs: Vec::new(),
            external: None,
            pointer: None,
            main: module.main_id().map(|f| NodeId(f.0)),
        };
        for (i, _) in module.functions.iter().enumerate() {
            let f = FuncId::from_index(i);
            g.nodes.push(Node {
                kind: NodeKind::Func(f),
                weight: profile.func_weight(f),
                out_arcs: Vec::new(),
                in_arcs: Vec::new(),
            });
        }
        let has_external_calls = module.has_external_calls();
        let has_pointer_calls = module
            .all_call_sites()
            .iter()
            .any(|(_, _, c)| matches!(c, Callee::Reg(_)));
        if has_external_calls {
            g.external = Some(g.add_node(NodeKind::External));
        }
        if has_pointer_calls {
            g.pointer = Some(g.add_node(NodeKind::Pointer));
        }
        // Real arcs: one per static call site.
        for (caller, site, callee) in module.all_call_sites() {
            let caller_node = NodeId(caller.0);
            let weight = profile.site_weight(site);
            let callee_node = match callee {
                Callee::Func(f) => NodeId(f.0),
                Callee::Ext(_) => g.external.expect("external node exists"),
                Callee::Reg(_) => g.pointer.expect("pointer node exists"),
            };
            g.add_arc(Some(site), caller_node, callee_node, weight);
        }
        // Worst-case arcs out of $$$: external code may call any function.
        if let Some(ext) = g.external {
            for i in 0..module.functions.len() {
                g.add_arc(None, ext, NodeId(i as u32), 0);
            }
        }
        // Worst-case arcs out of ###: any address-taken function — or any
        // function at all when externals poison the address-taken set.
        if let Some(ptr) = g.pointer {
            if has_external_calls {
                for i in 0..module.functions.len() {
                    g.add_arc(None, ptr, NodeId(i as u32), 0);
                }
            } else {
                let mut taken: Vec<FuncId> = module.address_taken_funcs().into_iter().collect();
                taken.sort();
                for f in taken {
                    g.add_arc(None, ptr, NodeId(f.0), 0);
                }
            }
        }
        g
    }

    /// [`CallGraph::build`] with pipeline telemetry: records a
    /// `callgraph:build` span plus node/arc counters on `obs`. With a
    /// disabled handle this is exactly [`CallGraph::build`].
    pub fn build_with(
        module: &Module,
        profile: &Profile,
        obs: &impact_obs::Telemetry,
    ) -> CallGraph {
        let _s = obs.span("callgraph:build");
        let g = CallGraph::build(module, profile);
        obs.count("callgraph:nodes", g.nodes.len() as u64);
        obs.count("callgraph:arcs", g.arcs.len() as u64);
        g
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            weight: 0,
            out_arcs: Vec::new(),
            in_arcs: Vec::new(),
        });
        id
    }

    fn add_arc(&mut self, site: Option<CallSiteId>, caller: NodeId, callee: NodeId, weight: u64) {
        let id = ArcId(self.arcs.len() as u32);
        self.arcs.push(Arc {
            id,
            site,
            caller,
            callee,
            weight,
        });
        self.nodes[caller.0 as usize].out_arcs.push(id);
        self.nodes[callee.0 as usize].in_arcs.push(id);
    }

    /// The node for a user function.
    pub fn node_of(&self, f: FuncId) -> NodeId {
        NodeId(f.0)
    }

    /// The `$$$` node, if the module calls external functions.
    pub fn external_node(&self) -> Option<NodeId> {
        self.external
    }

    /// The `###` node, if the module calls through pointers.
    pub fn pointer_node(&self) -> Option<NodeId> {
        self.pointer
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All arcs (real call sites first, then synthetic worst-case arcs).
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.0 as usize]
    }

    /// An arc by id.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn arc(&self, a: ArcId) -> &Arc {
        &self.arcs[a.0 as usize]
    }

    /// The arc corresponding to a real call site, if any.
    pub fn arc_for_site(&self, site: CallSiteId) -> Option<&Arc> {
        self.arcs.iter().find(|a| a.site == Some(site))
    }

    /// Strongly connected components of the full graph (iterative Tarjan).
    pub fn sccs(&self) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for a in &self.arcs {
            adj[a.caller.0 as usize].push(a.callee.0 as usize);
        }
        let comp = scc_of_adj(&adj);
        let ncomp = comp.iter().copied().max().map(|c| c + 1).unwrap_or(0);
        let mut out = vec![Vec::new(); ncomp];
        for (i, &c) in comp.iter().enumerate() {
            out[c].push(NodeId(i as u32));
        }
        out
    }

    /// Functions that sit on a cycle of the **conservative** graph
    /// (including cycles through `$$$`/`###`) or call themselves directly.
    ///
    /// This is the "callee is recursive" predicate of the cost function
    /// (§2.3.3): expanding such a callee can stack frames without bound,
    /// so the stack-usage hazard check applies.
    pub fn cyclic_funcs(&self) -> HashSet<FuncId> {
        self.cyclic_funcs_inner(true)
    }

    /// Functions on a cycle considering only real user-to-user arcs
    /// (ignoring the worst-case `$$$`/`###` arcs). Useful to separate true
    /// source-level recursion from conservative possibly-recursion.
    pub fn user_cyclic_funcs(&self) -> HashSet<FuncId> {
        self.cyclic_funcs_inner(false)
    }

    fn cyclic_funcs_inner(&self, conservative: bool) -> HashSet<FuncId> {
        let special: HashSet<NodeId> = [self.external, self.pointer]
            .into_iter()
            .flatten()
            .collect();
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        for a in &self.arcs {
            if !conservative && (special.contains(&a.caller) || special.contains(&a.callee)) {
                continue;
            }
            adj[a.caller.0 as usize].push(a.callee.0 as usize);
            if a.caller == a.callee {
                self_loop[a.caller.0 as usize] = true;
            }
        }
        let comp = scc_of_adj(&adj);
        let mut size = HashMap::new();
        for &c in &comp {
            *size.entry(c).or_insert(0usize) += 1;
        }
        let mut out = HashSet::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Func(f) = node.kind {
                if size[&comp[i]] > 1 || self_loop[i] {
                    out.insert(f);
                }
            }
        }
        out
    }

    /// Nodes reachable from `main` (following all arcs, including the
    /// worst-case ones). Returns the empty set if the module has no main.
    pub fn reachable_from_main(&self) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let Some(main) = self.main else {
            return seen;
        };
        let mut work = vec![main];
        seen.insert(main);
        while let Some(v) = work.pop() {
            for &a in &self.nodes[v.0 as usize].out_arcs {
                let w = self.arcs[a.0 as usize].callee;
                if seen.insert(w) {
                    work.push(w);
                }
            }
        }
        seen
    }

    /// Functions that can safely be removed: unreachable from `main` under
    /// the conservative arcs (§2.6). With external calls present this is
    /// usually empty — exactly the paper's observation that "the original
    /// copy of an inlined call-once function can no longer be deleted".
    pub fn unreachable_funcs(&self) -> Vec<FuncId> {
        let reachable = self.reachable_from_main();
        self.nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Func(f) if !reachable.contains(&self.node_of(f)) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// Renders the graph in Graphviz DOT format (function names, node and
    /// arc weights; synthetic arcs dashed).
    pub fn to_dot(&self, module: &Module) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph callgraph {\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let label = match n.kind {
                NodeKind::Func(f) => format!("{} ({})", module.function(f).name, n.weight),
                NodeKind::External => "$$$".to_string(),
                NodeKind::Pointer => "###".to_string(),
            };
            let _ = writeln!(s, "  n{i} [label=\"{label}\"];");
        }
        for a in &self.arcs {
            let style = if a.site.is_some() {
                format!("label=\"{}\"", a.weight)
            } else {
                "style=dashed".to_string()
            };
            let _ = writeln!(s, "  n{} -> n{} [{style}];", a.caller.0, a.callee.0);
        }
        s.push_str("}\n");
        s
    }
}

/// SCC computation over a plain adjacency list (iterative Tarjan),
/// returning the component index of each node.
fn scc_of_adj(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0;
    let mut next_comp = 0;
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work = vec![(start, 0usize)];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos < adj[v].len() {
                let w = adj[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("stack nonempty");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    fn graph_for(src: &str) -> (impact_il::Module, CallGraph, Profile) {
        let module = compile(&[Source::new("t.c", src)]).expect("compiles");
        let out = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
        let graph = CallGraph::build(&module, &out.profile);
        (module, graph, out.profile)
    }

    #[test]
    fn builds_nodes_and_weighted_arcs() {
        let (module, g, _) = graph_for(
            "int leaf(int x) { return x + 1; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 5; i++) s += leaf(i); return s; }",
        );
        assert_eq!(g.nodes().len(), 2); // no externals, no pointers
        let leaf = module.func_by_name("leaf").unwrap();
        assert_eq!(g.node(g.node_of(leaf)).weight, 5);
        let arcs: Vec<_> = g.arcs().iter().filter(|a| a.site.is_some()).collect();
        assert_eq!(arcs.len(), 1);
        assert_eq!(arcs[0].weight, 5);
        assert_eq!(arcs[0].callee, g.node_of(leaf));
    }

    #[test]
    fn several_arcs_between_same_pair_stay_distinct() {
        let (_, g, _) = graph_for(
            "int f(int x) { return x; }\n\
             int main() { return f(1) + f(2); }",
        );
        let real: Vec<_> = g.arcs().iter().filter(|a| a.site.is_some()).collect();
        assert_eq!(real.len(), 2);
        assert_ne!(real[0].site, real[1].site);
    }

    #[test]
    fn external_node_gets_back_arcs_to_all() {
        let (_, g, _) = graph_for(
            "extern int __fgetc(int fd);\n\
             int helper() { return 1; }\n\
             int main() { __fgetc(0); return helper(); }",
        );
        let ext = g.external_node().expect("has $$$");
        // $$$ → main and $$$ → helper.
        assert_eq!(g.node(ext).out_arcs.len(), 2);
        // main → $$$ real arc.
        assert!(g.arcs().iter().any(|a| a.callee == ext && a.site.is_some()));
    }

    #[test]
    fn pointer_node_targets_address_taken_only_without_externals() {
        let (module, g, _) = graph_for(
            "int pick_me(int x) { return x; }\n\
             int not_me(int x) { return x + 1; }\n\
             int main() { int (*f)(int); f = pick_me; return f(3) + not_me(1); }",
        );
        let ptr = g.pointer_node().expect("has ###");
        let pick = module.func_by_name("pick_me").unwrap();
        let targets: Vec<NodeId> = g
            .node(ptr)
            .out_arcs
            .iter()
            .map(|&a| g.arc(a).callee)
            .collect();
        assert_eq!(targets, vec![g.node_of(pick)]);
    }

    #[test]
    fn pointer_node_targets_everything_with_externals() {
        let (_, g, _) = graph_for(
            "extern int __fgetc(int fd);\n\
             int pick_me(int x) { return x; }\n\
             int main() { int (*f)(int); f = pick_me; __fgetc(0); return f(3); }",
        );
        let ptr = g.pointer_node().expect("has ###");
        // ### → both user functions (pick_me and main).
        assert_eq!(g.node(ptr).out_arcs.len(), 2);
    }

    #[test]
    fn detects_direct_recursion() {
        let (module, g, _) = graph_for(
            "int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }\n\
             int main() { return fact(5); }",
        );
        let fact = module.func_by_name("fact").unwrap();
        let main = module.func_by_name("main").unwrap();
        let cyc = g.cyclic_funcs();
        assert!(cyc.contains(&fact));
        assert!(!cyc.contains(&main));
    }

    #[test]
    fn detects_mutual_recursion() {
        let (module, g, _) = graph_for(
            "int odd(int n);\n\
             int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n\
             int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n\
             int main() { return even(4); }",
        );
        let cyc = g.cyclic_funcs();
        assert!(cyc.contains(&module.func_by_name("even").unwrap()));
        assert!(cyc.contains(&module.func_by_name("odd").unwrap()));
        assert!(!cyc.contains(&module.func_by_name("main").unwrap()));
    }

    #[test]
    fn external_calls_make_callers_conservatively_cyclic() {
        let (module, g, _) = graph_for(
            "extern int __fgetc(int fd);\n\
             int reads() { return __fgetc(0); }\n\
             int pure(int x) { return x * 2; }\n\
             int main() { return reads() + pure(1); }",
        );
        let reads = module.func_by_name("reads").unwrap();
        let pure = module.func_by_name("pure").unwrap();
        let cyc = g.cyclic_funcs();
        // reads → $$$ → reads is a conservative cycle.
        assert!(cyc.contains(&reads));
        // pure has no outgoing arcs, so no cycle can pass through it.
        assert!(!cyc.contains(&pure));
        // Under user-only arcs, nothing is recursive.
        assert!(g.user_cyclic_funcs().is_empty());
    }

    #[test]
    fn unreachable_functions_without_externals_are_found() {
        let (module, g, _) = graph_for(
            "int used(int x) { return x; }\n\
             int dead(int x) { return x + 1; }\n\
             int main() { return used(2); }",
        );
        let dead = module.func_by_name("dead").unwrap();
        assert_eq!(g.unreachable_funcs(), vec![dead]);
    }

    #[test]
    fn externals_suppress_dead_function_removal() {
        let (_, g, _) = graph_for(
            "extern int __fgetc(int fd);\n\
             int used(int x) { return x; }\n\
             int dead(int x) { return x + 1; }\n\
             int main() { __fgetc(0); return used(2); }",
        );
        // $$$ reaches everything, so nothing is removable — the paper's
        // incomplete-call-graph conservatism.
        assert!(g.unreachable_funcs().is_empty());
    }

    #[test]
    fn arc_for_site_finds_real_arcs() {
        let (module, g, _) = graph_for(
            "int f(int x) { return x; }\n\
             int main() { return f(1); }",
        );
        let (_, site, _) = module.all_call_sites()[0];
        let arc = g.arc_for_site(site).expect("found");
        assert_eq!(arc.weight, 1);
    }

    #[test]
    fn dot_output_mentions_nodes_and_special_nodes() {
        let (module, g, _) = graph_for(
            "extern int __fgetc(int fd);\n\
             int main() { int (*f)(int); f = (int(*)(int))0; if (0) return f(0); return __fgetc(0); }",
        );
        let dot = g.to_dot(&module);
        assert!(dot.contains("main"));
        assert!(dot.contains("$$$"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn sccs_partition_all_nodes() {
        let (_, g, _) = graph_for(
            "int b(int n);\n\
             int a(int n) { return n == 0 ? 0 : b(n - 1); }\n\
             int b(int n) { return a(n); }\n\
             int main() { return a(3); }",
        );
        let sccs = g.sccs();
        let total: usize = sccs.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.nodes().len());
        // a and b share a component.
        assert!(sccs.iter().any(|c| c.len() == 2));
    }

    #[test]
    fn weights_use_averaged_profile() {
        let module = compile(&[Source::new(
            "t.c",
            "int f(int x) { return x; }\n\
             int main() { return f(1) + f(2); }",
        )])
        .unwrap();
        let mut merged = Profile::for_module(&module);
        for _ in 0..3 {
            let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
            merged.merge(&out.profile);
        }
        let g = CallGraph::build(&module, &merged.averaged());
        let f = module.func_by_name("f").unwrap();
        assert_eq!(g.node(g.node_of(f)).weight, 2);
    }
}
