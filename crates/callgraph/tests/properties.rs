//! Property tests: SCC and reachability invariants on random call
//! structures (acyclic and cyclic alike).

use impact_callgraph::{CallGraph, NodeKind};
use impact_cfront::{compile, Source};
use impact_vm::Profile;
use proptest::prelude::*;

/// Builds a random module whose call structure follows `edges` (i -> j
/// means function i calls function j). Self-edges allowed.
fn module_with_edges(n: usize, edges: &[(usize, usize)]) -> impact_il::Module {
    let mut src = String::new();
    // Forward declarations so any call order parses.
    for i in 0..n {
        src.push_str(&format!("int f{i}(int x);\n"));
    }
    for i in 0..n {
        src.push_str(&format!("int f{i}(int x) {{\n    int acc;\n    acc = x;\n"));
        for &(from, to) in edges {
            if from == i {
                // Guarded so runs terminate; the static arc is what
                // matters here.
                src.push_str(&format!("    if (x > 1000) acc += f{to}(x - 1);\n"));
            }
        }
        src.push_str("    return acc + 1;\n}\n");
    }
    src.push_str("int main() { return f0(1); }\n");
    compile(&[Source::new("g.c", &src)]).expect("generated module compiles")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sccs_partition_nodes(
        n in 2usize..7,
        raw_edges in proptest::collection::vec((0usize..6, 0usize..6), 0..12),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let module = module_with_edges(n, &edges);
        let graph = CallGraph::build(&module, &Profile::for_module(&module));
        let sccs = graph.sccs();
        // Every node appears in exactly one component.
        let mut seen = std::collections::HashSet::new();
        for comp in &sccs {
            for node in comp {
                prop_assert!(seen.insert(*node), "node in two components");
            }
        }
        prop_assert_eq!(seen.len(), graph.nodes().len());
    }

    #[test]
    fn cyclic_funcs_consistent_with_sccs(
        n in 2usize..7,
        raw_edges in proptest::collection::vec((0usize..6, 0usize..6), 0..12),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let module = module_with_edges(n, &edges);
        let graph = CallGraph::build(&module, &Profile::for_module(&module));
        let cyclic = graph.cyclic_funcs();
        // A function with a self-edge must be cyclic.
        for &(a, b) in &edges {
            if a == b {
                let f = module.func_by_name(&format!("f{a}")).unwrap();
                prop_assert!(cyclic.contains(&f), "self-loop f{a} not cyclic");
            }
        }
        // A function in a >1-node SCC must be cyclic (these programs call
        // no externals, so no conservative cycles interfere).
        for comp in graph.sccs() {
            if comp.len() > 1 {
                for node in comp {
                    if let NodeKind::Func(f) = graph.node(node).kind {
                        prop_assert!(cyclic.contains(&f));
                    }
                }
            }
        }
    }

    #[test]
    fn reachability_is_closed_under_arcs(
        n in 2usize..7,
        raw_edges in proptest::collection::vec((0usize..6, 0usize..6), 0..12),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let module = module_with_edges(n, &edges);
        let graph = CallGraph::build(&module, &Profile::for_module(&module));
        let reachable = graph.reachable_from_main();
        for arc in graph.arcs() {
            if reachable.contains(&arc.caller) {
                prop_assert!(
                    reachable.contains(&arc.callee),
                    "reachable caller, unreachable callee"
                );
            }
        }
        // Unreachable funcs are exactly the complement among functions.
        for f in graph.unreachable_funcs() {
            prop_assert!(!reachable.contains(&graph.node_of(f)));
        }
    }
}
