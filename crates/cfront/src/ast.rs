//! Abstract syntax tree produced by the parser.
//!
//! The AST is untyped; the lowering pass performs type checking while
//! translating to IL (single-pass, as small compilers of the paper's era
//! did).

use crate::token::Span;
use crate::types::CType;

/// Binary operators at the AST level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // names mirror the C operators
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
    Comma,
}

/// Unary operators at the AST level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `!x`
    LogNot,
    /// `~x`
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    AddrOf,
}

/// Prefix/postfix increment and decrement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IncDec {
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// Source location, for diagnostics.
    pub span: Span,
    /// The expression's shape.
    pub kind: ExprKind,
}

/// Expression shapes.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer (or character) literal.
    IntLit(i64),
    /// String literal (NUL appended during lowering).
    StrLit(Vec<u8>),
    /// Identifier reference.
    Ident(String),
    /// `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `op operand`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `++x`, `x--`, etc.
    IncDec {
        /// Which of the four forms.
        op: IncDec,
        /// The lvalue operand.
        target: Box<Expr>,
    },
    /// `target = value` or a compound assignment (`op` is the underlying
    /// arithmetic operator for `+=` and friends).
    Assign {
        /// `None` for plain `=`; `Some(op)` for compound assignment.
        op: Option<BinaryOp>,
        /// Assigned-to lvalue.
        target: Box<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// `cond ? then_e : else_e`.
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value if nonzero.
        then_e: Box<Expr>,
        /// Value if zero.
        else_e: Box<Expr>,
    },
    /// `callee(args...)`.
    Call {
        /// Called expression (identifier or pointer-valued expression).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`.
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `base.field` (`arrow = false`) or `base->field` (`arrow = true`).
    Member {
        /// Struct-valued (or pointer-valued) expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether `->` was used.
        arrow: bool,
    },
    /// `(type)expr`.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `sizeof(type)` or `sizeof expr`.
    SizeofType(CType),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
}

/// An initializer in a declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Initializer {
    /// `= expr`.
    Expr(Expr),
    /// `= { e0, e1, ... }` for arrays.
    List(Vec<Expr>),
}

/// One declared local variable.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalDecl {
    /// Location of the declarator.
    pub span: Span,
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Optional initializer.
    pub init: Option<Initializer>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Source location.
    pub span: Span,
    /// The statement's shape.
    pub kind: StmtKind,
}

/// Statement shapes.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// `{ decls... stmts... }` — declarations first (C89 style).
    Block {
        /// Leading declarations.
        decls: Vec<LocalDecl>,
        /// Statements.
        stmts: Vec<Stmt>,
    },
    /// `expr;`
    Expr(Expr),
    /// `;`
    Empty,
    /// `if (cond) then_s [else else_s]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Optional else branch.
        else_s: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init expression.
        init: Option<Expr>,
        /// Optional condition (absent means "always true").
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { cases }` with C fallthrough semantics.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// The body, as a flat list of case-labelled groups.
        cases: Vec<SwitchCase>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return [expr];`
    Return(Option<Expr>),
}

/// One `case`/`default` label and the statements that follow it (up to the
/// next label). Execution falls through to the next group unless a `break`
/// intervenes, as in C.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchCase {
    /// `Some(value)` for `case value:`, `None` for `default:`.
    pub value: Option<i64>,
    /// Statements in this group.
    pub stmts: Vec<Stmt>,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (arrays already decayed to pointers by the parser).
    pub ty: CType,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDef {
    /// Location of the function name.
    pub span: Span,
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<Param>,
    /// The body block.
    pub body: Stmt,
}

/// An `extern` function declaration (a VM builtin — the paper's
/// inaccessible external function).
#[derive(Clone, Debug, PartialEq)]
pub struct ExternFuncDecl {
    /// Location of the name.
    pub span: Span,
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameter types.
    pub params: Vec<CType>,
}

/// A global variable definition.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    /// Location of the name.
    pub span: Span,
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Optional constant initializer.
    pub init: Option<Initializer>,
}

/// A whole parsed compilation (all source files merged).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in declaration order.
    pub functions: Vec<FunctionDef>,
    /// Extern declarations.
    pub externs: Vec<ExternFuncDecl>,
}
