//! Compilation diagnostics.

use std::fmt;

use crate::token::Span;

/// A fatal compilation error with a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Location of the problem.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl CompileError {
    /// Builds an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        CompileError {
            span,
            message: message.into(),
        }
    }

    /// Renders the error with `file:line:col` resolved against the sources
    /// that were compiled.
    pub fn render(&self, sources: &[crate::Source]) -> String {
        let Some(src) = sources.get(self.span.file as usize) else {
            return format!("<unknown>: {}", self.message);
        };
        let upto = &src.text.as_bytes()[..(self.span.start as usize).min(src.text.len())];
        let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = upto.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        format!("{}:{}:{}: {}", src.name, line, col, self.message)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "file {} offset {}: {}",
            self.span.file, self.span.start, self.message
        )
    }
}

impl std::error::Error for CompileError {}

/// Shorthand result type for front-end passes.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Source;

    #[test]
    fn render_resolves_line_and_column() {
        let sources = vec![Source {
            name: "t.c".into(),
            text: "int x;\nint y@;\n".into(),
        }];
        // The `@` sits at byte offset 12 (line 2, column 6).
        let e = CompileError::new(Span::new(0, 12, 13), "stray character");
        assert_eq!(e.render(&sources), "t.c:2:6: stray character");
    }

    #[test]
    fn render_handles_missing_file() {
        let e = CompileError::new(Span::new(9, 0, 0), "boom");
        assert_eq!(e.render(&[]), "<unknown>: boom");
    }
}
