//! Hand-written lexer for the C subset.
//!
//! Handles `//` and `/* */` comments, decimal/hex/octal integer literals,
//! character literals with the usual escapes, string literals, and the full
//! operator set including compound assignments.

use crate::error::{CompileError, Result};
use crate::token::{Keyword, Punct, Span, Token, TokenKind};

struct Lexer<'s> {
    src: &'s [u8],
    file: u32,
    pos: usize,
}

impl<'s> Lexer<'s> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(self.file, start as u32, self.pos as u32)
    }

    fn err(&self, start: usize, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.span_from(start), msg)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident_or_kw(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii identifier");
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_owned()),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let value = if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err(start, "hex literal needs at least one digit"));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).expect("hex digits");
            u64::from_str_radix(text, 16)
                .map_err(|_| self.err(start, "hex literal out of range"))? as i64
        } else if self.peek() == b'0' {
            self.pos += 1;
            let digits_start = self.pos;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
            if self.pos == digits_start {
                0
            } else {
                let text =
                    std::str::from_utf8(&self.src[digits_start..self.pos]).expect("octal digits");
                if text.bytes().any(|b| b == b'8' || b == b'9') {
                    return Err(self.err(start, "invalid digit in octal literal"));
                }
                u64::from_str_radix(text, 8)
                    .map_err(|_| self.err(start, "octal literal out of range"))?
                    as i64
            }
        } else {
            let digits_start = self.pos;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.src[digits_start..self.pos]).expect("decimal digits");
            text.parse::<u64>()
                .map_err(|_| self.err(start, "integer literal out of range"))? as i64
        };
        // Accept and ignore integer suffixes.
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            self.pos += 1;
        }
        if self.peek().is_ascii_alphanumeric() || self.peek() == b'_' || self.peek() == b'.' {
            return Err(self.err(start, "malformed integer literal"));
        }
        Ok(TokenKind::IntLit(value))
    }

    fn lex_escape(&mut self, start: usize) -> Result<u8> {
        Ok(match self.bump() {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            b'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                while self.peek().is_ascii_hexdigit() {
                    v = v * 16 + (self.bump() as char).to_digit(16).expect("hex digit");
                    any = true;
                    if v > 0xff {
                        return Err(self.err(start, "hex escape out of range"));
                    }
                }
                if !any {
                    return Err(self.err(start, "hex escape needs digits"));
                }
                v as u8
            }
            other => return Err(self.err(start, format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn lex_char_lit(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let c = match self.bump() {
            0 => return Err(self.err(start, "unterminated character literal")),
            b'\\' => self.lex_escape(start)?,
            b'\'' => return Err(self.err(start, "empty character literal")),
            c => c,
        };
        if self.bump() != b'\'' {
            return Err(self.err(start, "unterminated character literal"));
        }
        Ok(TokenKind::IntLit(c as i8 as i64))
    }

    fn lex_str_lit(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                0 => return Err(self.err(start, "unterminated string literal")),
                b'"' => break,
                b'\n' => return Err(self.err(start, "newline in string literal")),
                b'\\' => bytes.push(self.lex_escape(start)?),
                c => bytes.push(c),
            }
        }
        Ok(TokenKind::StrLit(bytes))
    }

    fn lex_punct(&mut self) -> Result<TokenKind> {
        use Punct::*;
        let start = self.pos;
        let c = self.bump();
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'.' => Dot,
            b'+' => match self.peek() {
                b'+' => {
                    self.pos += 1;
                    PlusPlus
                }
                b'=' => {
                    self.pos += 1;
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.pos += 1;
                    MinusMinus
                }
                b'=' => {
                    self.pos += 1;
                    MinusAssign
                }
                b'>' => {
                    self.pos += 1;
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    PercentAssign
                } else {
                    Percent
                }
            }
            b'&' => match self.peek() {
                b'&' => {
                    self.pos += 1;
                    AmpAmp
                }
                b'=' => {
                    self.pos += 1;
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.pos += 1;
                    PipePipe
                }
                b'=' => {
                    self.pos += 1;
                    PipeAssign
                }
                _ => Pipe,
            },
            b'^' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    CaretAssign
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Ne
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    EqEq
                } else {
                    Assign
                }
            }
            b'<' => match self.peek() {
                b'<' => {
                    self.pos += 1;
                    if self.peek() == b'=' {
                        self.pos += 1;
                        ShlAssign
                    } else {
                        Shl
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'>' => {
                    self.pos += 1;
                    if self.peek() == b'=' {
                        self.pos += 1;
                        ShrAssign
                    } else {
                        Shr
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(self.err(start, format!("unexpected character `{}`", other as char)))
            }
        };
        Ok(TokenKind::Punct(p))
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: self.span_from(start),
            });
        }
        let kind = match self.peek() {
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_ident_or_kw(),
            c if c.is_ascii_digit() => self.lex_number()?,
            b'\'' => self.lex_char_lit()?,
            b'"' => self.lex_str_lit()?,
            _ => self.lex_punct()?,
        };
        Ok(Token {
            kind,
            span: self.span_from(start),
        })
    }
}

/// Lexes `text` (from file index `file`) into a token stream ending with a
/// single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns the first lexical error: an unterminated comment/string/char
/// literal, a malformed number, an unknown escape, or a stray character.
pub fn lex(file: u32, text: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer {
        src: text.as_bytes(),
        file,
        pos: 0,
    };
    let mut tokens = Vec::new();
    loop {
        let t = lexer.next_token()?;
        let done = t.kind == TokenKind::Eof;
        tokens.push(t);
        if done {
            return Ok(tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(0, text).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("while whiles _x1"),
            vec![
                TokenKind::Kw(Keyword::While),
                TokenKind::Ident("whiles".into()),
                TokenKind::Ident("_x1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 0x1F 017 42u 42UL"),
            vec![
                TokenKind::IntLit(0),
                TokenKind::IntLit(42),
                TokenKind::IntLit(31),
                TokenKind::IntLit(15),
                TokenKind::IntLit(42),
                TokenKind::IntLit(42),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(lex(0, "089").is_err());
        assert!(lex(0, "12abc").is_err());
        assert!(lex(0, "0x").is_err());
    }

    #[test]
    fn lexes_char_literals_with_escapes() {
        assert_eq!(
            kinds(r"'a' '\n' '\0' '\x41' '\\'"),
            vec![
                TokenKind::IntLit(97),
                TokenKind::IntLit(10),
                TokenKind::IntLit(0),
                TokenKind::IntLit(65),
                TokenKind::IntLit(92),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn char_literal_is_signed() {
        assert_eq!(
            kinds(r"'\xff'"),
            vec![TokenKind::IntLit(-1), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_string_literals() {
        assert_eq!(
            kinds(r#""hi\n""#),
            vec![TokenKind::StrLit(b"hi\n".to_vec()), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex(0, "\"abc").is_err());
        assert!(lex(0, "\"ab\nc\"").is_err());
        assert!(lex(0, "'a").is_err());
    }

    #[test]
    fn lexes_compound_operators_greedily() {
        use Punct::*;
        assert_eq!(
            kinds("a<<=b >>= ++ -- -> <= >= == != && || ^="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(ShlAssign),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(ShrAssign),
                TokenKind::Punct(PlusPlus),
                TokenKind::Punct(MinusMinus),
                TokenKind::Punct(Arrow),
                TokenKind::Punct(Le),
                TokenKind::Punct(Ge),
                TokenKind::Punct(EqEq),
                TokenKind::Punct(Ne),
                TokenKind::Punct(AmpAmp),
                TokenKind::Punct(PipePipe),
                TokenKind::Punct(CaretAssign),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\nb /* block\nstill */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex(0, "/* never ends").is_err());
    }

    #[test]
    fn spans_point_at_tokens() {
        let toks = lex(0, "ab  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 0, 2));
        assert_eq!(toks[1].span, Span::new(0, 4, 6));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex(0, "int @x;").is_err());
        assert!(lex(0, "$").is_err());
    }
}
