//! # impact-cfront — C-subset compiler front end
//!
//! A from-scratch front end (lexer → parser → type-checking lowering) that
//! translates a realistic subset of C89 into the [`impact_il`] three-address
//! code. It is the substrate the paper's inline expander operates above:
//! the twelve benchmark programs of the evaluation are written in this
//! subset and compiled here.
//!
//! ## Supported language
//!
//! * Types: `void`, `char`, `short`, `int`, `long` (signed and unsigned),
//!   pointers, fixed-size arrays, `struct`s (including self-referential via
//!   pointers), enums (constants of type `int`), and function pointers with
//!   full declarator syntax (`int (*f)(int)`, `int (*ops[4])(int,int)`).
//! * Statements: blocks with C89-style leading declarations, `if`/`else`,
//!   `while`, `do`/`while`, `for`, `switch` with fallthrough, `break`,
//!   `continue`, `return`.
//! * Expressions: the full C operator set (assignment and compound
//!   assignment, `?:`, `&&`/`||` with short-circuit, comma, casts,
//!   `sizeof`, pointer arithmetic, `++`/`--`, `.`/`->`, indexing, calls
//!   through function pointers).
//! * `extern` function declarations denote **external functions** (VM
//!   builtins) — the paper's system calls and closed libraries, which the
//!   inline expander must treat as opaque.
//!
//! ## Deliberate omissions
//!
//! No preprocessor (write constants with `enum`), no `typedef`, `goto`,
//! `union`, bitfields, floating point, varargs, struct-by-value
//! assignment/parameters/returns, or block-scoped struct definitions.
//! Enum constants may not be shadowed by variables. All arithmetic is
//! performed in 64 bits and truncated at casts, stores, and assignments to
//! narrow variables.
//!
//! ## Example
//!
//! ```
//! use impact_cfront::{compile, Source};
//!
//! let module = compile(&[Source {
//!     name: "demo.c".into(),
//!     text: "int twice(int x) { return x + x; }\n\
//!            int main() { return twice(21); }"
//!         .into(),
//! }])
//! .expect("compiles");
//! assert_eq!(module.functions.len(), 2);
//! impact_il::verify_module(&module).expect("well-formed IL");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
pub mod token;
pub mod types;

pub use error::CompileError;
pub use lexer::lex;
pub use lower::lower;
pub use parser::{parse_into, ParseContext};

/// One named source file of a compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Source {
    /// Display name used in diagnostics (e.g. `"grep.c"`).
    pub name: String,
    /// Full source text.
    pub text: String,
}

impl Source {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        Source {
            name: name.into(),
            text: text.into(),
        }
    }
}

/// Compiles a set of C sources into a single IL [`impact_il::Module`]
/// (whole-program compilation, as the paper's profile-guided pipeline
/// requires).
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error. Use
/// [`CompileError::render`] with the same `sources` to get a
/// `file:line:col`-formatted message.
pub fn compile(sources: &[Source]) -> Result<impact_il::Module, CompileError> {
    compile_with(sources, &impact_obs::Telemetry::disabled())
}

/// [`compile`] with pipeline telemetry: records `cfront:lex`,
/// `cfront:parse`, and `cfront:lower` spans plus source/function counters
/// on `obs`. With a disabled handle this is exactly [`compile`].
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with(
    sources: &[Source],
    obs: &impact_obs::Telemetry,
) -> Result<impact_il::Module, CompileError> {
    let mut ctx = ParseContext::new();
    for (i, src) in sources.iter().enumerate() {
        let tokens = {
            let _s = obs.span("cfront:lex");
            lexer::lex(i as u32, &src.text)?
        };
        let _s = obs.span("cfront:parse");
        parser::parse_into(&mut ctx, &tokens)?;
    }
    obs.count("cfront:sources", sources.len() as u64);
    let module = {
        let _s = obs.span("cfront:lower");
        lower::lower(&ctx)?
    };
    obs.count("cfront:functions", module.functions.len() as u64);
    Ok(module)
}
