//! AST → IL lowering with on-the-fly type checking.
//!
//! Scalars whose address is never taken live in virtual registers; arrays,
//! structs, and address-taken scalars live in frame slots. All arithmetic
//! is performed on 64-bit registers holding canonically extended values;
//! values are truncated (via [`impact_il::Inst::Ext`]) at casts and at
//! assignments to narrow variables, and by sized stores.

use std::collections::{HashMap, HashSet};

use impact_il::{
    BinOp, Callee, CmpOp, ExternDecl, ExternId, FuncId, FunctionBuilder, Global, GlobalId, Module,
    Reg, SlotId, Terminator, UnOp, Width,
};

use crate::ast::*;
use crate::error::{CompileError, Result};
use crate::parser::{truncate_to_kind, ParseContext};
use crate::token::Span;
use crate::types::{promote, usual_arith, CType, FuncType, IntKind, TypeTable};

/// Lowers a fully parsed program to an IL module.
///
/// # Errors
///
/// Returns the first semantic error: unknown identifiers, type mismatches,
/// bad initializers, and so on.
pub fn lower(ctx: &ParseContext) -> Result<Module> {
    let mut lo = Lowerer::new(&ctx.types);
    lo.collect_signatures(&ctx.program)?;
    lo.lower_globals(&ctx.program)?;
    for f in &ctx.program.functions {
        lo.lower_function(f)?;
    }
    Ok(lo.module)
}

/// How a variable is stored.
#[derive(Clone, Debug)]
enum Storage {
    /// Scalar kept in a virtual register.
    Reg(Reg),
    /// Memory-resident local (frame slot).
    Slot(SlotId),
    /// Global variable.
    Global(GlobalId),
}

#[derive(Clone, Debug)]
struct VarInfo {
    storage: Storage,
    ty: CType,
}

/// The value of a lowered expression: a register plus its C type, or
/// nothing for `void`.
#[derive(Clone, Debug)]
struct RVal {
    reg: Option<Reg>,
    ty: CType,
}

impl RVal {
    fn new(reg: Reg, ty: CType) -> Self {
        RVal { reg: Some(reg), ty }
    }

    fn void() -> Self {
        RVal {
            reg: None,
            ty: CType::Void,
        }
    }
}

/// A lowered lvalue.
#[derive(Clone, Debug)]
enum Place {
    /// Register-backed scalar variable.
    Reg(Reg, CType),
    /// Memory location: address register + the type stored there.
    Mem(Reg, CType),
}

impl Place {
    fn ty(&self) -> &CType {
        match self {
            Place::Reg(_, t) | Place::Mem(_, t) => t,
        }
    }
}

struct FuncSig {
    id: FuncId,
    ty: FuncType,
}

struct ExternSig {
    id: ExternId,
    ty: FuncType,
}

struct Lowerer<'t> {
    types: &'t TypeTable,
    module: Module,
    funcs: HashMap<String, FuncSig>,
    externs: HashMap<String, ExternSig>,
    globals: HashMap<String, (GlobalId, CType)>,
    strings: HashMap<Vec<u8>, GlobalId>,
}

struct FuncCtx {
    fb: FunctionBuilder,
    scopes: Vec<HashMap<String, VarInfo>>,
    /// Jump targets for `break` (innermost last).
    break_targets: Vec<impact_il::BlockId>,
    /// Jump targets for `continue`.
    continue_targets: Vec<impact_il::BlockId>,
    ret_ty: CType,
    /// Names that have their address taken anywhere in this function.
    addr_taken: HashSet<String>,
}

impl<'t> Lowerer<'t> {
    fn new(types: &'t TypeTable) -> Self {
        Lowerer {
            types,
            module: Module::new(),
            funcs: HashMap::new(),
            externs: HashMap::new(),
            globals: HashMap::new(),
            strings: HashMap::new(),
        }
    }

    fn err<T>(&self, span: Span, msg: impl Into<String>) -> Result<T> {
        Err(CompileError::new(span, msg))
    }

    // ----- pre-pass ---------------------------------------------------------

    fn collect_signatures(&mut self, program: &Program) -> Result<()> {
        for (i, f) in program.functions.iter().enumerate() {
            let sig = FuncType {
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
            };
            if self
                .funcs
                .insert(
                    f.name.clone(),
                    FuncSig {
                        id: FuncId::from_index(i),
                        ty: sig,
                    },
                )
                .is_some()
            {
                return self.err(f.span, format!("function `{}` redefined", f.name));
            }
        }
        for x in &program.externs {
            if self.funcs.contains_key(&x.name) {
                return self.err(x.span, format!("`{}` is both extern and defined", x.name));
            }
            let ty = FuncType {
                ret: x.ret.clone(),
                params: x.params.clone(),
            };
            // Identical re-declarations are fine (each source file declares
            // the externs it uses); conflicting ones are not.
            if let Some(existing) = self.externs.get(&x.name) {
                if existing.ty != ty {
                    return self.err(
                        x.span,
                        format!("extern `{}` redeclared with a different type", x.name),
                    );
                }
                continue;
            }
            let id = self.module.add_extern(ExternDecl {
                name: x.name.clone(),
                num_params: x.params.len() as u32,
                has_ret: x.ret != CType::Void,
            });
            self.externs.insert(x.name.clone(), ExternSig { id, ty });
        }
        Ok(())
    }

    // ----- globals ------------------------------------------------------------

    fn lower_globals(&mut self, program: &Program) -> Result<()> {
        for g in &program.globals {
            self.lower_global(g)?;
        }
        Ok(())
    }

    fn lower_global(&mut self, g: &GlobalDecl) -> Result<()> {
        if self.globals.contains_key(&g.name)
            || self.funcs.contains_key(&g.name)
            || self.externs.contains_key(&g.name)
        {
            return self.err(g.span, format!("`{}` redefined", g.name));
        }
        // Complete unsized arrays (`T x[]`) from their initializer.
        let mut ty = g.ty.clone();
        if let CType::Array(elem, 0) = &ty {
            let n = match &g.init {
                Some(Initializer::List(items)) => items.len() as u64,
                Some(Initializer::Expr(e)) => {
                    if let ExprKind::StrLit(bytes) = &e.kind {
                        bytes.len() as u64 + 1
                    } else {
                        return self.err(g.span, "cannot deduce array size from initializer");
                    }
                }
                None => return self.err(g.span, "array of unknown size needs an initializer"),
            };
            ty = CType::Array(elem.clone(), n);
        }
        let Some(size) = self.types.size_of(&ty) else {
            return self.err(g.span, format!("global `{}` has unsized type", g.name));
        };
        let align = self.types.align_of(&ty).unwrap_or(8);
        let mut global = Global::zeroed(&g.name, size, align);

        if let Some(init) = &g.init {
            self.encode_global_init(g.span, &ty, init, &mut global)?;
        }
        let id = self.module.add_global(global);
        self.globals.insert(g.name.clone(), (id, ty));
        Ok(())
    }

    /// Encodes a constant initializer into the global's bytes/relocations.
    fn encode_global_init(
        &mut self,
        span: Span,
        ty: &CType,
        init: &Initializer,
        global: &mut Global,
    ) -> Result<()> {
        let size = self.types.size_of(ty).expect("sized global") as usize;
        let mut bytes = vec![0u8; size];
        match (ty, init) {
            (CType::Int(k), Initializer::Expr(e)) => {
                let v = self.global_const(e)?;
                encode_int(&mut bytes, 0, v, k.size());
            }
            (CType::Ptr(_), Initializer::Expr(e)) => match self.global_func_addr(e) {
                Some(fid) => global.func_relocs.push((0, fid)),
                None => {
                    let v = self.global_const(e)?;
                    if v != 0 {
                        return self.err(
                            e.span,
                            "global pointers may only be initialized with 0 or a function",
                        );
                    }
                }
            },
            (CType::Array(elem, _n), Initializer::Expr(e)) => {
                let (CType::Int(k), ExprKind::StrLit(s)) = (elem.as_ref(), &e.kind) else {
                    return self.err(e.span, "array initializer must be a brace list");
                };
                if k.size() != 1 {
                    return self.err(e.span, "string initializer needs a char array");
                }
                if s.len() + 1 > size {
                    return self.err(e.span, "string initializer too long");
                }
                bytes[..s.len()].copy_from_slice(s);
            }
            (CType::Array(elem, n), Initializer::List(items)) => {
                if items.len() as u64 > *n {
                    return self.err(span, "too many initializers");
                }
                let esize = self.types.size_of(elem).expect("sized element");
                match elem.as_ref() {
                    CType::Int(k) => {
                        for (i, e) in items.iter().enumerate() {
                            let v = self.global_const(e)?;
                            encode_int(&mut bytes, i * esize as usize, v, k.size());
                        }
                    }
                    CType::Ptr(_) => {
                        for (i, e) in items.iter().enumerate() {
                            match self.global_func_addr(e) {
                                Some(fid) => {
                                    global.func_relocs.push((i as u64 * esize, fid));
                                }
                                None => {
                                    if self.global_const(e)? != 0 {
                                        return self.err(
                                            e.span,
                                            "pointer element must be 0 or a function name",
                                        );
                                    }
                                }
                            }
                        }
                    }
                    CType::Array(inner, k) => {
                        // char name[n][k] = {"a", "b", ...}
                        let (CType::Int(ik), true) = (inner.as_ref(), true) else {
                            return self.err(span, "unsupported array element initializer");
                        };
                        if ik.size() != 1 {
                            return self.err(span, "nested array initializers need char rows");
                        }
                        for (i, e) in items.iter().enumerate() {
                            let ExprKind::StrLit(sl) = &e.kind else {
                                return self.err(e.span, "row initializer must be a string");
                            };
                            if sl.len() as u64 + 1 > *k {
                                return self.err(e.span, "string initializer too long for row");
                            }
                            let off = i * esize as usize;
                            bytes[off..off + sl.len()].copy_from_slice(sl);
                        }
                    }
                    _ => return self.err(span, "unsupported array element initializer"),
                }
            }
            (CType::Struct(_), _) => {
                return self.err(
                    span,
                    "struct globals cannot have initializers (zero-filled)",
                )
            }
            _ => return self.err(span, "unsupported global initializer"),
        }
        global.init = bytes;
        Ok(())
    }

    /// Constant-folds a global initializer expression to an integer.
    fn global_const(&self, e: &Expr) -> Result<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::Unary { op, operand } => {
                let v = self.global_const(operand)?;
                Ok(match op {
                    UnaryOp::Neg => v.wrapping_neg(),
                    UnaryOp::Plus => v,
                    UnaryOp::BitNot => !v,
                    UnaryOp::LogNot => (v == 0) as i64,
                    _ => {
                        return Err(CompileError::new(
                            e.span,
                            "not a constant expression".to_owned(),
                        ))
                    }
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.global_const(lhs)?;
                let r = self.global_const(rhs)?;
                Ok(match op {
                    BinaryOp::Add => l.wrapping_add(r),
                    BinaryOp::Sub => l.wrapping_sub(r),
                    BinaryOp::Mul => l.wrapping_mul(r),
                    BinaryOp::Div if r != 0 => l.wrapping_div(r),
                    BinaryOp::Rem if r != 0 => l.wrapping_rem(r),
                    BinaryOp::Shl => l.wrapping_shl(r as u32),
                    BinaryOp::Shr => l.wrapping_shr(r as u32),
                    BinaryOp::BitAnd => l & r,
                    BinaryOp::BitOr => l | r,
                    BinaryOp::BitXor => l ^ r,
                    _ => {
                        return Err(CompileError::new(
                            e.span,
                            "not a constant expression".to_owned(),
                        ))
                    }
                })
            }
            ExprKind::SizeofType(ty) => self
                .types
                .size_of(ty)
                .map(|s| s as i64)
                .ok_or_else(|| CompileError::new(e.span, "sizeof of unsized type".to_owned())),
            ExprKind::Cast { ty, expr } => {
                let v = self.global_const(expr)?;
                match ty {
                    CType::Int(k) => Ok(truncate_to_kind(v, *k)),
                    _ => Err(CompileError::new(
                        e.span,
                        "not a constant expression".to_owned(),
                    )),
                }
            }
            _ => Err(CompileError::new(
                e.span,
                "not a constant expression".to_owned(),
            )),
        }
    }

    /// Recognizes `func` / `&func` in a global initializer.
    fn global_func_addr(&self, e: &Expr) -> Option<FuncId> {
        match &e.kind {
            ExprKind::Ident(name) => self.funcs.get(name).map(|s| s.id),
            ExprKind::Unary {
                op: UnaryOp::AddrOf,
                operand,
            } => self.global_func_addr(operand),
            _ => None,
        }
    }

    /// Interns a string literal as a NUL-terminated read-only global.
    fn intern_string(&mut self, bytes: &[u8]) -> GlobalId {
        if let Some(&id) = self.strings.get(bytes) {
            return id;
        }
        let mut data = bytes.to_vec();
        data.push(0);
        let name = format!("__str{}", self.strings.len());
        let id = self.module.add_global(Global::with_bytes(name, data, 1));
        self.strings.insert(bytes.to_vec(), id);
        id
    }

    // ----- functions -----------------------------------------------------------

    fn lower_function(&mut self, f: &FunctionDef) -> Result<()> {
        let mut addr_taken = HashSet::new();
        collect_addr_taken_stmt(&f.body, &mut addr_taken);

        let mut fc = FuncCtx {
            fb: FunctionBuilder::new(&f.name, f.params.len() as u32),
            scopes: vec![HashMap::new()],
            break_targets: Vec::new(),
            continue_targets: Vec::new(),
            ret_ty: f.ret.clone(),
            addr_taken,
        };

        // Bind parameters. Address-taken parameters are copied into slots.
        for (i, p) in f.params.iter().enumerate() {
            if p.name.is_empty() {
                return self.err(f.span, "parameter in a definition needs a name");
            }
            let preg = Reg(i as u32);
            if fc.addr_taken.contains(&p.name) {
                let size = self
                    .types
                    .size_of(&p.ty)
                    .ok_or_else(|| CompileError::new(f.span, "unsized parameter".to_owned()))?;
                let align = self.types.align_of(&p.ty).unwrap_or(8);
                let slot = fc.fb.add_slot(&p.name, size, align);
                let addr = fc.fb.addr_of_slot(slot);
                let width = scalar_width(self.types, &p.ty)
                    .ok_or_else(|| CompileError::new(f.span, "bad parameter type".to_owned()))?;
                fc.fb.store(addr, preg, width);
                fc.scopes[0].insert(
                    p.name.clone(),
                    VarInfo {
                        storage: Storage::Slot(slot),
                        ty: p.ty.clone(),
                    },
                );
            } else {
                if !p.ty.is_scalar() {
                    return self.err(f.span, "parameters must be scalars or pointers");
                }
                fc.scopes[0].insert(
                    p.name.clone(),
                    VarInfo {
                        storage: Storage::Reg(preg),
                        ty: p.ty.clone(),
                    },
                );
            }
        }

        self.lower_stmt(&mut fc, &f.body)?;
        // Fall-off-the-end returns are implicit: the builder's open block
        // ends with `ret` (no value); `main` gets an implicit `return 0`
        // by convention of the VM (missing value reads as 0).
        self.module.functions.push(fc.fb.finish());
        Ok(())
    }

    // ----- statements -----------------------------------------------------------

    fn lower_stmt(&mut self, fc: &mut FuncCtx, s: &Stmt) -> Result<()> {
        match &s.kind {
            StmtKind::Block { decls, stmts } => {
                fc.scopes.push(HashMap::new());
                for d in decls {
                    self.lower_local_decl(fc, d)?;
                }
                for st in stmts {
                    self.lower_stmt(fc, st)?;
                }
                fc.scopes.pop();
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr(fc, e)?;
                Ok(())
            }
            StmtKind::Empty => Ok(()),
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = self.lower_scalar(fc, cond)?;
                let then_b = fc.fb.new_block();
                let else_b = fc.fb.new_block();
                let join = fc.fb.new_block();
                fc.fb.terminate(Terminator::Branch {
                    cond: c,
                    then_to: then_b,
                    else_to: else_b,
                });
                fc.fb.switch_to(then_b);
                self.lower_stmt(fc, then_s)?;
                fc.fb.terminate(Terminator::Jump(join));
                fc.fb.switch_to(else_b);
                if let Some(e) = else_s {
                    self.lower_stmt(fc, e)?;
                }
                fc.fb.terminate(Terminator::Jump(join));
                fc.fb.switch_to(join);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let head = fc.fb.new_block();
                let body_b = fc.fb.new_block();
                let exit = fc.fb.new_block();
                fc.fb.terminate(Terminator::Jump(head));
                fc.fb.switch_to(head);
                let c = self.lower_scalar(fc, cond)?;
                fc.fb.terminate(Terminator::Branch {
                    cond: c,
                    then_to: body_b,
                    else_to: exit,
                });
                fc.fb.switch_to(body_b);
                fc.break_targets.push(exit);
                fc.continue_targets.push(head);
                self.lower_stmt(fc, body)?;
                fc.break_targets.pop();
                fc.continue_targets.pop();
                fc.fb.terminate(Terminator::Jump(head));
                fc.fb.switch_to(exit);
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let body_b = fc.fb.new_block();
                let check = fc.fb.new_block();
                let exit = fc.fb.new_block();
                fc.fb.terminate(Terminator::Jump(body_b));
                fc.fb.switch_to(body_b);
                fc.break_targets.push(exit);
                fc.continue_targets.push(check);
                self.lower_stmt(fc, body)?;
                fc.break_targets.pop();
                fc.continue_targets.pop();
                fc.fb.terminate(Terminator::Jump(check));
                fc.fb.switch_to(check);
                let c = self.lower_scalar(fc, cond)?;
                fc.fb.terminate(Terminator::Branch {
                    cond: c,
                    then_to: body_b,
                    else_to: exit,
                });
                fc.fb.switch_to(exit);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(e) = init {
                    self.lower_expr(fc, e)?;
                }
                let head = fc.fb.new_block();
                let body_b = fc.fb.new_block();
                let step_b = fc.fb.new_block();
                let exit = fc.fb.new_block();
                fc.fb.terminate(Terminator::Jump(head));
                fc.fb.switch_to(head);
                match cond {
                    Some(c) => {
                        let r = self.lower_scalar(fc, c)?;
                        fc.fb.terminate(Terminator::Branch {
                            cond: r,
                            then_to: body_b,
                            else_to: exit,
                        });
                    }
                    None => fc.fb.terminate(Terminator::Jump(body_b)),
                }
                fc.fb.switch_to(body_b);
                fc.break_targets.push(exit);
                fc.continue_targets.push(step_b);
                self.lower_stmt(fc, body)?;
                fc.break_targets.pop();
                fc.continue_targets.pop();
                fc.fb.terminate(Terminator::Jump(step_b));
                fc.fb.switch_to(step_b);
                if let Some(e) = step {
                    self.lower_expr(fc, e)?;
                }
                fc.fb.terminate(Terminator::Jump(head));
                fc.fb.switch_to(exit);
                Ok(())
            }
            StmtKind::Switch { scrutinee, cases } => {
                self.lower_switch(fc, s.span, scrutinee, cases)
            }
            StmtKind::Break => match fc.break_targets.last() {
                Some(&b) => {
                    fc.fb.terminate(Terminator::Jump(b));
                    Ok(())
                }
                None => self.err(s.span, "`break` outside of a loop or switch"),
            },
            StmtKind::Continue => match fc.continue_targets.last() {
                Some(&b) => {
                    fc.fb.terminate(Terminator::Jump(b));
                    Ok(())
                }
                None => self.err(s.span, "`continue` outside of a loop"),
            },
            StmtKind::Return(value) => {
                match (value, fc.ret_ty.clone()) {
                    (None, CType::Void) => fc.fb.terminate(Terminator::Return(None)),
                    (None, _) => return self.err(s.span, "non-void function returns no value"),
                    (Some(e), CType::Void) => {
                        return self.err(e.span, "void function returns a value")
                    }
                    (Some(e), ret_ty) => {
                        let v = self.lower_expr(fc, e)?;
                        let Some(reg) = v.reg else {
                            return self.err(e.span, "void value returned");
                        };
                        // Truncate to the declared return type so callers
                        // observe canonical values.
                        let reg = self.coerce_to(fc, reg, &v.ty, &ret_ty, e.span)?;
                        fc.fb.terminate(Terminator::Return(Some(reg)));
                    }
                }
                Ok(())
            }
        }
    }

    fn lower_switch(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        scrutinee: &Expr,
        cases: &[SwitchCase],
    ) -> Result<()> {
        let scrut = self.lower_scalar(fc, scrutinee)?;
        let exit = fc.fb.new_block();
        // One body block per case group.
        let body_blocks: Vec<_> = cases.iter().map(|_| fc.fb.new_block()).collect();
        let mut default_idx = None;
        for (i, c) in cases.iter().enumerate() {
            if c.value.is_none() {
                if default_idx.is_some() {
                    return self.err(span, "duplicate `default` label");
                }
                default_idx = Some(i);
            }
        }
        {
            let mut seen = HashSet::new();
            for c in cases {
                if let Some(v) = c.value {
                    if !seen.insert(v) {
                        return self.err(span, format!("duplicate case label {v}"));
                    }
                }
            }
        }
        // Comparison chain.
        for (i, c) in cases.iter().enumerate() {
            if let Some(v) = c.value {
                let lit = fc.fb.const_(v);
                let is_eq = fc.fb.cmp(CmpOp::Eq, scrut, lit);
                let next_check = fc.fb.new_block();
                fc.fb.terminate(Terminator::Branch {
                    cond: is_eq,
                    then_to: body_blocks[i],
                    else_to: next_check,
                });
                fc.fb.switch_to(next_check);
            }
        }
        // No case matched: default or exit.
        match default_idx {
            Some(i) => fc.fb.terminate(Terminator::Jump(body_blocks[i])),
            None => fc.fb.terminate(Terminator::Jump(exit)),
        }
        // Bodies with fallthrough.
        fc.break_targets.push(exit);
        for (i, c) in cases.iter().enumerate() {
            fc.fb.switch_to(body_blocks[i]);
            for st in &c.stmts {
                self.lower_stmt(fc, st)?;
            }
            let next = body_blocks.get(i + 1).copied().unwrap_or(exit);
            fc.fb.terminate(Terminator::Jump(next));
        }
        fc.break_targets.pop();
        fc.fb.switch_to(exit);
        Ok(())
    }

    fn lower_local_decl(&mut self, fc: &mut FuncCtx, d: &LocalDecl) -> Result<()> {
        // Complete unsized arrays from brace initializers.
        let mut ty = d.ty.clone();
        if let CType::Array(elem, 0) = &ty {
            match &d.init {
                Some(Initializer::List(items)) => {
                    ty = CType::Array(elem.clone(), items.len() as u64);
                }
                _ => {
                    return self.err(
                        d.span,
                        "local array of unknown size needs a brace initializer",
                    )
                }
            }
        }
        let scalar = ty.is_scalar();
        let in_register = scalar && !fc.addr_taken.contains(&d.name);
        let storage = if in_register {
            Storage::Reg(fc.fb.new_reg())
        } else {
            let Some(size) = self.types.size_of(&ty) else {
                return self.err(d.span, format!("local `{}` has unsized type", d.name));
            };
            let align = self.types.align_of(&ty).unwrap_or(8);
            Storage::Slot(fc.fb.add_slot(&d.name, size, align))
        };
        if fc
            .scopes
            .last_mut()
            .expect("at least one scope")
            .insert(
                d.name.clone(),
                VarInfo {
                    storage: storage.clone(),
                    ty: ty.clone(),
                },
            )
            .is_some()
        {
            return self.err(d.span, format!("`{}` redeclared in the same scope", d.name));
        }

        match &d.init {
            None => Ok(()),
            Some(Initializer::Expr(e)) => {
                let place = match &storage {
                    Storage::Reg(r) => Place::Reg(*r, ty.clone()),
                    Storage::Slot(s) => {
                        let addr = fc.fb.addr_of_slot(*s);
                        Place::Mem(addr, ty.clone())
                    }
                    Storage::Global(_) => unreachable!("locals are not globals"),
                };
                let v = self.lower_expr(fc, e)?;
                self.store_place(fc, &place, v, e.span)?;
                Ok(())
            }
            Some(Initializer::List(items)) => {
                let CType::Array(elem, n) = &ty else {
                    return self.err(d.span, "brace initializer needs an array");
                };
                if items.len() as u64 > *n {
                    return self.err(d.span, "too many initializers");
                }
                let Storage::Slot(slot) = &storage else {
                    unreachable!("arrays always get slots");
                };
                let esize = self
                    .types
                    .size_of(elem)
                    .ok_or_else(|| CompileError::new(d.span, "unsized element".to_owned()))?;
                let width = scalar_width(self.types, elem).ok_or_else(|| {
                    CompileError::new(d.span, "element must be scalar".to_owned())
                })?;
                let base = fc.fb.addr_of_slot(*slot);
                for (i, item) in items.iter().enumerate() {
                    let v = self.lower_expr(fc, item)?;
                    let Some(vreg) = v.reg else {
                        return self.err(item.span, "void initializer element");
                    };
                    let off = fc.fb.const_((i as u64 * esize) as i64);
                    let addr = fc.fb.bin(BinOp::Add, base, off);
                    fc.fb.store(addr, vreg, width);
                }
                // Zero-fill the rest (C semantics for partial brace init).
                if (items.len() as u64) < *n {
                    let zero = fc.fb.const_(0);
                    for i in items.len() as u64..*n {
                        let off = fc.fb.const_((i * esize) as i64);
                        let addr = fc.fb.bin(BinOp::Add, base, off);
                        fc.fb.store(addr, zero, width);
                    }
                }
                Ok(())
            }
        }
    }

    // ----- places -----------------------------------------------------------

    fn lookup_var(&self, fc: &FuncCtx, name: &str) -> Option<VarInfo> {
        for scope in fc.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        self.globals.get(name).map(|(id, ty)| VarInfo {
            storage: Storage::Global(*id),
            ty: ty.clone(),
        })
    }

    fn lower_place(&mut self, fc: &mut FuncCtx, e: &Expr) -> Result<Place> {
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup_var(fc, name) {
                Some(v) => match v.storage {
                    Storage::Reg(r) => Ok(Place::Reg(r, v.ty)),
                    Storage::Slot(s) => {
                        let addr = fc.fb.addr_of_slot(s);
                        Ok(Place::Mem(addr, v.ty))
                    }
                    Storage::Global(g) => {
                        let addr = fc.fb.addr_of_global(g);
                        Ok(Place::Mem(addr, v.ty))
                    }
                },
                None => self.err(e.span, format!("unknown variable `{name}`")),
            },
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => {
                let v = self.lower_expr(fc, operand)?;
                let CType::Ptr(pointee) = v.ty.clone() else {
                    return self.err(operand.span, format!("cannot dereference `{}`", v.ty));
                };
                let Some(reg) = v.reg else {
                    return self.err(operand.span, "void operand");
                };
                Ok(Place::Mem(reg, (*pointee).clone()))
            }
            ExprKind::Index { base, index } => {
                let addr = self.lower_element_addr(fc, base, index, e.span)?;
                Ok(addr)
            }
            ExprKind::Member { base, field, arrow } => {
                let (base_addr, sid) = if *arrow {
                    let v = self.lower_expr(fc, base)?;
                    let CType::Ptr(inner) = v.ty.clone() else {
                        return self.err(base.span, format!("`->` on non-pointer `{}`", v.ty));
                    };
                    let CType::Struct(sid) = *inner else {
                        return self.err(base.span, "`->` on a pointer to a non-struct");
                    };
                    let Some(reg) = v.reg else {
                        return self.err(base.span, "void operand");
                    };
                    (reg, sid)
                } else {
                    let place = self.lower_place(fc, base)?;
                    let Place::Mem(addr, ty) = place else {
                        return self.err(base.span, "`.` on a non-struct value");
                    };
                    let CType::Struct(sid) = ty else {
                        return self.err(base.span, "`.` on non-struct".to_string());
                    };
                    (addr, sid)
                };
                let def = self.types.struct_def(sid);
                let Some(fld) = def.field(field) else {
                    return self.err(
                        e.span,
                        format!("struct `{}` has no member `{field}`", def.name),
                    );
                };
                let fld_ty = fld.ty.clone();
                let off = fc.fb.const_(fld.offset as i64);
                let addr = fc.fb.bin(BinOp::Add, base_addr, off);
                Ok(Place::Mem(addr, fld_ty))
            }
            _ => self.err(e.span, "expression is not assignable"),
        }
    }

    /// Computes the address of `base[index]` as a place.
    fn lower_element_addr(
        &mut self,
        fc: &mut FuncCtx,
        base: &Expr,
        index: &Expr,
        span: Span,
    ) -> Result<Place> {
        let b = self.lower_expr(fc, base)?;
        let CType::Ptr(elem) = b.ty.clone() else {
            return self.err(span, format!("cannot index `{}`", b.ty));
        };
        let Some(breg) = b.reg else {
            return self.err(base.span, "void operand");
        };
        let i = self.lower_scalar(fc, index)?;
        let Some(esize) = self.types.size_of(&elem) else {
            return self.err(span, "cannot index a pointer to an unsized type");
        };
        let addr = if esize == 1 {
            fc.fb.bin(BinOp::Add, breg, i)
        } else {
            let scale = fc.fb.const_(esize as i64);
            let scaled = fc.fb.bin(BinOp::Mul, i, scale);
            fc.fb.bin(BinOp::Add, breg, scaled)
        };
        Ok(Place::Mem(addr, (*elem).clone()))
    }

    /// Loads a place's value.
    fn load_place(&mut self, fc: &mut FuncCtx, place: &Place, span: Span) -> Result<RVal> {
        match place {
            Place::Reg(r, ty) => Ok(RVal::new(*r, ty.clone())),
            Place::Mem(addr, ty) => match ty {
                CType::Array(elem, _) => {
                    // Arrays decay to a pointer to their first element.
                    Ok(RVal::new(*addr, CType::Ptr(elem.clone())))
                }
                CType::Struct(_) => self.err(
                    span,
                    "struct values are not supported; use pointers to structs",
                ),
                CType::Func(ft) => {
                    // A function lvalue decays to a function pointer.
                    Ok(RVal::new(*addr, CType::Func(ft.clone()).decayed()))
                }
                _ => {
                    let width = scalar_width(self.types, ty).ok_or_else(|| {
                        CompileError::new(span, "cannot load this type".to_owned())
                    })?;
                    let signed = type_signed(ty);
                    let reg = fc.fb.load(*addr, width, signed);
                    Ok(RVal::new(reg, ty.clone()))
                }
            },
        }
    }

    /// Stores `value` into `place`, with C assignment conversions.
    /// Returns the (converted) stored value for use as the assignment's
    /// result.
    fn store_place(
        &mut self,
        fc: &mut FuncCtx,
        place: &Place,
        value: RVal,
        span: Span,
    ) -> Result<Reg> {
        let Some(vreg) = value.reg else {
            return self.err(span, "cannot assign a void value");
        };
        let target_ty = place.ty().clone();
        if !target_ty.is_scalar() {
            return self.err(span, format!("cannot assign to `{target_ty}`"));
        }
        let converted = self.coerce_to(fc, vreg, &value.ty, &target_ty, span)?;
        match place {
            Place::Reg(r, _) => {
                fc.fb.mov(*r, converted);
            }
            Place::Mem(addr, ty) => {
                let width = scalar_width(self.types, ty)
                    .ok_or_else(|| CompileError::new(span, "cannot store this type".to_owned()))?;
                fc.fb.store(*addr, converted, width);
            }
        }
        Ok(converted)
    }

    /// Converts a value to `target` type: integer narrowing via `Ext`,
    /// pointer/integer reinterpretation unchecked (as C compilers of the
    /// era allowed).
    fn coerce_to(
        &mut self,
        fc: &mut FuncCtx,
        reg: Reg,
        from: &CType,
        target: &CType,
        span: Span,
    ) -> Result<Reg> {
        match target {
            CType::Int(k) => {
                if !from.is_scalar() {
                    return self.err(span, format!("cannot convert `{from}` to `{target}`"));
                }
                let needs_narrowing = match from {
                    CType::Int(fk) => fk.size() > k.size() || (fk.size() == k.size() && fk != k),
                    _ => true, // pointer → int
                };
                if k.size() < 8 && needs_narrowing {
                    let width = Width::from_bytes(k.size()).expect("int width");
                    Ok(fc.fb.push_ext(reg, width, k.is_signed()))
                } else {
                    Ok(reg)
                }
            }
            CType::Ptr(_) => {
                if !from.is_scalar() {
                    return self.err(span, format!("cannot convert `{from}` to `{target}`"));
                }
                Ok(reg)
            }
            _ => self.err(span, format!("cannot convert to `{target}`")),
        }
    }

    // ----- expressions -----------------------------------------------------------

    /// Lowers an expression and insists on a scalar value register.
    fn lower_scalar(&mut self, fc: &mut FuncCtx, e: &Expr) -> Result<Reg> {
        let v = self.lower_expr(fc, e)?;
        match v.reg {
            Some(r) => Ok(r),
            None => self.err(e.span, "expected a value, found void"),
        }
    }

    fn lower_expr(&mut self, fc: &mut FuncCtx, e: &Expr) -> Result<RVal> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let reg = fc.fb.const_(*v);
                let kind = if i32::try_from(*v).is_ok() {
                    IntKind::I32
                } else {
                    IntKind::I64
                };
                Ok(RVal::new(reg, CType::Int(kind)))
            }
            ExprKind::StrLit(bytes) => {
                let gid = self.intern_string(bytes);
                let reg = fc.fb.addr_of_global(gid);
                Ok(RVal::new(reg, CType::char().ptr_to()))
            }
            ExprKind::Ident(name) => {
                if let Some(v) = self.lookup_var(fc, name) {
                    let place = match v.storage {
                        Storage::Reg(r) => Place::Reg(r, v.ty),
                        Storage::Slot(s) => {
                            let addr = fc.fb.addr_of_slot(s);
                            Place::Mem(addr, v.ty)
                        }
                        Storage::Global(g) => {
                            let addr = fc.fb.addr_of_global(g);
                            Place::Mem(addr, v.ty)
                        }
                    };
                    return self.load_place(fc, &place, e.span);
                }
                if let Some(sig) = self.funcs.get(name) {
                    let id = sig.id;
                    let fty = CType::Func(Box::new(sig.ty.clone())).decayed();
                    let reg = fc.fb.addr_of_func(id);
                    return Ok(RVal::new(reg, fty));
                }
                self.err(e.span, format!("unknown identifier `{name}`"))
            }
            ExprKind::Unary { op, operand } => self.lower_unary(fc, e.span, *op, operand),
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(fc, e.span, *op, lhs, rhs),
            ExprKind::IncDec { op, target } => self.lower_incdec(fc, e.span, *op, target),
            ExprKind::Assign { op, target, value } => {
                self.lower_assign(fc, e.span, *op, target, value)
            }
            ExprKind::Conditional {
                cond,
                then_e,
                else_e,
            } => self.lower_conditional(fc, cond, then_e, else_e),
            ExprKind::Call { callee, args } => self.lower_call(fc, e.span, callee, args),
            ExprKind::Index { base, index } => {
                let place = self.lower_element_addr(fc, base, index, e.span)?;
                self.load_place(fc, &place, e.span)
            }
            ExprKind::Member { .. } => {
                let place = self.lower_place(fc, e)?;
                self.load_place(fc, &place, e.span)
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.lower_expr(fc, expr)?;
                match ty {
                    CType::Void => Ok(RVal::void()),
                    CType::Int(k) => {
                        let Some(reg) = v.reg else {
                            return self.err(expr.span, "cannot cast void");
                        };
                        if !v.ty.is_scalar() {
                            return self.err(expr.span, format!("cannot cast `{}`", v.ty));
                        }
                        let out = if k.size() < 8 {
                            let width = Width::from_bytes(k.size()).expect("int width");
                            fc.fb.push_ext(reg, width, k.is_signed())
                        } else {
                            reg
                        };
                        Ok(RVal::new(out, ty.clone()))
                    }
                    CType::Ptr(_) => {
                        let Some(reg) = v.reg else {
                            return self.err(expr.span, "cannot cast void");
                        };
                        if !v.ty.is_scalar() {
                            return self.err(expr.span, format!("cannot cast `{}`", v.ty));
                        }
                        Ok(RVal::new(reg, ty.clone()))
                    }
                    _ => self.err(e.span, format!("unsupported cast to `{ty}`")),
                }
            }
            ExprKind::SizeofType(ty) => {
                let Some(size) = self.types.size_of(ty) else {
                    return self.err(e.span, "sizeof of unsized type");
                };
                let reg = fc.fb.const_(size as i64);
                Ok(RVal::new(reg, CType::Int(IntKind::U64)))
            }
            ExprKind::SizeofExpr(inner) => {
                let ty = self.infer_type(fc, inner)?;
                let Some(size) = self.types.size_of(&ty) else {
                    return self.err(e.span, "sizeof of unsized type");
                };
                let reg = fc.fb.const_(size as i64);
                Ok(RVal::new(reg, CType::Int(IntKind::U64)))
            }
        }
    }

    fn lower_unary(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        op: UnaryOp,
        operand: &Expr,
    ) -> Result<RVal> {
        match op {
            UnaryOp::Neg | UnaryOp::Plus | UnaryOp::BitNot => {
                let v = self.lower_expr(fc, operand)?;
                let CType::Int(k) = v.ty else {
                    return self.err(span, format!("arithmetic on `{}`", v.ty));
                };
                let Some(reg) = v.reg else {
                    return self.err(span, "void operand");
                };
                let rk = promote(k);
                let out = match op {
                    UnaryOp::Neg => fc.fb.un(UnOp::Neg, reg),
                    UnaryOp::BitNot => fc.fb.un(UnOp::BitNot, reg),
                    UnaryOp::Plus => reg,
                    _ => unreachable!(),
                };
                Ok(RVal::new(out, CType::Int(rk)))
            }
            UnaryOp::LogNot => {
                let v = self.lower_expr(fc, operand)?;
                let Some(reg) = v.reg else {
                    return self.err(span, "void operand");
                };
                if !v.ty.is_scalar() {
                    return self.err(span, format!("`!` on `{}`", v.ty));
                }
                let out = fc.fb.un(UnOp::LogNot, reg);
                Ok(RVal::new(out, CType::int()))
            }
            UnaryOp::Deref => {
                let v = self.lower_expr(fc, operand)?;
                let CType::Ptr(pointee) = v.ty.clone() else {
                    return self.err(span, format!("cannot dereference `{}`", v.ty));
                };
                let Some(reg) = v.reg else {
                    return self.err(span, "void operand");
                };
                // Dereferencing a function pointer yields the function
                // designator, which immediately decays back to the pointer.
                if matches!(pointee.as_ref(), CType::Func(_)) {
                    return Ok(RVal::new(reg, v.ty));
                }
                let place = Place::Mem(reg, (*pointee).clone());
                self.load_place(fc, &place, span)
            }
            UnaryOp::AddrOf => {
                // `&func` is a function pointer.
                if let ExprKind::Ident(name) = &operand.kind {
                    if self.lookup_var(fc, name).is_none() {
                        if let Some(sig) = self.funcs.get(name) {
                            let id = sig.id;
                            let fty = CType::Func(Box::new(sig.ty.clone())).decayed();
                            let reg = fc.fb.addr_of_func(id);
                            return Ok(RVal::new(reg, fty));
                        }
                    }
                }
                let place = self.lower_place(fc, operand)?;
                match place {
                    Place::Mem(addr, ty) => Ok(RVal::new(addr, ty.ptr_to())),
                    Place::Reg(..) => self.err(
                        span,
                        "internal: address-taken variable was register-allocated",
                    ),
                }
            }
        }
    }

    fn lower_binary(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<RVal> {
        match op {
            BinaryOp::Comma => {
                self.lower_expr(fc, lhs)?;
                return self.lower_expr(fc, rhs);
            }
            BinaryOp::LogAnd | BinaryOp::LogOr => {
                return self.lower_short_circuit(fc, op, lhs, rhs)
            }
            _ => {}
        }
        let l = self.lower_expr(fc, lhs)?;
        let r = self.lower_expr(fc, rhs)?;
        let (Some(lreg), Some(rreg)) = (l.reg, r.reg) else {
            return self.err(span, "void operand");
        };
        self.lower_binary_vals(fc, span, op, lreg, &l.ty, rreg, &r.ty)
    }

    /// The arithmetic/comparison core, shared by plain binary expressions
    /// and compound assignments.
    #[allow(clippy::too_many_arguments)]
    fn lower_binary_vals(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        op: BinaryOp,
        lreg: Reg,
        lty: &CType,
        rreg: Reg,
        rty: &CType,
    ) -> Result<RVal> {
        use BinaryOp as B;
        // Pointer arithmetic.
        match (op, lty.is_pointer(), rty.is_pointer()) {
            (B::Add, true, false) => {
                let out = self.pointer_offset(fc, span, lreg, lty, rreg, false)?;
                return Ok(RVal::new(out, lty.clone()));
            }
            (B::Add, false, true) => {
                let out = self.pointer_offset(fc, span, rreg, rty, lreg, false)?;
                return Ok(RVal::new(out, rty.clone()));
            }
            (B::Sub, true, false) => {
                let out = self.pointer_offset(fc, span, lreg, lty, rreg, true)?;
                return Ok(RVal::new(out, lty.clone()));
            }
            (B::Sub, true, true) => {
                if lty != rty {
                    return self.err(span, "pointer subtraction of different types");
                }
                let esize = self
                    .types
                    .size_of(lty.pointee().expect("pointer"))
                    .ok_or_else(|| CompileError::new(span, "pointer to unsized type".to_owned()))?;
                let diff = fc.fb.bin(BinOp::Sub, lreg, rreg);
                let out = if esize == 1 {
                    diff
                } else {
                    let scale = fc.fb.const_(esize as i64);
                    fc.fb.bin(BinOp::Div, diff, scale)
                };
                return Ok(RVal::new(out, CType::long()));
            }
            _ => {}
        }
        // Comparisons.
        if matches!(op, B::Lt | B::Gt | B::Le | B::Ge | B::Eq | B::Ne) {
            let unsigned = if lty.is_pointer() || rty.is_pointer() {
                true
            } else {
                match (lty, rty) {
                    (CType::Int(a), CType::Int(b)) => !usual_arith(*a, *b).is_signed(),
                    _ => return self.err(span, "cannot compare these operands"),
                }
            };
            let cmp = match (op, unsigned) {
                (B::Eq, _) => CmpOp::Eq,
                (B::Ne, _) => CmpOp::Ne,
                (B::Lt, false) => CmpOp::SLt,
                (B::Lt, true) => CmpOp::ULt,
                (B::Le, false) => CmpOp::SLe,
                (B::Le, true) => CmpOp::ULe,
                (B::Gt, false) => CmpOp::SGt,
                (B::Gt, true) => CmpOp::UGt,
                (B::Ge, false) => CmpOp::SGe,
                (B::Ge, true) => CmpOp::UGe,
                _ => unreachable!(),
            };
            let out = fc.fb.cmp(cmp, lreg, rreg);
            return Ok(RVal::new(out, CType::int()));
        }
        // Integer arithmetic.
        let (CType::Int(lk), CType::Int(rk)) = (lty, rty) else {
            return self.err(span, format!("invalid operands `{lty}` and `{rty}`"));
        };
        let res_kind = usual_arith(*lk, *rk);
        let unsigned = !res_kind.is_signed();
        let il_op = match op {
            B::Add => BinOp::Add,
            B::Sub => BinOp::Sub,
            B::Mul => BinOp::Mul,
            B::Div => {
                if unsigned {
                    BinOp::UDiv
                } else {
                    BinOp::Div
                }
            }
            B::Rem => {
                if unsigned {
                    BinOp::URem
                } else {
                    BinOp::Rem
                }
            }
            B::BitAnd => BinOp::And,
            B::BitOr => BinOp::Or,
            B::BitXor => BinOp::Xor,
            B::Shl => BinOp::Shl,
            B::Shr => {
                // Shift result type follows the (promoted) left operand.
                if promote(*lk).is_signed() {
                    BinOp::Shr
                } else {
                    BinOp::UShr
                }
            }
            _ => unreachable!("remaining ops handled above"),
        };
        let res_kind = if matches!(op, B::Shl | B::Shr) {
            promote(*lk)
        } else {
            res_kind
        };
        let out = fc.fb.bin(il_op, lreg, rreg);
        Ok(RVal::new(out, CType::Int(res_kind)))
    }

    /// `ptr ± offset`, scaled by the pointee size.
    fn pointer_offset(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        preg: Reg,
        pty: &CType,
        offset: Reg,
        subtract: bool,
    ) -> Result<Reg> {
        let esize = self
            .types
            .size_of(pty.pointee().expect("pointer type"))
            .ok_or_else(|| CompileError::new(span, "pointer to unsized type".to_owned()))?;
        let scaled = if esize == 1 {
            offset
        } else {
            let scale = fc.fb.const_(esize as i64);
            fc.fb.bin(BinOp::Mul, offset, scale)
        };
        Ok(fc
            .fb
            .bin(if subtract { BinOp::Sub } else { BinOp::Add }, preg, scaled))
    }

    fn lower_short_circuit(
        &mut self,
        fc: &mut FuncCtx,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<RVal> {
        let result = fc.fb.new_reg();
        let l = self.lower_scalar(fc, lhs)?;
        let rhs_b = fc.fb.new_block();
        let short_b = fc.fb.new_block();
        let join = fc.fb.new_block();
        match op {
            BinaryOp::LogAnd => fc.fb.terminate(Terminator::Branch {
                cond: l,
                then_to: rhs_b,
                else_to: short_b,
            }),
            BinaryOp::LogOr => fc.fb.terminate(Terminator::Branch {
                cond: l,
                then_to: short_b,
                else_to: rhs_b,
            }),
            _ => unreachable!(),
        }
        // Short-circuit side: result is 0 for `&&`, 1 for `||`.
        fc.fb.switch_to(short_b);
        let short_val = fc.fb.const_(if op == BinaryOp::LogAnd { 0 } else { 1 });
        fc.fb.mov(result, short_val);
        fc.fb.terminate(Terminator::Jump(join));
        // Evaluated side: result is rhs != 0.
        fc.fb.switch_to(rhs_b);
        let r = self.lower_scalar(fc, rhs)?;
        let zero = fc.fb.const_(0);
        let norm = fc.fb.cmp(CmpOp::Ne, r, zero);
        fc.fb.mov(result, norm);
        fc.fb.terminate(Terminator::Jump(join));
        fc.fb.switch_to(join);
        Ok(RVal::new(result, CType::int()))
    }

    fn lower_conditional(
        &mut self,
        fc: &mut FuncCtx,
        cond: &Expr,
        then_e: &Expr,
        else_e: &Expr,
    ) -> Result<RVal> {
        let result = fc.fb.new_reg();
        let c = self.lower_scalar(fc, cond)?;
        let then_b = fc.fb.new_block();
        let else_b = fc.fb.new_block();
        let join = fc.fb.new_block();
        fc.fb.terminate(Terminator::Branch {
            cond: c,
            then_to: then_b,
            else_to: else_b,
        });
        fc.fb.switch_to(then_b);
        let tv = self.lower_expr(fc, then_e)?;
        if let Some(r) = tv.reg {
            fc.fb.mov(result, r);
        }
        fc.fb.terminate(Terminator::Jump(join));
        fc.fb.switch_to(else_b);
        let ev = self.lower_expr(fc, else_e)?;
        if let Some(r) = ev.reg {
            fc.fb.mov(result, r);
        }
        fc.fb.terminate(Terminator::Jump(join));
        fc.fb.switch_to(join);
        // Result type: unify.
        let ty = match (&tv.ty, &ev.ty) {
            (CType::Void, _) | (_, CType::Void) => return Ok(RVal::void()),
            (CType::Int(a), CType::Int(b)) => CType::Int(usual_arith(*a, *b)),
            (CType::Ptr(_), _) => tv.ty.clone(),
            (_, CType::Ptr(_)) => ev.ty.clone(),
            _ => tv.ty.clone(),
        };
        Ok(RVal::new(result, ty))
    }

    fn lower_incdec(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        op: IncDec,
        target: &Expr,
    ) -> Result<RVal> {
        let place = self.lower_place(fc, target)?;
        let old = self.load_place(fc, &place, span)?;
        let Some(old_reg) = old.reg else {
            return self.err(span, "void operand");
        };
        let ty = old.ty.clone();
        let one = fc.fb.const_(1);
        let new_reg = match &ty {
            CType::Ptr(_) => {
                let sub = matches!(op, IncDec::PreDec | IncDec::PostDec);
                self.pointer_offset(fc, span, old_reg, &ty, one, sub)?
            }
            CType::Int(_) => {
                let il_op = if matches!(op, IncDec::PreDec | IncDec::PostDec) {
                    BinOp::Sub
                } else {
                    BinOp::Add
                };
                fc.fb.bin(il_op, old_reg, one)
            }
            _ => return self.err(span, format!("cannot increment `{ty}`")),
        };
        // Re-load the *old* value into a fresh register before the store
        // clobbers a register-backed variable.
        let saved_old = if matches!(op, IncDec::PostInc | IncDec::PostDec) {
            let tmp = fc.fb.new_reg();
            fc.fb.mov(tmp, old_reg);
            Some(tmp)
        } else {
            None
        };
        let stored = self.store_place(fc, &place, RVal::new(new_reg, ty.clone()), span)?;
        let result = match saved_old {
            Some(tmp) => tmp,
            None => stored,
        };
        Ok(RVal::new(result, ty))
    }

    fn lower_assign(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        op: Option<BinaryOp>,
        target: &Expr,
        value: &Expr,
    ) -> Result<RVal> {
        let place = self.lower_place(fc, target)?;
        let result = match op {
            None => {
                let v = self.lower_expr(fc, value)?;
                self.store_place(fc, &place, v, span)?
            }
            Some(bop) => {
                let old = self.load_place(fc, &place, span)?;
                let Some(old_reg) = old.reg else {
                    return self.err(span, "void operand");
                };
                let v = self.lower_expr(fc, value)?;
                let Some(vreg) = v.reg else {
                    return self.err(value.span, "void operand");
                };
                let combined =
                    self.lower_binary_vals(fc, span, bop, old_reg, &old.ty, vreg, &v.ty)?;
                self.store_place(fc, &place, combined, span)?
            }
        };
        Ok(RVal::new(result, place.ty().decayed()))
    }

    fn lower_call(
        &mut self,
        fc: &mut FuncCtx,
        span: Span,
        callee: &Expr,
        args: &[Expr],
    ) -> Result<RVal> {
        // Identify the call target: direct user function, extern, or
        // indirect through a pointer value.
        enum Target {
            Direct(FuncId, FuncType),
            Extern(ExternId, FuncType),
            Indirect(Reg, Option<FuncType>),
        }
        let target = match &callee.kind {
            ExprKind::Ident(name) if self.lookup_var(fc, name).is_none() => {
                if let Some(sig) = self.funcs.get(name) {
                    Target::Direct(sig.id, sig.ty.clone())
                } else if let Some(sig) = self.externs.get(name) {
                    Target::Extern(sig.id, sig.ty.clone())
                } else {
                    return self.err(callee.span, format!("unknown function `{name}`"));
                }
            }
            _ => {
                let v = self.lower_expr(fc, callee)?;
                let fty = match &v.ty {
                    CType::Ptr(inner) => match inner.as_ref() {
                        CType::Func(ft) => Some((**ft).clone()),
                        _ => None,
                    },
                    _ => None,
                };
                if fty.is_none() && !v.ty.is_pointer() {
                    return self.err(callee.span, format!("cannot call `{}`", v.ty));
                }
                let Some(reg) = v.reg else {
                    return self.err(callee.span, "void callee");
                };
                Target::Indirect(reg, fty)
            }
        };
        // Check arity against the known signature.
        let known_ty = match &target {
            Target::Direct(_, t) | Target::Extern(_, t) => Some(t.clone()),
            Target::Indirect(_, t) => t.clone(),
        };
        if let Some(ft) = &known_ty {
            if ft.params.len() != args.len() {
                return self.err(
                    span,
                    format!(
                        "call passes {} arguments, function takes {}",
                        args.len(),
                        ft.params.len()
                    ),
                );
            }
        }
        // Evaluate arguments left to right, converting to parameter types.
        let mut arg_regs = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let v = self.lower_expr(fc, a)?;
            let Some(mut reg) = v.reg else {
                return self.err(a.span, "void argument");
            };
            if let Some(ft) = &known_ty {
                reg = self.coerce_to(fc, reg, &v.ty, &ft.params[i], a.span)?;
            }
            arg_regs.push(reg);
        }
        let ret_ty = known_ty
            .as_ref()
            .map(|t| t.ret.clone())
            .unwrap_or(CType::int());
        let want_ret = ret_ty != CType::Void;
        let site = self.module.fresh_call_site();
        let il_callee = match target {
            Target::Direct(id, _) => Callee::Func(id),
            Target::Extern(id, _) => Callee::Ext(id),
            Target::Indirect(reg, _) => Callee::Reg(reg),
        };
        let dst = fc.fb.call(site, il_callee, arg_regs, want_ret);
        match dst {
            Some(r) => Ok(RVal::new(r, ret_ty)),
            None => Ok(RVal::void()),
        }
    }

    /// Computes the type of an expression without emitting code (for
    /// `sizeof expr`). Supports the common forms; side-effectful operands
    /// are typed but never evaluated, per C semantics.
    fn infer_type(&mut self, fc: &FuncCtx, e: &Expr) -> Result<CType> {
        Ok(match &e.kind {
            ExprKind::IntLit(_) => CType::int(),
            ExprKind::StrLit(bytes) => {
                CType::Array(Box::new(CType::char()), bytes.len() as u64 + 1)
            }
            ExprKind::Ident(name) => match self.lookup_var(fc, name) {
                Some(v) => v.ty,
                None => match self.funcs.get(name) {
                    Some(sig) => CType::Func(Box::new(sig.ty.clone())),
                    None => {
                        return self.err(e.span, format!("unknown identifier `{name}`"));
                    }
                },
            },
            ExprKind::Unary { op, operand } => {
                let t = self.infer_type(fc, operand)?;
                match op {
                    UnaryOp::Deref => match t.decayed() {
                        CType::Ptr(p) => (*p).clone(),
                        _ => return self.err(e.span, "cannot dereference"),
                    },
                    UnaryOp::AddrOf => t.ptr_to(),
                    UnaryOp::LogNot => CType::int(),
                    _ => match t {
                        CType::Int(k) => CType::Int(promote(k)),
                        other => other,
                    },
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.infer_type(fc, lhs)?.decayed();
                let rt = self.infer_type(fc, rhs)?.decayed();
                match op {
                    BinaryOp::Comma => rt,
                    BinaryOp::Lt
                    | BinaryOp::Gt
                    | BinaryOp::Le
                    | BinaryOp::Ge
                    | BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::LogAnd
                    | BinaryOp::LogOr => CType::int(),
                    BinaryOp::Sub if lt.is_pointer() && rt.is_pointer() => CType::long(),
                    _ if lt.is_pointer() => lt,
                    _ if rt.is_pointer() => rt,
                    _ => match (lt, rt) {
                        (CType::Int(a), CType::Int(b)) => CType::Int(usual_arith(a, b)),
                        _ => return self.err(e.span, "cannot type this operand"),
                    },
                }
            }
            ExprKind::IncDec { target, .. } => self.infer_type(fc, target)?.decayed(),
            ExprKind::Assign { target, .. } => self.infer_type(fc, target)?.decayed(),
            ExprKind::Conditional { then_e, .. } => self.infer_type(fc, then_e)?.decayed(),
            ExprKind::Call { callee, .. } => {
                let t = self.infer_type(fc, callee)?.decayed();
                match t {
                    CType::Ptr(inner) => match *inner {
                        CType::Func(ft) => ft.ret,
                        _ => CType::int(),
                    },
                    _ => CType::int(),
                }
            }
            ExprKind::Index { base, .. } => {
                let t = self.infer_type(fc, base)?.decayed();
                match t {
                    CType::Ptr(p) => (*p).clone(),
                    _ => return self.err(e.span, "cannot index"),
                }
            }
            ExprKind::Member { base, field, arrow } => {
                let bt = self.infer_type(fc, base)?;
                let sid = match (arrow, bt.decayed()) {
                    (true, CType::Ptr(inner)) => match *inner {
                        CType::Struct(s) => s,
                        _ => return self.err(e.span, "`->` on non-struct pointer"),
                    },
                    (false, CType::Struct(s)) => s,
                    _ => return self.err(e.span, "member access on non-struct"),
                };
                match self.types.struct_def(sid).field(field) {
                    Some(f) => f.ty.clone(),
                    None => return self.err(e.span, format!("no member `{field}`")),
                }
            }
            ExprKind::Cast { ty, .. } => ty.clone(),
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => CType::Int(IntKind::U64),
        })
    }
}

/// The IL width for storing a scalar of type `ty`.
fn scalar_width(types: &TypeTable, ty: &CType) -> Option<Width> {
    match ty {
        CType::Int(k) => Width::from_bytes(k.size()),
        CType::Ptr(_) => Some(Width::W8),
        _ => {
            let _ = types;
            None
        }
    }
}

/// Whether loads of this type sign-extend.
fn type_signed(ty: &CType) -> bool {
    match ty {
        CType::Int(k) => k.is_signed(),
        _ => false,
    }
}

fn encode_int(bytes: &mut [u8], offset: usize, value: i64, size: u64) {
    let le = value.to_le_bytes();
    bytes[offset..offset + size as usize].copy_from_slice(&le[..size as usize]);
}

// ----- address-taken analysis ------------------------------------------------

fn collect_addr_taken_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match &s.kind {
        StmtKind::Block { decls, stmts } => {
            for d in decls {
                match &d.init {
                    Some(Initializer::Expr(e)) => collect_addr_taken_expr(e, out),
                    Some(Initializer::List(items)) => {
                        for e in items {
                            collect_addr_taken_expr(e, out);
                        }
                    }
                    None => {}
                }
            }
            for st in stmts {
                collect_addr_taken_stmt(st, out);
            }
        }
        StmtKind::Expr(e) => collect_addr_taken_expr(e, out),
        StmtKind::Empty | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => {
            collect_addr_taken_expr(cond, out);
            collect_addr_taken_stmt(then_s, out);
            if let Some(e) = else_s {
                collect_addr_taken_stmt(e, out);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            collect_addr_taken_expr(cond, out);
            collect_addr_taken_stmt(body, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in [init, cond, step].into_iter().flatten() {
                collect_addr_taken_expr(e, out);
            }
            collect_addr_taken_stmt(body, out);
        }
        StmtKind::Switch { scrutinee, cases } => {
            collect_addr_taken_expr(scrutinee, out);
            for c in cases {
                for st in &c.stmts {
                    collect_addr_taken_stmt(st, out);
                }
            }
        }
        StmtKind::Return(Some(e)) => collect_addr_taken_expr(e, out),
        StmtKind::Return(None) => {}
    }
}

fn collect_addr_taken_expr(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Unary {
            op: UnaryOp::AddrOf,
            operand,
        } => {
            // `&name` marks the variable; `&arr[i]` and `&p->f` don't force
            // anything extra (arrays/structs are memory-resident anyway),
            // but their subexpressions must still be scanned.
            if let ExprKind::Ident(name) = &operand.kind {
                out.insert(name.clone());
            }
            collect_addr_taken_expr(operand, out);
        }
        ExprKind::IntLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary { operand, .. } => collect_addr_taken_expr(operand, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_addr_taken_expr(lhs, out);
            collect_addr_taken_expr(rhs, out);
        }
        ExprKind::IncDec { target, .. } => collect_addr_taken_expr(target, out),
        ExprKind::Assign { target, value, .. } => {
            collect_addr_taken_expr(target, out);
            collect_addr_taken_expr(value, out);
        }
        ExprKind::Conditional {
            cond,
            then_e,
            else_e,
        } => {
            collect_addr_taken_expr(cond, out);
            collect_addr_taken_expr(then_e, out);
            collect_addr_taken_expr(else_e, out);
        }
        ExprKind::Call { callee, args } => {
            collect_addr_taken_expr(callee, out);
            for a in args {
                collect_addr_taken_expr(a, out);
            }
        }
        ExprKind::Index { base, index } => {
            collect_addr_taken_expr(base, out);
            collect_addr_taken_expr(index, out);
        }
        ExprKind::Member { base, .. } => collect_addr_taken_expr(base, out),
        ExprKind::Cast { expr, .. } => collect_addr_taken_expr(expr, out),
        ExprKind::SizeofExpr(_) => {
            // The operand of sizeof is not evaluated; taking an address
            // inside it has no runtime effect.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Source};
    use impact_il::{module_to_string, verify_module};

    fn compile_one(src: &str) -> Module {
        let m = compile(&[Source::new("t.c", src)]).expect("compiles");
        verify_module(&m).expect("verifies");
        m
    }

    fn compile_fail(src: &str) -> CompileError {
        compile(&[Source::new("t.c", src)]).expect_err("should fail")
    }

    fn il_text(src: &str) -> String {
        let m = compile_one(src);
        module_to_string(&m)
    }

    #[test]
    fn lowers_arithmetic_function() {
        let text = il_text("int add(int a, int b) { return a + b; }");
        assert!(text.contains("add r0, r1"), "got:\n{text}");
        assert!(text.contains("ret r"), "got:\n{text}");
    }

    #[test]
    fn register_allocates_scalar_locals() {
        let m = compile_one("int f() { int x; x = 5; return x; }");
        assert!(m.functions[0].slots.is_empty());
    }

    #[test]
    fn address_taken_local_gets_slot() {
        let m = compile_one(
            "void set(int *p) { *p = 3; }\n\
             int f() { int x; set(&x); return x; }",
        );
        let f = m.func_by_name("f").unwrap();
        assert_eq!(m.function(f).slots.len(), 1);
    }

    #[test]
    fn arrays_get_slots_with_size() {
        let m = compile_one("int f() { char buf[64]; buf[0] = 1; return buf[0]; }");
        assert_eq!(m.functions[0].slots[0].size, 64);
    }

    #[test]
    fn string_literals_are_interned_and_deduped() {
        let m = compile_one(
            "extern void __puts(char *s);\n\
             void f() { __puts(\"hi\"); __puts(\"hi\"); __puts(\"ho\"); }",
        );
        // Two distinct string globals.
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[0].init, b"hi\0".to_vec());
    }

    #[test]
    fn direct_extern_and_indirect_calls() {
        let text = il_text(
            "extern int __fgetc(int fd);\n\
             int id(int x) { return x; }\n\
             int main() {\n\
               int (*f)(int);\n\
               f = id;\n\
               return f(__fgetc(0)) + id(1);\n\
             }",
        );
        assert!(text.contains(":__fgetc("), "got:\n{text}");
        assert!(text.contains(":id("), "got:\n{text}");
        assert!(text.contains(" *r"), "got:\n{text}"); // indirect
    }

    #[test]
    fn call_sites_are_unique() {
        let m = compile_one(
            "int g(int x) { return x; }\n\
             int main() { return g(1) + g(2) + g(3); }",
        );
        let sites: Vec<_> = m.all_call_sites().iter().map(|s| s.1).collect();
        let mut dedup = sites.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(sites.len(), 3);
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let text = il_text("int get(int *p, int i) { return p[i]; }");
        // Scale by 4 = element size.
        assert!(text.contains("const 4"), "got:\n{text}");
        assert!(text.contains("mul"), "got:\n{text}");
        assert!(text.contains("load.w4s"), "got:\n{text}");
    }

    #[test]
    fn char_access_uses_w1() {
        let text = il_text("char get(char *p) { return *p; }");
        assert!(text.contains("load.w1s"), "got:\n{text}");
    }

    #[test]
    fn unsigned_char_zero_extends() {
        let text = il_text("int get(unsigned char *p) { return *p; }");
        assert!(text.contains("load.w1u"), "got:\n{text}");
    }

    #[test]
    fn unsigned_division_uses_udiv() {
        let text = il_text("unsigned f(unsigned a, unsigned b) { return a / b; }");
        assert!(text.contains("udiv"), "got:\n{text}");
    }

    #[test]
    fn signed_division_uses_div() {
        let text = il_text("int f(int a, int b) { return a / b; }");
        assert!(text.contains("= div"), "got:\n{text}");
    }

    #[test]
    fn unsigned_comparison_uses_unsigned_ops() {
        let text = il_text("int f(unsigned a, unsigned b) { return a < b; }");
        assert!(text.contains("ult"), "got:\n{text}");
    }

    #[test]
    fn pointer_comparison_is_unsigned() {
        let text = il_text("int f(char *a, char *b) { return a < b; }");
        assert!(text.contains("ult"), "got:\n{text}");
    }

    #[test]
    fn struct_member_access_uses_offsets() {
        let text = il_text(
            "struct pair { int a; int b; };\n\
             int get_b(struct pair *p) { return p->b; }",
        );
        assert!(text.contains("const 4"), "got:\n{text}"); // offset of b
    }

    #[test]
    fn nested_struct_and_dot_access() {
        let text = il_text(
            "struct inner { int x; int y; };\n\
             struct outer { int tag; struct inner in; };\n\
             struct outer g;\n\
             int f() { return g.in.y; }",
        );
        // offset of `in` = 4, offset of y within inner = 4.
        assert!(text.contains("const 4"), "got:\n{text}");
    }

    #[test]
    fn global_scalar_init_encoded() {
        let m = compile_one("int x = 0x11223344;");
        assert_eq!(m.globals[0].init, vec![0x44, 0x33, 0x22, 0x11]);
    }

    #[test]
    fn global_array_init_encoded() {
        let m = compile_one("short t[3] = {1, 2};");
        assert_eq!(m.globals[0].size, 6);
        assert_eq!(m.globals[0].init, vec![1, 0, 2, 0, 0, 0]);
    }

    #[test]
    fn global_char_array_from_string() {
        let m = compile_one("char msg[] = \"ok\";");
        assert_eq!(m.globals[0].size, 3);
        assert_eq!(m.globals[0].init, b"ok\0".to_vec());
    }

    #[test]
    fn global_function_pointer_table_relocs() {
        let m = compile_one(
            "int add(int a, int b) { return a + b; }\n\
             int sub(int a, int b) { return a - b; }\n\
             int (*ops[2])(int, int) = {add, sub};",
        );
        let g = &m.globals[0];
        assert_eq!(g.func_relocs.len(), 2);
        assert_eq!(g.func_relocs[0], (0, FuncId(0)));
        assert_eq!(g.func_relocs[1], (8, FuncId(1)));
    }

    #[test]
    fn sizeof_expr_is_constant_without_code() {
        let m = compile_one("int f() { int a[10]; return sizeof a + sizeof a[0]; }");
        // No loads emitted for the sizeof operands: result folds from consts.
        let text = module_to_string(&m);
        assert!(text.contains("const 40"), "got:\n{text}");
        assert!(text.contains("const 4"), "got:\n{text}");
    }

    #[test]
    fn short_circuit_and_does_not_eval_rhs() {
        // Structure check: `a && b()` must branch before calling b.
        let text = il_text(
            "int b() { return 1; }\n\
             int f(int a) { return a && b(); }",
        );
        let branch_pos = text.find("branch").expect("has branch");
        let call_pos = text.find("call").expect("has call");
        assert!(branch_pos < call_pos, "got:\n{text}");
    }

    #[test]
    fn conditional_expression_produces_single_result() {
        let m = compile_one("int f(int c) { return c ? 10 : 20; }");
        let text = module_to_string(&m);
        assert!(text.contains("const 10"));
        assert!(text.contains("const 20"));
    }

    #[test]
    fn switch_lowering_compares_each_case() {
        let text = il_text(
            "int f(int x) {\n\
               switch (x) { case 1: return 10; case 2: return 20; default: return 0; }\n\
             }",
        );
        assert!(text.contains("const 1"));
        assert!(text.contains("const 2"));
        assert!(text.matches("= eq").count() >= 2, "got:\n{text}");
    }

    #[test]
    fn switch_fallthrough_jumps_to_next_body() {
        // Verified behaviourally later in the VM tests; structurally the
        // first case body must end with a jump (not return).
        let m = compile_one(
            "int f(int x) {\n\
               int n; n = 0;\n\
               switch (x) { case 1: n += 1; case 2: n += 2; break; }\n\
               return n;\n\
             }",
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn post_increment_returns_old_value() {
        let text = il_text("int f(int x) { return x++; }");
        // A temp mov saves the old value.
        assert!(text.contains("= r0"), "got:\n{text}");
    }

    #[test]
    fn compound_assign_on_pointer_scales() {
        let text = il_text("char *f(int *p) { p += 2; return (char*)p; }");
        assert!(text.contains("const 4"), "got:\n{text}");
    }

    #[test]
    fn narrow_cast_emits_ext() {
        let text = il_text("int f(int x) { return (char)x; }");
        assert!(text.contains("ext.w1s"), "got:\n{text}");
    }

    #[test]
    fn unsigned_cast_emits_zero_ext() {
        let text = il_text("int f(int x) { return (unsigned char)x; }");
        assert!(text.contains("ext.w1u"), "got:\n{text}");
    }

    #[test]
    fn store_to_narrow_register_var_truncates() {
        let text = il_text("int f(int x) { char c; c = x; return c; }");
        assert!(text.contains("ext.w1s"), "got:\n{text}");
    }

    #[test]
    fn rejects_unknown_identifier() {
        let e = compile_fail("int f() { return nope; }");
        assert!(e.message.contains("unknown identifier"));
    }

    #[test]
    fn rejects_unknown_function() {
        let e = compile_fail("int f() { return nope(1); }");
        assert!(e.message.contains("unknown function"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let e = compile_fail("int g(int a) { return a; } int f() { return g(1, 2); }");
        assert!(e.message.contains("takes"), "{}", e.message);
    }

    #[test]
    fn rejects_void_misuse() {
        let e = compile_fail("void g() {} int f() { return g() + 1; }");
        assert!(e.message.contains("void"), "{}", e.message);
    }

    #[test]
    fn rejects_return_value_from_void() {
        let e = compile_fail("void f() { return 3; }");
        assert!(e.message.contains("void function returns a value"));
    }

    #[test]
    fn rejects_missing_return_value() {
        let e = compile_fail("int f() { return; }");
        assert!(e.message.contains("returns no value"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = compile_fail("int f() { break; return 0; }");
        assert!(e.message.contains("break"));
    }

    #[test]
    fn rejects_duplicate_case() {
        let e = compile_fail("int f(int x) { switch (x) { case 1: case 1: break; } return 0; }");
        assert!(e.message.contains("duplicate case"));
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        let e = compile_fail("int f(int x) { (x + 1) = 2; return x; }");
        assert!(e.message.contains("not assignable"));
    }

    #[test]
    fn rejects_struct_by_value() {
        let e = compile_fail(
            "struct s { int a; };\n\
             struct s g;\n\
             int f() { struct s local; local = g; return 0; }",
        );
        assert!(
            e.message.contains("struct") || e.message.contains("assign"),
            "{}",
            e.message
        );
    }

    #[test]
    fn rejects_redefinition() {
        let e = compile_fail("int x; int x;");
        assert!(e.message.contains("redefined"));
    }

    #[test]
    fn rejects_deref_of_non_pointer() {
        let e = compile_fail("int f(int x) { return *x; }");
        assert!(e.message.contains("dereference"));
    }

    #[test]
    fn rejects_unknown_member() {
        let e = compile_fail(
            "struct s { int a; };\n\
             int f(struct s *p) { return p->b; }",
        );
        assert!(e.message.contains("no member"));
    }

    #[test]
    fn fallthrough_function_gets_implicit_return() {
        let m = compile_one("void f(int x) { x = x + 1; }");
        let text = module_to_string(&m);
        assert!(text.contains("ret\n"), "got:\n{text}");
    }

    #[test]
    fn deref_of_function_pointer_calls_through() {
        let m = compile_one(
            "int id(int x) { return x; }\n\
             int main() { int (*f)(int); f = &id; return (*f)(7); }",
        );
        let text = module_to_string(&m);
        assert!(text.contains("call cs0 *r"), "got:\n{text}");
    }

    #[test]
    fn multi_source_compilation_shares_symbols() {
        let m = compile(&[
            Source::new("a.c", "int helper(int x) { return x * 2; }"),
            Source::new("b.c", "int helper(int); int main() { return helper(21); }"),
        ])
        .expect("compiles");
        verify_module(&m).expect("verifies");
        assert_eq!(m.functions.len(), 2);
    }

    #[test]
    fn local_array_brace_init_stores_and_zero_fills() {
        let text = il_text("int f() { int a[4] = {7, 8}; return a[3]; }");
        assert!(text.contains("const 7"));
        assert!(text.contains("const 8"));
        // Zero fill present.
        assert!(text.contains("const 0"), "got:\n{text}");
    }

    #[test]
    fn comma_expression_evaluates_both() {
        let m = compile_one("int f(int a) { int b; b = (a = 3, a + 1); return b; }");
        verify_module(&m).unwrap();
    }

    #[test]
    fn global_pointer_initialized_with_function() {
        let m = compile_one(
            "int h(int x) { return x; }\n\
             int (*fp)(int) = h;",
        );
        assert_eq!(m.globals[0].func_relocs, vec![(0, FuncId(0))]);
    }
}
