//! Recursive-descent parser for the C subset.
//!
//! Produces the [`crate::ast`] tree plus the [`TypeTable`] of struct
//! layouts. Enum constants are substituted with their values during
//! parsing (so enum constants cannot be shadowed by variables — a
//! documented restriction of the subset).

use std::collections::HashMap;

use crate::ast::*;
use crate::error::{CompileError, Result};
use crate::token::{Keyword, Punct, Span, Token, TokenKind};
use crate::types::{CType, FuncType, IntKind, StructId, TypeTable};

/// Accumulated parse state shared across the source files of one
/// compilation.
#[derive(Debug, Default)]
pub struct ParseContext {
    /// Struct layouts.
    pub types: TypeTable,
    /// Enum constants seen so far.
    pub enum_consts: HashMap<String, i64>,
    /// `typedef` names and their meanings (top-level only; typedef names
    /// may not be shadowed by variables, as with enum constants).
    pub typedefs: HashMap<String, CType>,
    /// The growing program.
    pub program: Program,
}

impl ParseContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        ParseContext::default()
    }
}

/// Parses one token stream (from [`crate::lexer::lex`]) into `ctx`.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse_into(ctx: &mut ParseContext, tokens: &[Token]) -> Result<()> {
    let mut p = Parser {
        ctx,
        tokens,
        pos: 0,
    };
    p.parse_top_level()
}

struct Parser<'c, 't> {
    ctx: &'c mut ParseContext,
    tokens: &'t [Token],
    pos: usize,
}

/// One suffix of a direct declarator.
enum DeclSuffix {
    Array(u64),
    Func(Vec<Param>),
}

impl<'c, 't> Parser<'c, 't> {
    // ----- token plumbing -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn err_here(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.span(), msg)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{}`, found {}", p.as_str(), self.peek())))
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if *self.peek() == TokenKind::Kw(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<()> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected keyword `{}`, found {}",
                k.as_str(),
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        let span = self.span();
        if let TokenKind::Ident(name) = self.peek() {
            let name = name.clone();
            self.pos += 1;
            Ok((name, span))
        } else {
            Err(self.err_here(format!("expected identifier, found {}", self.peek())))
        }
    }

    // ----- type parsing ---------------------------------------------------

    /// Whether the token at offset `n` starts a type.
    fn is_type_start_at(&self, n: usize) -> bool {
        match self.peek_at(n) {
            TokenKind::Kw(
                Keyword::Void
                | Keyword::Char
                | Keyword::Short
                | Keyword::Int
                | Keyword::Long
                | Keyword::Signed
                | Keyword::Unsigned
                | Keyword::Struct
                | Keyword::Enum,
            ) => true,
            TokenKind::Ident(name) => self.ctx.typedefs.contains_key(name),
            _ => false,
        }
    }

    fn is_type_start(&self) -> bool {
        self.is_type_start_at(0)
    }

    /// Parses declaration specifiers (the base type before declarators).
    fn parse_base_type(&mut self) -> Result<CType> {
        if let TokenKind::Ident(name) = self.peek() {
            if let Some(ty) = self.ctx.typedefs.get(name) {
                let ty = ty.clone();
                self.pos += 1;
                return Ok(ty);
            }
        }
        if self.eat_kw(Keyword::Struct) {
            let (name, _) = self.expect_ident()?;
            let id = self.struct_id_or_declare(&name);
            return Ok(CType::Struct(id));
        }
        if self.eat_kw(Keyword::Enum) {
            // `enum Tag` as a type is just int; the tag is not tracked.
            if let TokenKind::Ident(_) = self.peek() {
                self.pos += 1;
            }
            return Ok(CType::int());
        }
        let mut signedness: Option<bool> = None; // Some(true) = unsigned
        let mut base: Option<Keyword> = None;
        loop {
            match self.peek() {
                TokenKind::Kw(Keyword::Signed) => {
                    signedness = Some(false);
                    self.pos += 1;
                }
                TokenKind::Kw(Keyword::Unsigned) => {
                    signedness = Some(true);
                    self.pos += 1;
                }
                TokenKind::Kw(
                    k @ (Keyword::Void | Keyword::Char | Keyword::Short | Keyword::Long),
                ) => {
                    if base.is_some() {
                        return Err(self.err_here("conflicting type specifiers"));
                    }
                    base = Some(*k);
                    self.pos += 1;
                }
                TokenKind::Kw(Keyword::Int) => {
                    // `short int` / `long int` / plain `int`.
                    if matches!(base, Some(Keyword::Short) | Some(Keyword::Long)) {
                        // the `int` adds nothing
                    } else if base.is_some() {
                        return Err(self.err_here("conflicting type specifiers"));
                    } else {
                        base = Some(Keyword::Int);
                    }
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let unsigned = signedness == Some(true);
        let ty = match base {
            Some(Keyword::Void) => {
                if signedness.is_some() {
                    return Err(self.err_here("`void` cannot be signed or unsigned"));
                }
                CType::Void
            }
            Some(Keyword::Char) => CType::Int(if unsigned { IntKind::U8 } else { IntKind::I8 }),
            Some(Keyword::Short) => CType::Int(if unsigned { IntKind::U16 } else { IntKind::I16 }),
            Some(Keyword::Int) | None => {
                if base.is_none() && signedness.is_none() {
                    return Err(self.err_here("expected a type"));
                }
                CType::Int(if unsigned { IntKind::U32 } else { IntKind::I32 })
            }
            Some(Keyword::Long) => CType::Int(if unsigned { IntKind::U64 } else { IntKind::I64 }),
            _ => unreachable!("base is limited to type keywords"),
        };
        Ok(ty)
    }

    fn struct_id_or_declare(&mut self, name: &str) -> StructId {
        match self.ctx.types.struct_by_name(name) {
            Some(id) => id,
            None => self.ctx.types.declare_struct(name),
        }
    }

    /// Parses a declarator given the base type; returns the declared name
    /// (absent for abstract declarators) and the full type.
    fn parse_declarator(&mut self, base: CType) -> Result<(Option<String>, CType)> {
        let mut base = base;
        while self.eat_punct(Punct::Star) {
            base = base.ptr_to();
        }
        self.parse_direct_declarator(base)
    }

    fn parse_direct_declarator(&mut self, base: CType) -> Result<(Option<String>, CType)> {
        // Parenthesized declarator: `(` followed by `*`, `(`, or an
        // identifier. A `(` followed by a type or `)` is a function suffix
        // of an abstract declarator instead.
        if *self.peek() == TokenKind::Punct(Punct::LParen)
            && matches!(
                self.peek_at(1),
                TokenKind::Punct(Punct::Star)
                    | TokenKind::Punct(Punct::LParen)
                    | TokenKind::Ident(_)
            )
            && !self.is_type_start_at(1)
        {
            let inner_start = self.pos;
            self.skip_balanced_parens()?;
            let base = self.parse_declarator_suffixes(base)?;
            let after_suffixes = self.pos;
            self.pos = inner_start;
            self.expect_punct(Punct::LParen)?;
            let result = self.parse_declarator(base)?;
            self.expect_punct(Punct::RParen)?;
            self.pos = after_suffixes;
            return Ok(result);
        }
        let name = if let TokenKind::Ident(n) = self.peek() {
            let n = n.clone();
            self.pos += 1;
            Some(n)
        } else {
            None
        };
        let ty = self.parse_declarator_suffixes(base)?;
        Ok((name, ty))
    }

    fn skip_balanced_parens(&mut self) -> Result<()> {
        let start = self.span();
        debug_assert_eq!(*self.peek(), TokenKind::Punct(Punct::LParen));
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::LParen) => depth += 1,
                TokenKind::Punct(Punct::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return Ok(());
                    }
                }
                TokenKind::Eof => {
                    return Err(CompileError::new(start, "unbalanced parentheses"));
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parses `[n]` and `(params)` suffixes and folds them (left suffix
    /// outermost) onto `base`.
    fn parse_declarator_suffixes(&mut self, base: CType) -> Result<CType> {
        let mut suffixes = Vec::new();
        loop {
            if self.eat_punct(Punct::LBracket) {
                // `[]` — size completed from the initializer by lowering.
                if self.eat_punct(Punct::RBracket) {
                    suffixes.push(DeclSuffix::Array(0));
                    continue;
                }
                let size_expr = self.parse_conditional()?;
                let n = self.const_eval(&size_expr)?;
                if n < 0 {
                    return Err(CompileError::new(size_expr.span, "negative array size"));
                }
                self.expect_punct(Punct::RBracket)?;
                suffixes.push(DeclSuffix::Array(n as u64));
            } else if *self.peek() == TokenKind::Punct(Punct::LParen) {
                self.pos += 1;
                let params = self.parse_param_list()?;
                self.expect_punct(Punct::RParen)?;
                suffixes.push(DeclSuffix::Func(params));
            } else {
                break;
            }
        }
        let mut ty = base;
        for s in suffixes.into_iter().rev() {
            ty = match s {
                DeclSuffix::Array(n) => CType::Array(Box::new(ty), n),
                DeclSuffix::Func(params) => CType::Func(Box::new(FuncType {
                    ret: ty,
                    params: params.into_iter().map(|p| p.ty).collect(),
                })),
            };
        }
        Ok(ty)
    }

    /// Parses a parameter list body (after `(`, up to but not including
    /// `)`), returning named parameters. `void` alone means "no
    /// parameters". Array and function parameter types decay to pointers.
    fn parse_param_list(&mut self) -> Result<Vec<Param>> {
        let mut params = Vec::new();
        if *self.peek() == TokenKind::Punct(Punct::RParen) {
            return Ok(params);
        }
        if *self.peek() == TokenKind::Kw(Keyword::Void)
            && *self.peek_at(1) == TokenKind::Punct(Punct::RParen)
        {
            self.pos += 1;
            return Ok(params);
        }
        loop {
            if !self.is_type_start() {
                return Err(self.err_here("expected parameter type"));
            }
            let base = self.parse_base_type()?;
            let (name, ty) = self.parse_declarator(base)?;
            let ty = ty.decayed();
            params.push(Param {
                name: name.unwrap_or_default(),
                ty,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(params)
    }

    /// Parses a type-name (specifiers + abstract declarator), as used by
    /// casts and `sizeof`.
    fn parse_type_name(&mut self) -> Result<CType> {
        let base = self.parse_base_type()?;
        let (name, ty) = self.parse_declarator(base)?;
        if name.is_some() {
            return Err(self.err_here("type name must not declare an identifier"));
        }
        Ok(ty)
    }

    // ----- constant expressions --------------------------------------------

    /// Evaluates a constant integer expression (used for array sizes, case
    /// labels, and enum values).
    fn const_eval(&self, e: &Expr) -> Result<i64> {
        let fail = |msg: &str| Err(CompileError::new(e.span, msg.to_owned()));
        match &e.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::Unary { op, operand } => {
                let v = self.const_eval(operand)?;
                Ok(match op {
                    UnaryOp::Neg => v.wrapping_neg(),
                    UnaryOp::Plus => v,
                    UnaryOp::BitNot => !v,
                    UnaryOp::LogNot => (v == 0) as i64,
                    UnaryOp::Deref | UnaryOp::AddrOf => {
                        return fail("pointer operations are not constant expressions")
                    }
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.const_eval(lhs)?;
                // Short-circuit forms must not evaluate the dead side if it
                // would divide by zero, so handle them first.
                match op {
                    BinaryOp::LogAnd => {
                        return Ok(if l == 0 {
                            0
                        } else {
                            (self.const_eval(rhs)? != 0) as i64
                        })
                    }
                    BinaryOp::LogOr => {
                        return Ok(if l != 0 {
                            1
                        } else {
                            (self.const_eval(rhs)? != 0) as i64
                        })
                    }
                    _ => {}
                }
                let r = self.const_eval(rhs)?;
                Ok(match op {
                    BinaryOp::Add => l.wrapping_add(r),
                    BinaryOp::Sub => l.wrapping_sub(r),
                    BinaryOp::Mul => l.wrapping_mul(r),
                    BinaryOp::Div => {
                        if r == 0 {
                            return fail("division by zero in constant expression");
                        }
                        l.wrapping_div(r)
                    }
                    BinaryOp::Rem => {
                        if r == 0 {
                            return fail("division by zero in constant expression");
                        }
                        l.wrapping_rem(r)
                    }
                    BinaryOp::BitAnd => l & r,
                    BinaryOp::BitOr => l | r,
                    BinaryOp::BitXor => l ^ r,
                    BinaryOp::Shl => l.wrapping_shl(r as u32),
                    BinaryOp::Shr => l.wrapping_shr(r as u32),
                    BinaryOp::Lt => (l < r) as i64,
                    BinaryOp::Gt => (l > r) as i64,
                    BinaryOp::Le => (l <= r) as i64,
                    BinaryOp::Ge => (l >= r) as i64,
                    BinaryOp::Eq => (l == r) as i64,
                    BinaryOp::Ne => (l != r) as i64,
                    BinaryOp::Comma => r,
                    BinaryOp::LogAnd | BinaryOp::LogOr => unreachable!("handled above"),
                })
            }
            ExprKind::Conditional {
                cond,
                then_e,
                else_e,
            } => {
                if self.const_eval(cond)? != 0 {
                    self.const_eval(then_e)
                } else {
                    self.const_eval(else_e)
                }
            }
            ExprKind::SizeofType(ty) => self
                .ctx
                .types
                .size_of(ty)
                .map(|s| s as i64)
                .ok_or_else(|| CompileError::new(e.span, "sizeof of unsized type".to_owned())),
            ExprKind::Cast { ty, expr } => {
                let v = self.const_eval(expr)?;
                match ty {
                    CType::Int(k) => Ok(truncate_to_kind(v, *k)),
                    _ => fail("only integer casts are constant expressions"),
                }
            }
            _ => fail("not a constant expression"),
        }
    }

    // ----- top level --------------------------------------------------------

    fn parse_top_level(&mut self) -> Result<()> {
        while *self.peek() != TokenKind::Eof {
            if self.looks_like_function_def() {
                self.parse_function()?;
            } else {
                self.parse_top_item()?;
            }
        }
        Ok(())
    }

    fn parse_top_item(&mut self) -> Result<()> {
        // `struct NAME { ... };` or `struct NAME;` (pure tag declaration).
        if *self.peek() == TokenKind::Kw(Keyword::Struct)
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(
                self.peek_at(2),
                TokenKind::Punct(Punct::LBrace) | TokenKind::Punct(Punct::Semi)
            )
        {
            return self.parse_struct_def();
        }
        if *self.peek() == TokenKind::Kw(Keyword::Enum)
            && (matches!(self.peek_at(1), TokenKind::Punct(Punct::LBrace))
                || (matches!(self.peek_at(1), TokenKind::Ident(_))
                    && matches!(self.peek_at(2), TokenKind::Punct(Punct::LBrace))))
        {
            return self.parse_enum_def();
        }
        if self.eat_kw(Keyword::Typedef) {
            return self.parse_typedef();
        }
        let is_extern = self.eat_kw(Keyword::Extern);
        let _ = self.eat_kw(Keyword::Static); // accepted, ignored
        if !self.is_type_start() {
            return Err(self.err_here(format!("expected a declaration, found {}", self.peek())));
        }
        let base = self.parse_base_type()?;

        // `struct S;` after parse_base_type (tag already declared).
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }

        let decl_span = self.span();
        let (name, ty) = self.parse_declarator(base.clone())?;
        let Some(name) = name else {
            return Err(CompileError::new(decl_span, "declaration needs a name"));
        };

        if let CType::Func(ft) = &ty {
            if is_extern {
                self.expect_punct(Punct::Semi)?;
                self.ctx.program.externs.push(ExternFuncDecl {
                    span: decl_span,
                    name,
                    ret: ft.ret.clone(),
                    params: ft.params.clone(),
                });
                return Ok(());
            }
            if *self.peek() == TokenKind::Punct(Punct::LBrace) {
                // A definition: re-parse the parameter names. The declarator
                // kept only the types, so rewind is avoided by re-extracting
                // names during `parse_declarator`; instead, we parse the
                // parameter list again from the stored function type and the
                // most recent parameter names.
                return Err(CompileError::new(
                    decl_span,
                    "internal: function definitions are parsed by parse_function",
                ));
            }
            // A prototype; definitions are collected in a pre-pass, so the
            // prototype itself carries no information. Consume and ignore.
            self.expect_punct(Punct::Semi)?;
            return Ok(());
        }

        // Global variable(s).
        let mut pending = vec![(decl_span, name, ty)];
        loop {
            let (span, name, ty) = pending.pop().expect("one pending declarator");
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            self.ctx.program.globals.push(GlobalDecl {
                span,
                name,
                ty,
                init,
            });
            if self.eat_punct(Punct::Comma) {
                let span = self.span();
                let (name, ty) = self.parse_declarator(base.clone())?;
                let Some(name) = name else {
                    return Err(CompileError::new(span, "declaration needs a name"));
                };
                pending.push((span, name, ty));
                continue;
            }
            self.expect_punct(Punct::Semi)?;
            return Ok(());
        }
    }

    /// `typedef <specifiers> <declarator>;`
    fn parse_typedef(&mut self) -> Result<()> {
        if !self.is_type_start() {
            return Err(self.err_here("typedef needs a type"));
        }
        let base = self.parse_base_type()?;
        let span = self.span();
        let (name, ty) = self.parse_declarator(base)?;
        let Some(name) = name else {
            return Err(CompileError::new(span, "typedef needs a name"));
        };
        self.expect_punct(Punct::Semi)?;
        if self.ctx.typedefs.insert(name.clone(), ty).is_some() {
            return Err(CompileError::new(
                span,
                format!("typedef `{name}` redefined"),
            ));
        }
        Ok(())
    }

    fn parse_struct_def(&mut self) -> Result<()> {
        self.expect_kw(Keyword::Struct)?;
        let (name, span) = self.expect_ident()?;
        let id = self.struct_id_or_declare(&name);
        if self.eat_punct(Punct::Semi) {
            return Ok(()); // forward declaration
        }
        if self.ctx.types.struct_def(id).defined {
            return Err(CompileError::new(
                span,
                format!("struct `{name}` redefined"),
            ));
        }
        self.expect_punct(Punct::LBrace)?;
        let mut members = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if !self.is_type_start() {
                return Err(self.err_here("expected a struct member declaration"));
            }
            let base = self.parse_base_type()?;
            loop {
                let mspan = self.span();
                let (mname, mty) = self.parse_declarator(base.clone())?;
                let Some(mname) = mname else {
                    return Err(CompileError::new(mspan, "struct member needs a name"));
                };
                members.push((mname, mty));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        self.expect_punct(Punct::Semi)?;
        if !self.ctx.types.complete_struct(id, members) {
            return Err(CompileError::new(
                span,
                format!("struct `{name}` has a member of unsized type"),
            ));
        }
        Ok(())
    }

    fn parse_enum_def(&mut self) -> Result<()> {
        self.expect_kw(Keyword::Enum)?;
        if let TokenKind::Ident(_) = self.peek() {
            self.pos += 1; // tag ignored
        }
        self.expect_punct(Punct::LBrace)?;
        let mut next = 0i64;
        loop {
            let (name, span) = self.expect_ident()?;
            if self.eat_punct(Punct::Assign) {
                let e = self.parse_conditional()?;
                next = self.const_eval(&e)?;
            }
            if self.ctx.enum_consts.insert(name.clone(), next).is_some() {
                return Err(CompileError::new(
                    span,
                    format!("enum constant `{name}` redefined"),
                ));
            }
            next += 1;
            if !self.eat_punct(Punct::Comma) {
                break;
            }
            if *self.peek() == TokenKind::Punct(Punct::RBrace) {
                break; // trailing comma
            }
        }
        self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn parse_initializer(&mut self) -> Result<Initializer> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            if !self.eat_punct(Punct::RBrace) {
                loop {
                    items.push(self.parse_assign()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                    if *self.peek() == TokenKind::Punct(Punct::RBrace) {
                        break; // trailing comma
                    }
                }
                self.expect_punct(Punct::RBrace)?;
            }
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.parse_assign()?))
        }
    }

    // ----- function bodies --------------------------------------------------

    /// Parses a full function definition starting at the specifiers. Used
    /// by [`parse_program_items`] when lookahead sees `type declarator {`.
    fn parse_function(&mut self) -> Result<()> {
        let _ = self.eat_kw(Keyword::Static);
        let base = self.parse_base_type()?;
        let mut ret = base;
        while self.eat_punct(Punct::Star) {
            ret = ret.ptr_to();
        }
        let (name, span) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let params = self.parse_param_list()?;
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_block()?;
        self.ctx.program.functions.push(FunctionDef {
            span,
            name,
            ret,
            params,
            body,
        });
        Ok(())
    }

    /// Decides whether the upcoming top-level item is a function
    /// *definition* (as opposed to a global/prototype): scan past the
    /// declarator for `(`...`)` followed by `{`.
    fn looks_like_function_def(&self) -> bool {
        // Pattern: [static] specifiers '*'* IDENT '(' ... ')' '{'
        let mut i = 0;
        if *self.peek_at(i) == TokenKind::Kw(Keyword::Typedef) {
            return false;
        }
        if *self.peek_at(i) == TokenKind::Kw(Keyword::Static) {
            i += 1;
        }
        if !self.is_type_start_at(i) {
            return false;
        }
        // A typedef-named specifier is a single token.
        if matches!(self.peek_at(i), TokenKind::Ident(_)) {
            i += 1;
        }
        // Skip specifier words.
        while matches!(
            self.peek_at(i),
            TokenKind::Kw(
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Signed
                    | Keyword::Unsigned
            )
        ) {
            i += 1;
        }
        if *self.peek_at(i) == TokenKind::Kw(Keyword::Struct)
            || *self.peek_at(i) == TokenKind::Kw(Keyword::Enum)
        {
            i += 1;
            if matches!(self.peek_at(i), TokenKind::Ident(_)) {
                i += 1;
            }
        }
        while *self.peek_at(i) == TokenKind::Punct(Punct::Star) {
            i += 1;
        }
        if !matches!(self.peek_at(i), TokenKind::Ident(_)) {
            return false;
        }
        i += 1;
        if *self.peek_at(i) != TokenKind::Punct(Punct::LParen) {
            return false;
        }
        // Find the matching `)`.
        let mut depth = 0usize;
        loop {
            match self.peek_at(i) {
                TokenKind::Punct(Punct::LParen) => depth += 1,
                TokenKind::Punct(Punct::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                TokenKind::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        *self.peek_at(i) == TokenKind::Punct(Punct::LBrace)
    }

    fn parse_block(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_punct(Punct::LBrace)?;
        let mut decls = Vec::new();
        // C89: declarations first.
        while self.is_type_start() {
            let base = self.parse_base_type()?;
            loop {
                let dspan = self.span();
                let (name, ty) = self.parse_declarator(base.clone())?;
                let Some(name) = name else {
                    return Err(CompileError::new(dspan, "local declaration needs a name"));
                };
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.parse_initializer()?)
                } else {
                    None
                };
                decls.push(LocalDecl {
                    span: dspan,
                    name,
                    ty,
                    init,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(CompileError::new(span, "unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Stmt {
            span,
            kind: StmtKind::Block { decls, stmts },
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        match self.peek() {
            TokenKind::Punct(Punct::LBrace) => self.parse_block(),
            TokenKind::Punct(Punct::Semi) => {
                self.pos += 1;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Empty,
                })
            }
            TokenKind::Kw(Keyword::If) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_s = Box::new(self.parse_stmt()?);
                let else_s = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt {
                    span,
                    kind: StmtKind::If {
                        cond,
                        then_s,
                        else_s,
                    },
                })
            }
            TokenKind::Kw(Keyword::While) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt {
                    span,
                    kind: StmtKind::While { cond, body },
                })
            }
            TokenKind::Kw(Keyword::Do) => {
                self.pos += 1;
                let body = Box::new(self.parse_stmt()?);
                self.expect_kw(Keyword::While)?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::DoWhile { body, cond },
                })
            }
            TokenKind::Kw(Keyword::For) => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let init = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt {
                    span,
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                })
            }
            TokenKind::Kw(Keyword::Switch) => self.parse_switch(),
            TokenKind::Kw(Keyword::Break) => {
                self.pos += 1;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Break,
                })
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.pos += 1;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Continue,
                })
            }
            TokenKind::Kw(Keyword::Return) => {
                self.pos += 1;
                let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Return(value),
                })
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Expr(e),
                })
            }
        }
    }

    fn parse_switch(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect_kw(Keyword::Switch)?;
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            match self.peek() {
                TokenKind::Kw(Keyword::Case) => {
                    self.pos += 1;
                    let e = self.parse_conditional()?;
                    let v = self.const_eval(&e)?;
                    self.expect_punct(Punct::Colon)?;
                    cases.push(SwitchCase {
                        value: Some(v),
                        stmts: Vec::new(),
                    });
                }
                TokenKind::Kw(Keyword::Default) => {
                    self.pos += 1;
                    self.expect_punct(Punct::Colon)?;
                    cases.push(SwitchCase {
                        value: None,
                        stmts: Vec::new(),
                    });
                }
                TokenKind::Eof => return Err(CompileError::new(span, "unterminated switch")),
                _ => {
                    let stmt = self.parse_stmt()?;
                    match cases.last_mut() {
                        Some(c) => c.stmts.push(stmt),
                        None => {
                            return Err(CompileError::new(
                                stmt.span,
                                "statement before first case label",
                            ))
                        }
                    }
                }
            }
        }
        Ok(Stmt {
            span,
            kind: StmtKind::Switch { scrutinee, cases },
        })
    }

    // ----- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        let mut e = self.parse_assign()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.parse_assign()?;
            let span = e.span.merge(rhs.span);
            e = Expr {
                span,
                kind: ExprKind::Binary {
                    op: BinaryOp::Comma,
                    lhs: Box::new(e),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(e)
    }

    fn parse_assign(&mut self) -> Result<Expr> {
        let lhs = self.parse_conditional()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => None,
            TokenKind::Punct(Punct::PlusAssign) => Some(BinaryOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => Some(BinaryOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => Some(BinaryOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => Some(BinaryOp::Div),
            TokenKind::Punct(Punct::PercentAssign) => Some(BinaryOp::Rem),
            TokenKind::Punct(Punct::AmpAssign) => Some(BinaryOp::BitAnd),
            TokenKind::Punct(Punct::PipeAssign) => Some(BinaryOp::BitOr),
            TokenKind::Punct(Punct::CaretAssign) => Some(BinaryOp::BitXor),
            TokenKind::Punct(Punct::ShlAssign) => Some(BinaryOp::Shl),
            TokenKind::Punct(Punct::ShrAssign) => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let value = self.parse_assign()?; // right-associative
        let span = lhs.span.merge(value.span);
        Ok(Expr {
            span,
            kind: ExprKind::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(value),
            },
        })
    }

    fn parse_conditional(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(cond);
        }
        let then_e = self.parse_expr()?;
        self.expect_punct(Punct::Colon)?;
        let else_e = self.parse_conditional()?;
        let span = cond.span.merge(else_e.span);
        Ok(Expr {
            span,
            kind: ExprKind::Conditional {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            },
        })
    }

    /// Binary operator precedence climbing. Level 0 is `||`.
    fn parse_binary(&mut self, min_level: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::Punct(Punct::PipePipe) => (BinaryOp::LogOr, 0),
                TokenKind::Punct(Punct::AmpAmp) => (BinaryOp::LogAnd, 1),
                TokenKind::Punct(Punct::Pipe) => (BinaryOp::BitOr, 2),
                TokenKind::Punct(Punct::Caret) => (BinaryOp::BitXor, 3),
                TokenKind::Punct(Punct::Amp) => (BinaryOp::BitAnd, 4),
                TokenKind::Punct(Punct::EqEq) => (BinaryOp::Eq, 5),
                TokenKind::Punct(Punct::Ne) => (BinaryOp::Ne, 5),
                TokenKind::Punct(Punct::Lt) => (BinaryOp::Lt, 6),
                TokenKind::Punct(Punct::Gt) => (BinaryOp::Gt, 6),
                TokenKind::Punct(Punct::Le) => (BinaryOp::Le, 6),
                TokenKind::Punct(Punct::Ge) => (BinaryOp::Ge, 6),
                TokenKind::Punct(Punct::Shl) => (BinaryOp::Shl, 7),
                TokenKind::Punct(Punct::Shr) => (BinaryOp::Shr, 7),
                TokenKind::Punct(Punct::Plus) => (BinaryOp::Add, 8),
                TokenKind::Punct(Punct::Minus) => (BinaryOp::Sub, 8),
                TokenKind::Punct(Punct::Star) => (BinaryOp::Mul, 9),
                TokenKind::Punct(Punct::Slash) => (BinaryOp::Div, 9),
                TokenKind::Punct(Punct::Percent) => (BinaryOp::Rem, 9),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_binary(level + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                span,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::LogNot),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnaryOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let operand = self.parse_unary()?;
            let span = span.merge(operand.span);
            return Ok(Expr {
                span,
                kind: ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
            });
        }
        if *self.peek() == TokenKind::Punct(Punct::PlusPlus) {
            self.pos += 1;
            let target = self.parse_unary()?;
            let span = span.merge(target.span);
            return Ok(Expr {
                span,
                kind: ExprKind::IncDec {
                    op: IncDec::PreInc,
                    target: Box::new(target),
                },
            });
        }
        if *self.peek() == TokenKind::Punct(Punct::MinusMinus) {
            self.pos += 1;
            let target = self.parse_unary()?;
            let span = span.merge(target.span);
            return Ok(Expr {
                span,
                kind: ExprKind::IncDec {
                    op: IncDec::PreDec,
                    target: Box::new(target),
                },
            });
        }
        if *self.peek() == TokenKind::Kw(Keyword::Sizeof) {
            self.pos += 1;
            if *self.peek() == TokenKind::Punct(Punct::LParen) && self.is_type_start_at(1) {
                self.pos += 1;
                let ty = self.parse_type_name()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(Expr {
                    span: span.merge(self.prev_span()),
                    kind: ExprKind::SizeofType(ty),
                });
            }
            let operand = self.parse_unary()?;
            let span = span.merge(operand.span);
            return Ok(Expr {
                span,
                kind: ExprKind::SizeofExpr(Box::new(operand)),
            });
        }
        // Cast: `(` type-name `)` unary.
        if *self.peek() == TokenKind::Punct(Punct::LParen) && self.is_type_start_at(1) {
            self.pos += 1;
            let ty = self.parse_type_name()?;
            self.expect_punct(Punct::RParen)?;
            let expr = self.parse_unary()?;
            let span = span.merge(expr.span);
            return Ok(Expr {
                span,
                kind: ExprKind::Cast {
                    ty,
                    expr: Box::new(expr),
                },
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::LParen) => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        span,
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                    };
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.pos += 1;
                    let index = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        span,
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                    };
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.pos += 1;
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = Expr {
                        span,
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                    };
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.pos += 1;
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = Expr {
                        span,
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.pos += 1;
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        span,
                        kind: ExprKind::IncDec {
                            op: IncDec::PostInc,
                            target: Box::new(e),
                        },
                    };
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.pos += 1;
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        span,
                        kind: ExprKind::IncDec {
                            op: IncDec::PostDec,
                            target: Box::new(e),
                        },
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.pos += 1;
                Ok(Expr {
                    span,
                    kind: ExprKind::IntLit(v),
                })
            }
            TokenKind::StrLit(bytes) => {
                self.pos += 1;
                Ok(Expr {
                    span,
                    kind: ExprKind::StrLit(bytes),
                })
            }
            TokenKind::Ident(name) => {
                self.pos += 1;
                if let Some(&v) = self.ctx.enum_consts.get(&name) {
                    Ok(Expr {
                        span,
                        kind: ExprKind::IntLit(v),
                    })
                } else {
                    Ok(Expr {
                        span,
                        kind: ExprKind::Ident(name),
                    })
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                span,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

/// Truncates `v` to integer kind `k` and re-extends canonically.
pub fn truncate_to_kind(v: i64, k: IntKind) -> i64 {
    match k {
        IntKind::I8 => v as i8 as i64,
        IntKind::U8 => v as u8 as i64,
        IntKind::I16 => v as i16 as i64,
        IntKind::U16 => v as u16 as i64,
        IntKind::I32 => v as i32 as i64,
        IntKind::U32 => v as u32 as i64,
        IntKind::I64 | IntKind::U64 => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> ParseContext {
        let mut ctx = ParseContext::new();
        let tokens = lex(0, src).expect("lexes");
        parse_into(&mut ctx, &tokens).expect("parses");
        ctx
    }

    fn parse_err(src: &str) -> CompileError {
        let mut ctx = ParseContext::new();
        let tokens = lex(0, src).expect("lexes");
        parse_into(&mut ctx, &tokens).expect_err("should fail")
    }

    #[test]
    fn parses_simple_function() {
        let ctx = parse_ok("int add(int a, int b) { return a + b; }");
        assert_eq!(ctx.program.functions.len(), 1);
        let f = &ctx.program.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.ret, CType::int());
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
    }

    #[test]
    fn parses_globals_with_initializers() {
        let ctx = parse_ok("int x = 42; char buf[10]; int t[3] = {1, 2, 3};");
        assert_eq!(ctx.program.globals.len(), 3);
        assert!(matches!(
            ctx.program.globals[0].init,
            Some(Initializer::Expr(_))
        ));
        assert_eq!(
            ctx.program.globals[1].ty,
            CType::Array(Box::new(CType::char()), 10)
        );
        assert!(matches!(
            ctx.program.globals[2].init,
            Some(Initializer::List(_))
        ));
    }

    #[test]
    fn parses_comma_separated_globals() {
        let ctx = parse_ok("int a, b = 2, *c;");
        assert_eq!(ctx.program.globals.len(), 3);
        assert_eq!(ctx.program.globals[2].ty, CType::int().ptr_to());
    }

    #[test]
    fn parses_extern_declaration() {
        let ctx = parse_ok("extern int __fgetc(int fd); extern void __exit(int code);");
        assert_eq!(ctx.program.externs.len(), 2);
        assert_eq!(ctx.program.externs[0].name, "__fgetc");
        assert_eq!(ctx.program.externs[0].params, vec![CType::int()]);
        assert_eq!(ctx.program.externs[1].ret, CType::Void);
    }

    #[test]
    fn parses_struct_definition_and_use() {
        let ctx = parse_ok(
            "struct point { int x; int y; };\n\
             int norm(struct point *p) { return p->x + p->y; }",
        );
        let id = ctx.types.struct_by_name("point").unwrap();
        let def = ctx.types.struct_def(id);
        assert_eq!(def.fields.len(), 2);
        assert_eq!(def.size, 8);
    }

    #[test]
    fn parses_self_referential_struct() {
        let ctx = parse_ok("struct node { int v; struct node *next; };");
        let id = ctx.types.struct_by_name("node").unwrap();
        assert_eq!(ctx.types.struct_def(id).size, 16);
    }

    #[test]
    fn rejects_struct_redefinition() {
        let e = parse_err("struct s { int a; }; struct s { int b; };");
        assert!(e.message.contains("redefined"));
    }

    #[test]
    fn parses_enum_and_substitutes_constants() {
        let ctx = parse_ok(
            "enum { RED, GREEN = 5, BLUE };\n\
             int f() { return BLUE; }",
        );
        assert_eq!(ctx.enum_consts["RED"], 0);
        assert_eq!(ctx.enum_consts["GREEN"], 5);
        assert_eq!(ctx.enum_consts["BLUE"], 6);
        // BLUE became a literal in the AST.
        let f = &ctx.program.functions[0];
        let StmtKind::Block { stmts, .. } = &f.body.kind else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else {
            panic!()
        };
        assert_eq!(e.kind, ExprKind::IntLit(6));
    }

    #[test]
    fn parses_function_pointer_declarator() {
        let ctx = parse_ok("int apply(int (*f)(int, int), int x) { return f(x, x); }");
        let p = &ctx.program.functions[0].params[0];
        let CType::Ptr(inner) = &p.ty else {
            panic!("expected pointer")
        };
        let CType::Func(ft) = inner.as_ref() else {
            panic!("expected function type")
        };
        assert_eq!(ft.params.len(), 2);
    }

    #[test]
    fn parses_array_of_function_pointers_global() {
        let ctx = parse_ok("int (*ops[4])(int, int);");
        let g = &ctx.program.globals[0];
        let CType::Array(elem, 4) = &g.ty else {
            panic!("expected array of 4")
        };
        assert!(matches!(elem.as_ref(), CType::Ptr(_)));
    }

    #[test]
    fn array_suffixes_bind_left_to_right() {
        let ctx = parse_ok("int m[2][3];");
        assert_eq!(
            ctx.program.globals[0].ty,
            CType::Array(Box::new(CType::Array(Box::new(CType::int()), 3)), 2)
        );
    }

    #[test]
    fn pointer_binds_inside_array() {
        let ctx = parse_ok("int *a[3]; int (*b)[3];");
        // a: array of 3 pointer-to-int.
        assert_eq!(
            ctx.program.globals[0].ty,
            CType::Array(Box::new(CType::int().ptr_to()), 3)
        );
        // b: pointer to array of 3 int.
        assert_eq!(
            ctx.program.globals[1].ty,
            CType::Ptr(Box::new(CType::Array(Box::new(CType::int()), 3)))
        );
    }

    #[test]
    fn parses_all_statement_forms() {
        parse_ok(
            "int f(int n) {\n\
               int i; int acc;\n\
               acc = 0;\n\
               for (i = 0; i < n; i++) acc += i;\n\
               while (acc > 100) acc /= 2;\n\
               do { acc--; } while (acc > 50);\n\
               if (acc == 7) return 1; else acc = -acc;\n\
               switch (acc) {\n\
                 case 1: return 2;\n\
                 case 'x': acc++; break;\n\
                 default: acc = 0;\n\
               }\n\
               return acc;\n\
             }",
        );
    }

    #[test]
    fn parses_sizeof_forms() {
        let ctx = parse_ok("long a = sizeof(int); long b = sizeof(char*);");
        let Some(Initializer::Expr(e)) = &ctx.program.globals[0].init else {
            panic!()
        };
        assert_eq!(e.kind, ExprKind::SizeofType(CType::int()));
    }

    #[test]
    fn parses_casts_vs_parens() {
        let ctx = parse_ok("int f(int x) { return (int)(x) + (x); }");
        let f = &ctx.program.functions[0];
        let StmtKind::Block { stmts, .. } = &f.body.kind else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else {
            panic!()
        };
        let ExprKind::Binary { lhs, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn parses_assignment_right_associative() {
        let ctx = parse_ok("int f(int a, int b) { a = b = 3; return a; }");
        let f = &ctx.program.functions[0];
        let StmtKind::Block { stmts, .. } = &f.body.kind else {
            panic!()
        };
        let StmtKind::Expr(e) = &stmts[0].kind else {
            panic!()
        };
        let ExprKind::Assign { value, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn rejects_statement_before_case() {
        let e = parse_err("int f(int x) { switch (x) { x++; case 1: break; } return 0; }");
        assert!(e.message.contains("before first case"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let e = parse_err("int f() { return 1 }");
        assert!(e.message.contains("expected `;`"));
    }

    #[test]
    fn rejects_negative_array_size() {
        let e = parse_err("int a[-1];");
        assert!(e.message.contains("negative array size"));
    }

    #[test]
    fn const_eval_handles_operators() {
        let ctx = parse_ok("int a[(1 + 2) * 3 - 4 / 2]; int b[1 << 4]; int c[5 > 3 ? 2 : 9];");
        assert_eq!(
            ctx.program.globals[0].ty,
            CType::Array(Box::new(CType::int()), 7)
        );
        assert_eq!(
            ctx.program.globals[1].ty,
            CType::Array(Box::new(CType::int()), 16)
        );
        assert_eq!(
            ctx.program.globals[2].ty,
            CType::Array(Box::new(CType::int()), 2)
        );
    }

    #[test]
    fn const_eval_uses_enum_constants() {
        let ctx = parse_ok("enum { N = 8 }; int a[N * 2];");
        assert_eq!(
            ctx.program.globals[0].ty,
            CType::Array(Box::new(CType::int()), 16)
        );
    }

    #[test]
    fn case_labels_fold_constants() {
        let ctx = parse_ok(
            "enum { ALPHA = 10 };\n\
             int f(int x) { switch (x) { case ALPHA + 1: return 1; } return 0; }",
        );
        let f = &ctx.program.functions[0];
        let StmtKind::Block { stmts, .. } = &f.body.kind else {
            panic!()
        };
        let StmtKind::Switch { cases, .. } = &stmts[0].kind else {
            panic!()
        };
        assert_eq!(cases[0].value, Some(11));
    }

    #[test]
    fn prototypes_are_accepted_and_ignored() {
        let ctx = parse_ok("int helper(int); int helper(int x) { return x; }");
        assert_eq!(ctx.program.functions.len(), 1);
    }

    #[test]
    fn static_is_ignored() {
        let ctx = parse_ok("static int counter; static int bump() { return ++counter; }");
        assert_eq!(ctx.program.globals.len(), 1);
        assert_eq!(ctx.program.functions.len(), 1);
    }

    #[test]
    fn parses_logical_operators_with_correct_precedence() {
        let ctx = parse_ok("int f(int a, int b) { return a == 1 || b == 2 && a < b; }");
        let f = &ctx.program.functions[0];
        let StmtKind::Block { stmts, .. } = &f.body.kind else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else {
            panic!()
        };
        // Top node must be ||.
        let ExprKind::Binary { op, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::LogOr);
    }

    #[test]
    fn void_param_list_is_empty() {
        let ctx = parse_ok("int f(void) { return 0; }");
        assert!(ctx.program.functions[0].params.is_empty());
    }

    #[test]
    fn unsigned_specifiers() {
        let ctx = parse_ok("unsigned x; unsigned long y; unsigned char z; short int w;");
        assert_eq!(ctx.program.globals[0].ty, CType::Int(IntKind::U32));
        assert_eq!(ctx.program.globals[1].ty, CType::Int(IntKind::U64));
        assert_eq!(ctx.program.globals[2].ty, CType::Int(IntKind::U8));
        assert_eq!(ctx.program.globals[3].ty, CType::Int(IntKind::I16));
    }
}

#[cfg(test)]
mod typedef_tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> ParseContext {
        let mut ctx = ParseContext::new();
        let tokens = lex(0, src).expect("lexes");
        parse_into(&mut ctx, &tokens).expect("parses");
        ctx
    }

    #[test]
    fn typedef_scalar_and_pointer() {
        let ctx = parse_ok(
            "typedef unsigned char byte;\n\
             typedef char *string;\n\
             byte b;\n\
             string s;",
        );
        assert_eq!(ctx.program.globals[0].ty, CType::Int(IntKind::U8));
        assert_eq!(ctx.program.globals[1].ty, CType::char().ptr_to());
    }

    #[test]
    fn typedef_struct_and_usage_in_functions() {
        let ctx = parse_ok(
            "struct point { int x; int y; };\n\
             typedef struct point Point;\n\
             int norm(Point *p) { return p->x + p->y; }",
        );
        let f = &ctx.program.functions[0];
        let CType::Ptr(inner) = &f.params[0].ty else {
            panic!()
        };
        assert!(matches!(inner.as_ref(), CType::Struct(_)));
    }

    #[test]
    fn typedef_in_cast_and_sizeof() {
        let ctx = parse_ok(
            "typedef long word;\n\
             long f(int x) { return (word)x + sizeof(word); }",
        );
        assert_eq!(ctx.typedefs["word"], CType::long());
    }

    #[test]
    fn typedef_array_and_function_pointer() {
        let ctx = parse_ok(
            "typedef int vec4[4];\n\
             typedef int (*binop)(int, int);\n\
             vec4 v;\n\
             binop op;",
        );
        assert_eq!(
            ctx.program.globals[0].ty,
            CType::Array(Box::new(CType::int()), 4)
        );
        assert!(matches!(ctx.program.globals[1].ty, CType::Ptr(_)));
    }

    #[test]
    fn typedef_of_typedef() {
        let ctx = parse_ok(
            "typedef int number;\n\
             typedef number *numptr;\n\
             numptr p;",
        );
        assert_eq!(ctx.program.globals[0].ty, CType::int().ptr_to());
    }

    #[test]
    fn typedef_as_function_return_type() {
        let ctx = parse_ok(
            "typedef unsigned int hash_t;\n\
             hash_t mix(hash_t h) { return h * 31; }",
        );
        assert_eq!(ctx.program.functions[0].ret, CType::Int(IntKind::U32));
    }

    #[test]
    fn typedef_redefinition_rejected() {
        let mut ctx = ParseContext::new();
        let tokens = lex(0, "typedef int a; typedef long a;").unwrap();
        let e = parse_into(&mut ctx, &tokens).expect_err("should fail");
        assert!(e.message.contains("redefined"));
    }
}
