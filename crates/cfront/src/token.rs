//! Tokens and source positions.

use std::fmt;

/// A half-open byte range into one source file, used for diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Index of the source file within the compilation (see
    /// [`crate::Source`]).
    pub file: u32,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Builds a span covering `start..end` in `file`.
    pub fn new(file: u32, start: u32, end: u32) -> Self {
        Span { file, start, end }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Both spans must come from the same file; if they do not, `self`'s
    /// file wins (diagnostics stay best-effort).
    pub fn merge(self, other: Span) -> Span {
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Keywords of the C subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    /// `break`
    Break,
    /// `case`
    Case,
    /// `char`
    Char,
    /// `continue`
    Continue,
    /// `default`
    Default,
    /// `do`
    Do,
    /// `else`
    Else,
    /// `enum`
    Enum,
    /// `extern`
    Extern,
    /// `for`
    For,
    /// `if`
    If,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `return`
    Return,
    /// `short`
    Short,
    /// `signed`
    Signed,
    /// `sizeof`
    Sizeof,
    /// `static` (accepted and ignored; every definition has internal
    /// linkage anyway because the whole program is one module)
    Static,
    /// `struct`
    Struct,
    /// `switch`
    Switch,
    /// `typedef`
    Typedef,
    /// `unsigned`
    Unsigned,
    /// `void`
    Void,
    /// `while`
    While,
}

impl Keyword {
    /// Maps an identifier to a keyword, if it is one.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "break" => Keyword::Break,
            "case" => Keyword::Case,
            "char" => Keyword::Char,
            "continue" => Keyword::Continue,
            "default" => Keyword::Default,
            "do" => Keyword::Do,
            "else" => Keyword::Else,
            "enum" => Keyword::Enum,
            "extern" => Keyword::Extern,
            "for" => Keyword::For,
            "if" => Keyword::If,
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "return" => Keyword::Return,
            "short" => Keyword::Short,
            "signed" => Keyword::Signed,
            "sizeof" => Keyword::Sizeof,
            "static" => Keyword::Static,
            "struct" => Keyword::Struct,
            "switch" => Keyword::Switch,
            "typedef" => Keyword::Typedef,
            "unsigned" => Keyword::Unsigned,
            "void" => Keyword::Void,
            "while" => Keyword::While,
            _ => return None,
        })
    }

    /// The keyword's spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Break => "break",
            Keyword::Case => "case",
            Keyword::Char => "char",
            Keyword::Continue => "continue",
            Keyword::Default => "default",
            Keyword::Do => "do",
            Keyword::Else => "else",
            Keyword::Enum => "enum",
            Keyword::Extern => "extern",
            Keyword::For => "for",
            Keyword::If => "if",
            Keyword::Int => "int",
            Keyword::Long => "long",
            Keyword::Return => "return",
            Keyword::Short => "short",
            Keyword::Signed => "signed",
            Keyword::Sizeof => "sizeof",
            Keyword::Static => "static",
            Keyword::Struct => "struct",
            Keyword::Switch => "switch",
            Keyword::Typedef => "typedef",
            Keyword::Unsigned => "unsigned",
            Keyword::Void => "void",
            Keyword::While => "while",
        }
    }
}

/// Punctuation and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // spellings given by `as_str`
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
}

impl Punct {
    /// The operator's spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Bang => "!",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::AmpAmp => "&&",
            Punct::PipePipe => "||",
            Punct::Question => "?",
            Punct::Colon => ":",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::PercentAssign => "%=",
            Punct::AmpAssign => "&=",
            Punct::PipeAssign => "|=",
            Punct::CaretAssign => "^=",
            Punct::ShlAssign => "<<=",
            Punct::ShrAssign => ">>=",
        }
    }
}

/// The payload of one token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (not a keyword).
    Ident(String),
    /// A keyword.
    Kw(Keyword),
    /// An integer literal (decimal, hex `0x`, octal `0`, or char literal),
    /// already folded to its value.
    IntLit(i64),
    /// A string literal, with escapes resolved (no trailing NUL; the
    /// compiler appends one when materializing it).
    StrLit(Vec<u8>),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Kw(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::StrLit(_) => write!(f, "string literal"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// One lexed token with its source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Break,
            Keyword::Struct,
            Keyword::Unsigned,
            Keyword::While,
            Keyword::Sizeof,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("banana"), None);
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(0, 4, 9);
        let b = Span::new(0, 7, 15);
        assert_eq!(a.merge(b), Span::new(0, 4, 15));
        assert_eq!(b.merge(a), Span::new(0, 4, 15));
    }

    #[test]
    fn token_kind_display() {
        assert_eq!(TokenKind::Punct(Punct::Arrow).to_string(), "`->`");
        assert_eq!(TokenKind::Kw(Keyword::If).to_string(), "keyword `if`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
    }
}
