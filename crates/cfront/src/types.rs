//! The C subset's type system: representation, sizing, and layout.

use std::fmt;

/// Identifies a struct definition within a [`TypeTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StructId(pub u32);

/// Integer kinds, carrying both width and signedness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntKind {
    /// `char` (signed, 1 byte).
    I8,
    /// `unsigned char`.
    U8,
    /// `short` (2 bytes).
    I16,
    /// `unsigned short`.
    U16,
    /// `int` (4 bytes).
    I32,
    /// `unsigned int`.
    U32,
    /// `long` (8 bytes).
    I64,
    /// `unsigned long`.
    U64,
}

impl IntKind {
    /// Size in bytes.
    pub fn size(self) -> u64 {
        match self {
            IntKind::I8 | IntKind::U8 => 1,
            IntKind::I16 | IntKind::U16 => 2,
            IntKind::I32 | IntKind::U32 => 4,
            IntKind::I64 | IntKind::U64 => 8,
        }
    }

    /// Whether values of this kind are signed.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            IntKind::I8 | IntKind::I16 | IntKind::I32 | IntKind::I64
        )
    }

    /// The unsigned kind of the same width.
    pub fn to_unsigned(self) -> IntKind {
        match self {
            IntKind::I8 | IntKind::U8 => IntKind::U8,
            IntKind::I16 | IntKind::U16 => IntKind::U16,
            IntKind::I32 | IntKind::U32 => IntKind::U32,
            IntKind::I64 | IntKind::U64 => IntKind::U64,
        }
    }
}

/// The type of a function, used behind function pointers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FuncType {
    /// Return type ([`CType::Void`] for none).
    pub ret: CType,
    /// Parameter types, in order.
    pub params: Vec<CType>,
}

/// A type in the C subset.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void` — only as a return type or behind a pointer.
    Void,
    /// Integer types.
    Int(IntKind),
    /// Pointer to `T`.
    Ptr(Box<CType>),
    /// Fixed-size array `T[n]`.
    Array(Box<CType>, u64),
    /// A struct by id; layout lives in the [`TypeTable`].
    Struct(StructId),
    /// A function type; appears only behind [`CType::Ptr`] or as the type
    /// of a function designator.
    Func(Box<FuncType>),
}

impl CType {
    /// `int` — the default arithmetic type.
    pub fn int() -> CType {
        CType::Int(IntKind::I32)
    }

    /// `char`.
    pub fn char() -> CType {
        CType::Int(IntKind::I8)
    }

    /// `long`.
    pub fn long() -> CType {
        CType::Int(IntKind::I64)
    }

    /// Pointer to `self`.
    pub fn ptr_to(self) -> CType {
        CType::Ptr(Box::new(self))
    }

    /// Whether this is any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int(_))
    }

    /// Whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }

    /// Whether this type can appear in a scalar context (conditions,
    /// arithmetic operands after decay): integers and pointers.
    pub fn is_scalar(&self) -> bool {
        self.is_integer() || self.is_pointer()
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Applies array-to-pointer and function-to-pointer decay, returning
    /// the adjusted type (C's usual conversions for rvalue contexts).
    pub fn decayed(&self) -> CType {
        match self {
            CType::Array(elem, _) => CType::Ptr(elem.clone()),
            CType::Func(ft) => CType::Ptr(Box::new(CType::Func(ft.clone()))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Int(IntKind::I8) => write!(f, "char"),
            CType::Int(IntKind::U8) => write!(f, "unsigned char"),
            CType::Int(IntKind::I16) => write!(f, "short"),
            CType::Int(IntKind::U16) => write!(f, "unsigned short"),
            CType::Int(IntKind::I32) => write!(f, "int"),
            CType::Int(IntKind::U32) => write!(f, "unsigned int"),
            CType::Int(IntKind::I64) => write!(f, "long"),
            CType::Int(IntKind::U64) => write!(f, "unsigned long"),
            CType::Ptr(t) => write!(f, "{t}*"),
            CType::Array(t, n) => write!(f, "{t}[{n}]"),
            CType::Struct(id) => write!(f, "struct#{}", id.0),
            CType::Func(ft) => {
                write!(f, "{}(", ft.ret)?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One struct member with its computed byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Member name.
    pub name: String,
    /// Member type.
    pub ty: CType,
    /// Byte offset from the start of the struct.
    pub offset: u64,
}

/// A struct definition, possibly still a forward declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDef {
    /// Tag name (`struct name`).
    pub name: String,
    /// Members in declaration order (empty while forward-declared).
    pub fields: Vec<Field>,
    /// Total size in bytes, padded to alignment.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Whether the member list has been provided. Pointers to undefined
    /// structs are usable (self-referential lists); by-value use is not.
    pub defined: bool,
}

impl StructDef {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Owns all struct definitions of a compilation and answers size/alignment
/// queries for every type.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    structs: Vec<StructDef>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Forward-declares a struct tag, returning its id. The struct can be
    /// pointed to immediately; [`TypeTable::complete_struct`] supplies the
    /// member list later.
    pub fn declare_struct(&mut self, name: impl Into<String>) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(StructDef {
            name: name.into(),
            fields: Vec::new(),
            size: 0,
            align: 1,
            defined: false,
        });
        id
    }

    /// Supplies the member list for a forward-declared struct, computing
    /// byte offsets and padding.
    ///
    /// Returns `false` (leaving the struct undefined) if any member has an
    /// unsized type (`void`, a bare function type, or a still-undefined
    /// struct used by value).
    pub fn complete_struct(&mut self, id: StructId, members: Vec<(String, CType)>) -> bool {
        let mut fields = Vec::with_capacity(members.len());
        let mut offset = 0u64;
        let mut align = 1u64;
        for (fname, ty) in members {
            let (Some(fsize), Some(falign)) = (self.size_of(&ty), self.align_of(&ty)) else {
                return false;
            };
            offset = offset.next_multiple_of(falign);
            fields.push(Field {
                name: fname,
                ty,
                offset,
            });
            offset += fsize;
            align = align.max(falign);
        }
        let def = &mut self.structs[id.0 as usize];
        def.fields = fields;
        def.size = offset.next_multiple_of(align).max(1);
        def.align = align;
        def.defined = true;
        true
    }

    /// Declares and immediately completes a struct.
    ///
    /// Returns `None` if any field has an unsized type (e.g. `void`).
    pub fn define_struct(
        &mut self,
        name: impl Into<String>,
        members: Vec<(String, CType)>,
    ) -> Option<StructId> {
        let id = self.declare_struct(name);
        if self.complete_struct(id, members) {
            Some(id)
        } else {
            self.structs.pop();
            None
        }
    }

    /// Looks up a struct definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.0 as usize]
    }

    /// Finds a struct id by tag name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// Size of a type in bytes; `None` for unsized types (`void`, bare
    /// function types).
    pub fn size_of(&self, ty: &CType) -> Option<u64> {
        match ty {
            CType::Void | CType::Func(_) => None,
            CType::Int(k) => Some(k.size()),
            CType::Ptr(_) => Some(8),
            CType::Array(elem, n) => Some(self.size_of(elem)? * n),
            CType::Struct(id) => {
                let def = self.struct_def(*id);
                if def.defined {
                    Some(def.size)
                } else {
                    None
                }
            }
        }
    }

    /// Alignment of a type in bytes; `None` for unsized types.
    pub fn align_of(&self, ty: &CType) -> Option<u64> {
        match ty {
            CType::Void | CType::Func(_) => None,
            CType::Int(k) => Some(k.size()),
            CType::Ptr(_) => Some(8),
            CType::Array(elem, _) => self.align_of(elem),
            CType::Struct(id) => {
                let def = self.struct_def(*id);
                if def.defined {
                    Some(def.align)
                } else {
                    None
                }
            }
        }
    }
}

/// The usual arithmetic conversions: both operands are integer-promoted,
/// the wider kind wins, and unsignedness wins ties at the final width.
pub fn usual_arith(a: IntKind, b: IntKind) -> IntKind {
    let a = promote(a);
    let b = promote(b);
    let width = a.size().max(b.size());
    let unsigned = (!a.is_signed() && a.size() == width) || (!b.is_signed() && b.size() == width);
    match (width, unsigned) {
        (4, false) => IntKind::I32,
        (4, true) => IntKind::U32,
        (8, false) => IntKind::I64,
        (_, _) => IntKind::U64,
    }
}

/// Integer promotion: anything narrower than `int` becomes `int`.
pub fn promote(k: IntKind) -> IntKind {
    if k.size() < 4 {
        IntKind::I32
    } else {
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_kind_properties() {
        assert_eq!(IntKind::I8.size(), 1);
        assert!(IntKind::I8.is_signed());
        assert!(!IntKind::U32.is_signed());
        assert_eq!(IntKind::I32.to_unsigned(), IntKind::U32);
    }

    #[test]
    fn decay_rules() {
        let arr = CType::Array(Box::new(CType::int()), 10);
        assert_eq!(arr.decayed(), CType::int().ptr_to());
        let f = CType::Func(Box::new(FuncType {
            ret: CType::int(),
            params: vec![],
        }));
        assert!(matches!(f.decayed(), CType::Ptr(_)));
        assert_eq!(CType::long().decayed(), CType::long());
    }

    #[test]
    fn struct_layout_pads_and_aligns() {
        let mut tt = TypeTable::new();
        let id = tt
            .define_struct(
                "s",
                vec![
                    ("c".into(), CType::char()),
                    ("l".into(), CType::long()),
                    ("c2".into(), CType::char()),
                ],
            )
            .unwrap();
        let def = tt.struct_def(id);
        assert_eq!(def.fields[0].offset, 0);
        assert_eq!(def.fields[1].offset, 8);
        assert_eq!(def.fields[2].offset, 16);
        assert_eq!(def.size, 24);
        assert_eq!(def.align, 8);
    }

    #[test]
    fn nested_struct_layout() {
        let mut tt = TypeTable::new();
        let inner = tt
            .define_struct("inner", vec![("x".into(), CType::int())])
            .unwrap();
        let outer = tt
            .define_struct(
                "outer",
                vec![
                    ("c".into(), CType::char()),
                    ("i".into(), CType::Struct(inner)),
                ],
            )
            .unwrap();
        let def = tt.struct_def(outer);
        assert_eq!(def.fields[1].offset, 4);
        assert_eq!(def.size, 8);
    }

    #[test]
    fn sizes_of_arrays_and_pointers() {
        let tt = TypeTable::new();
        assert_eq!(tt.size_of(&CType::int()), Some(4));
        assert_eq!(
            tt.size_of(&CType::Array(Box::new(CType::char()), 13)),
            Some(13)
        );
        assert_eq!(tt.size_of(&CType::char().ptr_to()), Some(8));
        assert_eq!(tt.size_of(&CType::Void), None);
    }

    #[test]
    fn usual_arith_follows_c_rules() {
        assert_eq!(usual_arith(IntKind::I8, IntKind::I8), IntKind::I32);
        assert_eq!(usual_arith(IntKind::I32, IntKind::U32), IntKind::U32);
        assert_eq!(usual_arith(IntKind::U32, IntKind::I64), IntKind::I64);
        assert_eq!(usual_arith(IntKind::U64, IntKind::I32), IntKind::U64);
        // Narrow unsigned types promote to (signed) int, as in C.
        assert_eq!(usual_arith(IntKind::U8, IntKind::U8), IntKind::I32);
    }

    #[test]
    fn promotion_widens_to_int() {
        assert_eq!(promote(IntKind::I8), IntKind::I32);
        assert_eq!(promote(IntKind::U16), IntKind::I32);
        assert_eq!(promote(IntKind::U32), IntKind::U32);
        assert_eq!(promote(IntKind::I64), IntKind::I64);
    }

    #[test]
    fn forward_declared_struct_is_unsized_until_completed() {
        let mut tt = TypeTable::new();
        let id = tt.declare_struct("node");
        assert_eq!(tt.size_of(&CType::Struct(id)), None);
        // ...but a pointer to it is fine.
        assert_eq!(tt.size_of(&CType::Struct(id).ptr_to()), Some(8));
        assert!(tt.complete_struct(
            id,
            vec![
                ("v".into(), CType::int()),
                ("next".into(), CType::Struct(id).ptr_to()),
            ],
        ));
        assert_eq!(tt.size_of(&CType::Struct(id)), Some(16));
    }

    #[test]
    fn struct_with_unsized_member_fails() {
        let mut tt = TypeTable::new();
        assert!(tt
            .define_struct("bad", vec![("v".into(), CType::Void)])
            .is_none());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(CType::char().ptr_to().to_string(), "char*");
        assert_eq!(
            CType::Array(Box::new(CType::int()), 4).to_string(),
            "int[4]"
        );
    }
}
