//! Robustness properties: the front end must never panic — arbitrary
//! input produces either a module or a diagnostics error.

use impact_cfront::{compile, Source};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    /// Arbitrary byte soup (printable-ish) never panics the pipeline.
    #[test]
    fn arbitrary_text_never_panics(text in "[ -~\\n\\t]{0,200}") {
        let _ = compile(&[Source::new("fuzz.c", &text)]);
    }

    /// Token soup assembled from C fragments never panics — this reaches
    /// much deeper into the parser than raw bytes do.
    #[test]
    fn c_fragment_soup_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("int".to_string()), Just("char".to_string()), Just("*".to_string()),
            Just("(".to_string()), Just(")".to_string()), Just("{".to_string()),
            Just("}".to_string()), Just("[".to_string()), Just("]".to_string()),
            Just(";".to_string()), Just(",".to_string()), Just("=".to_string()),
            Just("if".to_string()), Just("else".to_string()), Just("while".to_string()),
            Just("return".to_string()), Just("struct".to_string()), Just("enum".to_string()),
            Just("x".to_string()), Just("y".to_string()), Just("main".to_string()),
            Just("42".to_string()), Just("\"s\"".to_string()), Just("'c'".to_string()),
            Just("+".to_string()), Just("->".to_string()), Just("&&".to_string()),
            Just("sizeof".to_string()), Just("extern".to_string()), Just("switch".to_string()),
            Just("case".to_string()), Just("for".to_string()), Just("++".to_string()),
        ],
        0..60,
    )) {
        let text = parts.join(" ");
        let _ = compile(&[Source::new("soup.c", &text)]);
    }

    /// Error spans always point inside the source (diagnostics are
    /// renderable without panicking).
    #[test]
    fn error_spans_render(text in "[ -~\\n]{0,120}") {
        let sources = vec![Source::new("spans.c", &text)];
        if let Err(e) = compile(&sources) {
            let rendered = e.render(&sources);
            prop_assert!(rendered.contains("spans.c") || rendered.contains("unknown"));
        }
    }

    /// Valid single-function programs with random names and literals
    /// always compile, whatever the identifier spelling.
    #[test]
    fn wellformed_templates_compile(
        name in "[a-z][a-z0-9_]{0,12}",
        v in any::<i32>(),
        n in 1u8..40,
    ) {
        // Avoid keyword collisions by prefixing.
        let f = format!("fn_{name}");
        let src = format!(
            "int {f}(int x) {{ return x + {v}; }}\n\
             int main() {{ int i; int s; s = 0; for (i = 0; i < {n}; i++) s += {f}(i); return s & 0x7f; }}"
        );
        let module = compile(&[Source::new("gen.c", &src)]).expect("template compiles");
        impact_il::verify_module(&module).expect("verifies");
    }
}
