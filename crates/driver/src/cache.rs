//! Content-addressed artifact cache with corruption quarantine and a
//! budgeted, crash-safe lifecycle.
//!
//! A cache entry maps `hash(sources + inputs + behavior-affecting flags)`
//! to the pipeline's exit code and rendered report, so a batch or serve
//! run can skip recompiling a unit whose whole input set is unchanged.
//! Only *successful* compilations are cached: failures carry retry and
//! crash-report machinery that must re-run to stay observable.
//!
//! Integrity model (the robustness headline):
//!
//! - Entries are published through the same atomic staging + fsync +
//!   rename path as crash reports ([`crate::report::atomic_write_in`]),
//!   so a torn write can never leave a half-entry under the final name.
//! - Each entry carries its key and an FNV-1a 64 checksum footer over
//!   everything before the footer line. A read validates header, key,
//!   payload length, and checksum.
//! - Any validation failure — truncation, bit flip, wrong key, missing
//!   footer — is *quarantined*: the entry is renamed aside to
//!   `<key>.quarantined`, an incident report is written next to it, and
//!   the lookup reports a miss so the unit is transparently recompiled.
//!   A corrupt entry is never served, and never silently deleted (the
//!   quarantined bytes are evidence) — though under a size budget the
//!   *bytes* may later be reclaimed by eviction; the incident report
//!   always survives as the durable record.
//!
//! Lifecycle model (`--cache-budget-bytes`):
//!
//! - The cache tracks every live and quarantined entry's size plus a
//!   least-recently-used order. When the total exceeds the budget,
//!   entries are evicted oldest-first — quarantined bytes are reclaimed
//!   before any live entry is touched, and a *pinned* entry (one with an
//!   in-flight read under it, see [`Cache::load`]) is never evicted.
//! - The LRU order is persisted to a checksummed `cache-index.v1` file
//!   through the same atomic publish path, so hit ordering survives a
//!   daemon restart. The index is advisory: on startup the directory is
//!   rebuilt by scan-and-validate (every entry re-checksummed; corrupt
//!   ones quarantined on the spot), and a missing or corrupt index
//!   degrades to a deterministic key-order rebuild, never an error.
//! - Quarantine decisions survive restarts structurally: the corrupt
//!   entry was renamed aside, so the key stays a miss until a fresh
//!   compile republishes it.
//!
//! Fault points (armed via `--fault`, deterministic and replayable):
//! `cache:bitflip` corrupts the Nth stored entry's bytes on disk (the
//! next load must quarantine, never serve it); `cache:evict-read-race`
//! forces a full eviction pass in the middle of the Nth load, proving
//! the pin keeps the entry under the reader alive.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use impact_obs::{names, Telemetry};
use impact_vm::{fnv1a64, FaultPlan};

use crate::report::{atomic_write_in, json_str};
use crate::{Options, RunSpec};
use impact_cfront::Source;

/// First line of every cache entry; version-bumps invalidate old caches.
pub const CACHE_HEADER: &str = "impact-cache v1";

/// First line of the persisted LRU index.
pub const INDEX_HEADER: &str = "impact-cache-index v1";

/// File name of the persisted LRU index.
const INDEX_NAME: &str = "cache-index.v1";

/// Extension of a live entry (`<key:016x>.entry`).
const ENTRY_EXT: &str = "entry";

/// Extension an entry is renamed to when it fails validation.
const QUARANTINE_EXT: &str = "quarantined";

/// Scratch file the serve ping health check writes (and removes) to prove
/// the cache dir is writable. A daemon killed between write and remove
/// leaks it, so the startup scan reaps any left behind.
pub(crate) const HEALTH_PROBE: &str = ".health-probe";

/// A validated cache hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedResult {
    /// Exit code the original compilation returned.
    pub exit: i32,
    /// The rendered pipeline report, byte-for-byte.
    pub report: String,
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Lookup {
    /// Entry present and validated.
    Hit(CachedResult),
    /// No entry under this key.
    Miss,
    /// Entry present but failed validation; it has been renamed aside
    /// and an incident report written. The caller must recompile.
    Quarantined {
        /// File name of the quarantined entry (relative to the cache dir).
        entry: String,
        /// Human-readable validation failure.
        reason: String,
    },
}

/// Size and recency of one on-disk entry (live or quarantined).
#[derive(Clone, Copy, Debug)]
struct EntryMeta {
    /// On-disk size in bytes.
    bytes: u64,
    /// Monotonic access sequence; lower = less recently used.
    last_use: u64,
}

/// In-memory lifecycle state, rebuilt by scan-and-validate on open.
#[derive(Default)]
struct State {
    /// Monotonic access counter backing the LRU order.
    seq: u64,
    /// Live entries by key.
    live: HashMap<u64, EntryMeta>,
    /// Quarantined entries by key (bytes kept as evidence, but they
    /// count against the budget and are reclaimed first under pressure).
    quarantined: HashMap<u64, EntryMeta>,
    /// Pin counts: a pinned key has an in-flight read and is never
    /// evicted from under it.
    pins: HashMap<u64, usize>,
}

/// Handle on an open cache directory.
pub struct Cache {
    dir: PathBuf,
    obs: Telemetry,
    /// Total-bytes budget across live + quarantined entries; `None`
    /// disables eviction entirely (the pre-budget behavior).
    budget: Option<u64>,
    /// Deterministic `cache:*` fault points (chaos injection).
    fault: FaultPlan,
    state: Mutex<State>,
}

/// Computes the content address of one unit of work: FNV-1a 64 over a
/// canonical dump of the sources, the run inputs/args, and every
/// behavior-affecting flag. Mirrors the field-enumeration style of
/// [`crate::journal::campaign_fingerprint`], so flags that cannot change
/// pipeline output (telemetry, journaling, `--jobs`, service fault
/// domains) are excluded by omission.
pub fn unit_key(sources: &[Source], runs: &[RunSpec], opts: &Options) -> u64 {
    let mut s = String::new();
    let _ = writeln!(s, "{CACHE_HEADER} key");
    for src in sources {
        let _ = writeln!(
            s,
            "source {} {:016x} {}",
            src.name.len(),
            fnv1a64(src.text.as_bytes()),
            src.name
        );
    }
    for (inputs, args) in runs {
        for f in inputs {
            let _ = writeln!(
                s,
                "input {} {:016x} {}",
                f.bytes.len(),
                fnv1a64(&f.bytes),
                f.name
            );
        }
        for a in args {
            let _ = writeln!(s, "arg {} {a}", a.len());
        }
        let _ = writeln!(s, "run-end");
    }
    let _ = writeln!(s, "threshold {:?}", opts.threshold);
    let _ = writeln!(s, "budget {:?}", opts.budget);
    let _ = writeln!(s, "stack_bound {:?}", opts.stack_bound);
    let _ = writeln!(s, "linearize {:?}", opts.linearization);
    let _ = writeln!(s, "promote_indirect {}", opts.promote_indirect);
    let _ = writeln!(s, "opt {}", opts.opt);
    let _ = writeln!(s, "fuel {:?}", opts.fuel);
    let _ = writeln!(s, "mem_limit {:?}", opts.mem_limit);
    let _ = writeln!(s, "profile_in {:?}", opts.profile_in);
    let _ = writeln!(s, "profile_out {:?}", opts.profile_out);
    let _ = writeln!(s, "quiet {}", opts.quiet);
    let mut faults: Vec<&String> = opts
        .faults
        .iter()
        .filter(|f| !crate::journal::is_journal_fault(f) && !crate::serve::is_service_fault(f))
        .collect();
    faults.sort();
    for f in faults {
        let _ = writeln!(s, "fault {} {f}", f.len());
    }
    fnv1a64(s.as_bytes())
}

/// Renders an entry's on-disk bytes: header, key, exit, payload length,
/// payload, checksum footer.
fn render_entry(key: u64, exit: i32, report: &str) -> Vec<u8> {
    let mut body = String::new();
    let _ = writeln!(body, "{CACHE_HEADER}");
    let _ = writeln!(body, "key {key:016x}");
    let _ = writeln!(body, "exit {exit}");
    let _ = writeln!(body, "len {}", report.len());
    body.push_str(report);
    body.push('\n');
    let sum = fnv1a64(body.as_bytes());
    let _ = writeln!(body, "checksum {sum:016x}");
    body.into_bytes()
}

/// Parses and validates entry bytes against the expected key.
///
/// # Errors
///
/// Returns a description of the first validation failure.
fn parse_entry(key: u64, bytes: &[u8]) -> Result<CachedResult, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "entry is not UTF-8".to_string())?;
    // The checksum footer is the last line; everything before it is the
    // checksummed body.
    let trimmed = text
        .strip_suffix('\n')
        .ok_or("entry missing final newline")?;
    let footer_at = trimmed.rfind('\n').ok_or("entry truncated before footer")?;
    let (body, footer) = trimmed.split_at(footer_at + 1);
    let sum = footer
        .strip_prefix("checksum ")
        .ok_or("entry missing checksum footer")?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| "unparseable checksum".to_string())?;
    let actual = fnv1a64(body.as_bytes());
    if actual != sum {
        return Err(format!(
            "checksum mismatch: footer {sum:016x}, computed {actual:016x}"
        ));
    }
    let mut lines = body.splitn(4, '\n');
    let header = lines.next().unwrap_or_default();
    if header != CACHE_HEADER {
        return Err(format!("bad header `{header}`"));
    }
    let key_line = lines.next().unwrap_or_default();
    let stored = key_line
        .strip_prefix("key ")
        .and_then(|k| u64::from_str_radix(k, 16).ok())
        .ok_or("entry missing key line")?;
    if stored != key {
        return Err(format!(
            "key mismatch: entry {stored:016x}, expected {key:016x}"
        ));
    }
    let exit_line = lines.next().unwrap_or_default();
    let exit: i32 = exit_line
        .strip_prefix("exit ")
        .and_then(|e| e.parse().ok())
        .ok_or("entry missing exit line")?;
    let rest = lines.next().ok_or("entry truncated after exit line")?;
    let (len_line, payload) = rest
        .split_once('\n')
        .ok_or("entry truncated after len line")?;
    let len: usize = len_line
        .strip_prefix("len ")
        .and_then(|l| l.parse().ok())
        .ok_or("entry missing len line")?;
    // The payload is followed by the newline `render_entry` appended.
    let payload = payload
        .strip_suffix('\n')
        .ok_or("payload missing trailing newline")?;
    if payload.len() != len {
        return Err(format!(
            "payload length mismatch: len line {len}, actual {}",
            payload.len()
        ));
    }
    Ok(CachedResult {
        exit,
        report: payload.to_string(),
    })
}

/// RAII pin on one key: while any pin is held, eviction skips that key.
struct Pin<'a> {
    cache: &'a Cache,
    key: u64,
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        let mut st = self.cache.lock_state();
        if let Some(n) = st.pins.get_mut(&self.key) {
            *n -= 1;
            if *n == 0 {
                st.pins.remove(&self.key);
            }
        }
    }
}

impl Cache {
    /// Opens (creating if needed) the cache directory with no size budget
    /// and no fault injection — the probe-and-store behavior unchanged
    /// from before the lifecycle layer.
    ///
    /// # Errors
    ///
    /// Returns a message naming the directory on I/O failure.
    pub fn open(dir: &Path, obs: &Telemetry) -> Result<Cache, String> {
        Cache::open_with(dir, obs, None, FaultPlan::new())
    }

    /// Opens the cache with a byte budget (`None` disables eviction) and
    /// a fault plan whose `cache:*` points inject deterministic chaos.
    ///
    /// Startup is scan-and-validate: every `*.entry` file is re-parsed
    /// and re-checksummed (corrupt ones are quarantined immediately, with
    /// incident reports), quarantined bytes are re-counted against the
    /// budget, the persisted LRU index is applied where it validates, and
    /// the budget is enforced before the first probe.
    ///
    /// # Errors
    ///
    /// Returns a message naming the directory on I/O failure.
    pub fn open_with(
        dir: &Path,
        obs: &Telemetry,
        budget: Option<u64>,
        fault: FaultPlan,
    ) -> Result<Cache, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
        let cache = Cache {
            dir: dir.to_path_buf(),
            obs: obs.clone(),
            budget,
            fault,
            state: Mutex::new(State::default()),
        };
        cache.rebuild()?;
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn entry_name(key: u64) -> String {
        format!("{key:016x}.{ENTRY_EXT}")
    }

    fn quarantine_name(key: u64) -> String {
        format!("{key:016x}.{QUARANTINE_EXT}")
    }

    /// Counts an injected fault under both the aggregate and the per-key
    /// chaos counters, so every injection is visible in the metrics.
    fn chaos(&self, key: &str) -> bool {
        if self.fault.should_fail(key) {
            self.obs.count(names::CHAOS_INJECTED, 1);
            self.obs.count(&format!("chaos:{key}"), 1);
            true
        } else {
            false
        }
    }

    /// Scan-and-validate rebuild of the lifecycle state (see
    /// [`Cache::open_with`]).
    fn rebuild(&self) -> Result<(), String> {
        let mut corrupt: Vec<(u64, String)> = Vec::new();
        {
            let mut st = self.lock_state();
            let dir_iter = std::fs::read_dir(&self.dir)
                .map_err(|e| format!("scan cache dir {}: {e}", self.dir.display()))?;
            for entry in dir_iter.filter_map(Result::ok) {
                let path = entry.path();
                if path.file_name().and_then(|n| n.to_str()) == Some(HEALTH_PROBE) {
                    // A health probe leaked by a daemon killed between
                    // its write and its remove; reap it rather than let
                    // stale scratch accumulate in the cache dir.
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                let Ok(key) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
                    continue;
                };
                let Ok(meta) = std::fs::metadata(&path) else {
                    continue;
                };
                match ext {
                    ENTRY_EXT => match std::fs::read(&path).map_err(|e| e.to_string()) {
                        Ok(bytes) => match parse_entry(key, &bytes) {
                            Ok(_) => {
                                st.live.insert(
                                    key,
                                    EntryMeta {
                                        bytes: meta.len(),
                                        last_use: 0,
                                    },
                                );
                            }
                            Err(reason) => corrupt.push((key, reason)),
                        },
                        Err(e) => corrupt.push((key, format!("read failed: {e}"))),
                    },
                    QUARANTINE_EXT => {
                        st.quarantined.insert(
                            key,
                            EntryMeta {
                                bytes: meta.len(),
                                last_use: 0,
                            },
                        );
                    }
                    _ => {}
                }
            }
            // Deterministic base order (ascending key), then overlay the
            // persisted index: every key the index names, in index order,
            // becomes more recent than every key it does not.
            let mut keys: Vec<u64> = st.live.keys().copied().collect();
            keys.sort_unstable();
            for (i, k) in keys.iter().enumerate() {
                if let Some(m) = st.live.get_mut(k) {
                    m.last_use = i as u64;
                }
            }
            st.seq = keys.len() as u64;
            for key in self.read_index() {
                if st.live.contains_key(&key) {
                    let seq = st.seq;
                    st.seq += 1;
                    if let Some(m) = st.live.get_mut(&key) {
                        m.last_use = seq;
                    }
                }
            }
        }
        // Quarantine outside the state lock (quarantine_entry relocks).
        for (key, reason) in corrupt {
            let size = std::fs::metadata(self.dir.join(Self::entry_name(key)))
                .map(|m| m.len())
                .unwrap_or(0);
            {
                let mut st = self.lock_state();
                st.live.insert(
                    key,
                    EntryMeta {
                        bytes: size,
                        last_use: 0,
                    },
                );
            }
            self.quarantine_entry(key, &reason);
        }
        let mut st = self.lock_state();
        self.evict_to_budget_locked(&mut st);
        self.persist_index(&st);
        Ok(())
    }

    /// Reads the persisted LRU order; a missing or invalid index is a
    /// silent empty result (the scan order stands).
    fn read_index(&self) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(self.dir.join(INDEX_NAME)) else {
            return Vec::new();
        };
        let Some(trimmed) = text.strip_suffix('\n') else {
            return Vec::new();
        };
        let Some(footer_at) = trimmed.rfind('\n') else {
            return Vec::new();
        };
        let (body, footer) = trimmed.split_at(footer_at + 1);
        let Some(sum) = footer
            .strip_prefix("checksum ")
            .and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            return Vec::new();
        };
        if fnv1a64(body.as_bytes()) != sum {
            return Vec::new();
        }
        let mut lines = body.lines();
        if lines.next() != Some(INDEX_HEADER) {
            return Vec::new();
        }
        lines
            .filter_map(|l| l.strip_prefix("entry "))
            .filter_map(|k| u64::from_str_radix(k, 16).ok())
            .collect()
    }

    /// Persists the live-entry LRU order (oldest first) through the
    /// atomic publish path. Best-effort: an unwritable index degrades the
    /// next restart's ordering, never this process's correctness.
    fn persist_index(&self, st: &State) {
        let mut order: Vec<(u64, u64)> = st.live.iter().map(|(k, m)| (m.last_use, *k)).collect();
        order.sort_unstable();
        let mut body = String::new();
        let _ = writeln!(body, "{INDEX_HEADER}");
        for (_, key) in order {
            let _ = writeln!(body, "entry {key:016x}");
        }
        let sum = fnv1a64(body.as_bytes());
        let _ = writeln!(body, "checksum {sum:016x}");
        let _ = atomic_write_in(&self.dir, INDEX_NAME, body.as_bytes());
    }

    /// Evicts oldest-first until the budget holds: quarantined bytes are
    /// reclaimed before any live entry, and pinned keys are never
    /// touched. Call with the state lock held.
    fn evict_to_budget_locked(&self, st: &mut State) {
        let Some(budget) = self.budget else { return };
        let total = |st: &State| -> u64 {
            st.live.values().map(|m| m.bytes).sum::<u64>()
                + st.quarantined.values().map(|m| m.bytes).sum::<u64>()
        };
        while total(st) > budget {
            // Victim: oldest unpinned quarantined entry, else oldest
            // unpinned live entry. (last_use, key) makes the order total
            // and deterministic.
            let pick = |m: &HashMap<u64, EntryMeta>, pins: &HashMap<u64, usize>| {
                m.iter()
                    .filter(|(k, _)| !pins.contains_key(k))
                    .map(|(k, meta)| (meta.last_use, *k, meta.bytes))
                    .min()
            };
            let pinned_skips = st.pins.len() as u64;
            let (victim, quarantined) = match pick(&st.quarantined, &st.pins) {
                Some(v) => (v, true),
                None => match pick(&st.live, &st.pins) {
                    Some(v) => (v, false),
                    None => {
                        // Everything left is pinned: over budget but
                        // untouchable until the readers finish.
                        if pinned_skips > 0 {
                            self.obs.count(names::CACHE_PIN_SKIPS, pinned_skips);
                        }
                        return;
                    }
                },
            };
            let (_, key, bytes) = victim;
            let name = if quarantined {
                st.quarantined.remove(&key);
                Self::quarantine_name(key)
            } else {
                st.live.remove(&key);
                Self::entry_name(key)
            };
            let _ = std::fs::remove_file(self.dir.join(name));
            self.obs.count(names::CACHE_EVICTIONS, 1);
            self.obs.count(names::CACHE_EVICTED_BYTES, bytes);
        }
    }

    /// Probes the cache. A corrupt entry is quarantined (renamed aside,
    /// incident report written) and reported as [`Lookup::Quarantined`];
    /// the caller recompiles exactly as for a miss. The probed key is
    /// pinned for the duration of the read, so a concurrent eviction pass
    /// can never delete the entry from under it.
    pub fn load(&self, key: u64) -> Lookup {
        let pin = Pin { cache: self, key };
        {
            let mut st = self.lock_state();
            *st.pins.entry(key).or_insert(0) += 1;
        }
        // `cache:evict-read-race`: force a hostile eviction pass in the
        // middle of this read. The pin above must keep `key` alive.
        if self.chaos("cache:evict-read-race") {
            let mut st = self.lock_state();
            let saved_budget = self.budget;
            // Evict as if the budget were zero, without changing it.
            let evict_all = Cache {
                dir: self.dir.clone(),
                obs: self.obs.clone(),
                budget: Some(0),
                fault: FaultPlan::new(),
                state: Mutex::new(State::default()),
            };
            evict_all.evict_to_budget_locked(&mut st);
            drop(evict_all);
            debug_assert_eq!(saved_budget, self.budget);
            self.persist_index(&st);
        }
        let name = Self::entry_name(key);
        let path = self.dir.join(&name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.obs.count(names::CACHE_MISSES, 1);
                return Lookup::Miss;
            }
            Err(e) => {
                // Unreadable is as untrustworthy as corrupt.
                drop(pin);
                return self.quarantine_lookup(key, &format!("read failed: {e}"));
            }
        };
        match parse_entry(key, &bytes) {
            Ok(hit) => {
                self.obs.count(names::CACHE_HITS, 1);
                let mut st = self.lock_state();
                let seq = st.seq;
                st.seq += 1;
                let size = bytes.len() as u64;
                st.live.insert(
                    key,
                    EntryMeta {
                        bytes: size,
                        last_use: seq,
                    },
                );
                self.persist_index(&st);
                Lookup::Hit(hit)
            }
            Err(reason) => {
                drop(pin);
                self.quarantine_lookup(key, &reason)
            }
        }
    }

    /// Stores a successful compilation under `key` through the atomic
    /// publish path, then enforces the budget (the fresh entry is the
    /// most recently used, so older entries make room for it — unless
    /// the budget cannot hold even this one entry, in which case it is
    /// reclaimed immediately and the store degrades to a no-op).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn store(&self, key: u64, exit: i32, report: &str) -> Result<(), String> {
        let rendered = render_entry(key, exit, report);
        let size = rendered.len() as u64;
        atomic_write_in(&self.dir, &Self::entry_name(key), &rendered)?;
        // `cache:bitflip`: corrupt the just-published entry on disk, the
        // way a failing device would — the next load must quarantine it.
        if self.chaos("cache:bitflip") {
            let path = self.dir.join(Self::entry_name(key));
            if let Ok(mut bytes) = std::fs::read(&path) {
                let mid = bytes.len() / 2;
                if !bytes.is_empty() {
                    bytes[mid] ^= 0x40;
                    let _ = std::fs::write(&path, &bytes);
                }
            }
        }
        self.obs.count(names::CACHE_STORES, 1);
        let mut st = self.lock_state();
        let seq = st.seq;
        st.seq += 1;
        st.live.insert(
            key,
            EntryMeta {
                bytes: size,
                last_use: seq,
            },
        );
        self.evict_to_budget_locked(&mut st);
        self.persist_index(&st);
        Ok(())
    }

    /// Quarantines `key` and reports the probe outcome (counts the miss
    /// the caller's recompile implies).
    fn quarantine_lookup(&self, key: u64, reason: &str) -> Lookup {
        let entry = self.quarantine_entry(key, reason);
        self.obs.count(names::CACHE_MISSES, 1);
        Lookup::Quarantined {
            entry,
            reason: reason.to_string(),
        }
    }

    /// Renames a failed entry aside and writes an incident report; the
    /// bytes are preserved as evidence (but remain budget-accounted, and
    /// reclaimable by eviction — the incident report is the durable
    /// record). Returns the quarantined file name.
    fn quarantine_entry(&self, key: u64, reason: &str) -> String {
        let name = Self::entry_name(key);
        let quarantined = Self::quarantine_name(key);
        let rename = std::fs::rename(self.dir.join(&name), self.dir.join(&quarantined));
        let mut incident = String::new();
        let _ = writeln!(incident, "{{");
        let _ = writeln!(incident, "  \"version\": 1,");
        let _ = writeln!(incident, "  \"kind\": \"cache-incident\",");
        let _ = writeln!(incident, "  \"entry\": {},", json_str(&name));
        let _ = writeln!(incident, "  \"reason\": {},", json_str(reason));
        let _ = writeln!(
            incident,
            "  \"quarantined_to\": {}",
            json_str(if rename.is_ok() { &quarantined } else { "" })
        );
        let _ = writeln!(incident, "}}");
        let _ = atomic_write_in(
            &self.dir,
            &format!("{key:016x}.incident.json"),
            incident.as_bytes(),
        );
        self.obs.count(names::CACHE_QUARANTINED, 1);
        let mut st = self.lock_state();
        let meta = st.live.remove(&key).unwrap_or(EntryMeta {
            bytes: std::fs::metadata(self.dir.join(&quarantined))
                .map(|m| m.len())
                .unwrap_or(0),
            last_use: 0,
        });
        if rename.is_ok() {
            st.quarantined.insert(key, meta);
        }
        self.evict_to_budget_locked(&mut st);
        self.persist_index(&st);
        quarantined
    }

    /// Total on-disk bytes currently accounted against the budget
    /// (live + quarantined entries).
    pub fn accounted_bytes(&self) -> u64 {
        let st = self.lock_state();
        st.live.values().map(|m| m.bytes).sum::<u64>()
            + st.quarantined.values().map(|m| m.bytes).sum::<u64>()
    }

    /// Occupancy snapshot for the `stats` protocol op: live entry count,
    /// quarantined entry count, and total accounted bytes, read under one
    /// lock acquisition.
    pub fn entry_stats(&self) -> (usize, usize, u64) {
        let st = self.lock_state();
        let bytes = st.live.values().map(|m| m.bytes).sum::<u64>()
            + st.quarantined.values().map(|m| m.bytes).sum::<u64>();
        (st.live.len(), st.quarantined.len(), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("impactc-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry_path(dir: &Path, key: u64) -> PathBuf {
        dir.join(format!("{key:016x}.entry"))
    }

    #[test]
    fn round_trips_a_stored_entry() {
        let dir = tmp("roundtrip");
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        assert!(matches!(cache.load(7), Lookup::Miss));
        cache.store(7, 0, "; ok\nline two\n").unwrap();
        match cache.load(7) {
            Lookup::Hit(hit) => {
                assert_eq!(hit.exit, 0);
                assert_eq!(hit.report, "; ok\nline two\n");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_scan_reaps_a_leaked_health_probe() {
        let dir = tmp("health-probe");
        {
            let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
            cache.store(3, 0, "; survivor\n").unwrap();
        }
        // Simulate a daemon killed between the probe's write and remove.
        let probe = dir.join(HEALTH_PROBE);
        std::fs::write(&probe, b"impact-serve health probe\n").unwrap();
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        assert!(!probe.exists(), "startup scan should reap the probe file");
        match cache.load(3) {
            Lookup::Hit(hit) => assert_eq!(hit.report, "; survivor\n"),
            other => panic!("expected the real entry to survive, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_quarantined_and_recompile_path_recovers() {
        let dir = tmp("bitflip");
        let obs = Telemetry::enabled();
        let cache = Cache::open(&dir, &obs).unwrap();
        cache.store(9, 0, "; report payload\n").unwrap();
        let entry = entry_path(&dir, 9);
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();
        match cache.load(9) {
            Lookup::Quarantined { entry: q, reason } => {
                assert!(dir.join(&q).exists(), "entry renamed aside");
                assert!(!entry.exists(), "live entry removed");
                assert!(!reason.is_empty());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let incident = dir.join(format!("{:016x}.incident.json", 9));
        let text = std::fs::read_to_string(&incident).unwrap();
        assert!(text.contains("cache-incident"), "{text}");
        // The recompile path stores a fresh entry and subsequent loads hit.
        cache.store(9, 0, "; report payload\n").unwrap();
        assert!(matches!(cache.load(9), Lookup::Hit(_)));
        let metrics = obs.snapshot();
        let get = |n: &str| metrics.counters.get(n).copied().unwrap_or(0);
        assert_eq!(get(names::CACHE_QUARANTINED), 1);
        assert_eq!(get(names::CACHE_HITS), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_missing_footer_are_detected() {
        let dir = tmp("trunc");
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        cache.store(3, 0, "; payload\n").unwrap();
        let entry = entry_path(&dir, 3);
        let bytes = std::fs::read(&entry).unwrap();
        // Truncate mid-payload: the checksum footer disappears entirely.
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(cache.load(3), Lookup::Quarantined { .. }));
        // An empty file is also quarantined, not served.
        cache.store(4, 0, "x\n").unwrap();
        let entry4 = entry_path(&dir, 4);
        std::fs::write(&entry4, b"").unwrap();
        assert!(matches!(cache.load(4), Lookup::Quarantined { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_quarantined() {
        let dir = tmp("keymismatch");
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        cache.store(5, 0, "; payload\n").unwrap();
        // Copy key 5's entry under key 6's name: checksum is valid but the
        // embedded key is wrong.
        let bytes = std::fs::read(entry_path(&dir, 5)).unwrap();
        std::fs::write(entry_path(&dir, 6), &bytes).unwrap();
        match cache.load(6) {
            Lookup::Quarantined { reason, .. } => {
                assert!(reason.contains("key mismatch"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_key_tracks_content_and_flags_but_not_service_knobs() {
        let strs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let sources = vec![Source::new("a.c", "int main() { return 0; }")];
        let runs: Vec<RunSpec> = vec![(Vec::new(), Vec::new())];
        let base = Options::parse(&strs(&["batch", "u.c"])).unwrap();
        let k0 = unit_key(&sources, &runs, &base);
        // Source text changes the key.
        let other = vec![Source::new("a.c", "int main() { return 1; }")];
        assert_ne!(k0, unit_key(&other, &runs, &base));
        // A behavior-affecting flag changes the key.
        let o = Options::parse(&strs(&["batch", "u.c", "--threshold", "5"])).unwrap();
        assert_ne!(k0, unit_key(&sources, &runs, &o));
        // Service/journal/telemetry knobs do not.
        let o = Options::parse(&strs(&[
            "batch",
            "u.c",
            "--jobs",
            "4",
            "--cache-dir",
            "/tmp/c",
            "--cache-budget-bytes",
            "4096",
            "--journal",
            "/tmp/j",
            "--trace-out",
            "/tmp/t",
        ]))
        .unwrap();
        assert_eq!(k0, unit_key(&sources, &runs, &o));
        // Service fault domains (daemon chaos) do not change the key
        // either: they never reach the pipeline.
        let o = Options::parse(&strs(&[
            "batch",
            "u.c",
            "--fault",
            "net:torn-write",
            "--fault",
            "cache:bitflip",
            "--fault",
            "serve:stall",
        ]))
        .unwrap();
        assert_eq!(k0, unit_key(&sources, &runs, &o));
        // Engine selection and icache simulation do not either: both
        // engines produce identical artifacts (the parity suite proves
        // it), so a cache filled under one engine serves the other.
        let o = Options::parse(&strs(&["batch", "u.c", "--engine", "interp", "--icache"])).unwrap();
        assert_eq!(k0, unit_key(&sources, &runs, &o));
        let _ = std::fs::remove_dir_all(std::path::Path::new("/tmp/c"));
    }

    // ----- lifecycle: budget, eviction, pinning, restart -----------------

    /// Renders a report payload sized so each stored entry lands at a
    /// known on-disk size, making budget arithmetic exact in tests.
    fn sized_report(fill: usize) -> String {
        format!("; r\n{}\n", "x".repeat(fill))
    }

    fn entry_size(dir: &Path, key: u64) -> u64 {
        std::fs::metadata(entry_path(dir, key)).unwrap().len()
    }

    #[test]
    fn eviction_reclaims_oldest_first_under_budget() {
        let dir = tmp("evict-lru");
        let obs = Telemetry::enabled();
        let cache = Cache::open_with(&dir, &obs, None, FaultPlan::new()).unwrap();
        cache.store(1, 0, &sized_report(100)).unwrap();
        cache.store(2, 0, &sized_report(100)).unwrap();
        cache.store(3, 0, &sized_report(100)).unwrap();
        let one = entry_size(&dir, 1);
        drop(cache);
        // Reopen with a budget for exactly two entries; touch 1 so 2 is
        // the LRU victim when 4 arrives.
        let cache = Cache::open_with(&dir, &obs, Some(one * 3), FaultPlan::new()).unwrap();
        assert!(matches!(cache.load(1), Lookup::Hit(_)));
        cache.store(4, 0, &sized_report(100)).unwrap();
        assert!(!entry_path(&dir, 2).exists(), "LRU victim must be 2");
        assert!(entry_path(&dir, 1).exists(), "recently-used 1 survives");
        assert!(entry_path(&dir, 4).exists(), "fresh store survives");
        let m = obs.snapshot();
        assert!(m.counters.get(names::CACHE_EVICTIONS).copied().unwrap_or(0) >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_smaller_than_one_entry_keeps_the_cache_empty() {
        let dir = tmp("evict-tiny");
        let obs = Telemetry::enabled();
        let cache = Cache::open_with(&dir, &obs, Some(8), FaultPlan::new()).unwrap();
        cache.store(1, 0, &sized_report(100)).unwrap();
        // The entry was published, then immediately reclaimed: the store
        // degrades to a no-op rather than blowing the budget.
        assert!(!entry_path(&dir, 1).exists());
        assert_eq!(cache.accounted_bytes(), 0);
        assert!(matches!(cache.load(1), Lookup::Miss));
        let m = obs.snapshot();
        assert_eq!(
            m.counters.get(names::CACHE_EVICTIONS).copied().unwrap_or(0),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_order_survives_a_restart() {
        let dir = tmp("evict-restart");
        let obs = Telemetry::disabled();
        let cache = Cache::open_with(&dir, &obs, None, FaultPlan::new()).unwrap();
        cache.store(1, 0, &sized_report(100)).unwrap();
        cache.store(2, 0, &sized_report(100)).unwrap();
        cache.store(3, 0, &sized_report(100)).unwrap();
        // Access order now 1 < 2 < 3; touching 1 makes 2 the oldest.
        assert!(matches!(cache.load(1), Lookup::Hit(_)));
        let one = entry_size(&dir, 1);
        drop(cache);
        // Restart with a two-entry budget: the persisted index must make
        // 2 (not 1) the eviction victim, proving hit order survived.
        let cache = Cache::open_with(&dir, &obs, Some(one * 2), FaultPlan::new()).unwrap();
        assert!(
            !entry_path(&dir, 2).exists(),
            "restart forgot the LRU order"
        );
        assert!(entry_path(&dir, 1).exists());
        assert!(entry_path(&dir, 3).exists());
        drop(cache);
        // A deleted (or corrupt) index degrades to key-order scan, not an
        // error.
        std::fs::remove_file(dir.join(INDEX_NAME)).unwrap();
        let cache = Cache::open_with(&dir, &obs, Some(one), FaultPlan::new()).unwrap();
        assert!(entry_path(&dir, 3).exists(), "key-order fallback keeps 3");
        assert!(!entry_path(&dir, 1).exists());
        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_bytes_count_against_the_budget_then_free_first() {
        let dir = tmp("evict-quarantine");
        let obs = Telemetry::enabled();
        let cache = Cache::open_with(&dir, &obs, None, FaultPlan::new()).unwrap();
        cache.store(1, 0, &sized_report(100)).unwrap();
        let one = entry_size(&dir, 1);
        // Corrupt and quarantine: the bytes move aside but still count.
        let mut bytes = std::fs::read(entry_path(&dir, 1)).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(entry_path(&dir, 1), &bytes).unwrap();
        assert!(matches!(cache.load(1), Lookup::Quarantined { .. }));
        assert_eq!(cache.accounted_bytes(), one);
        drop(cache);
        // Reopen under a budget with room for two entries. Storing two
        // fresh entries passes the budget only if the quarantined bytes
        // are reclaimed first — and they must be the first victim.
        let cache = Cache::open_with(&dir, &obs, Some(one * 2), FaultPlan::new()).unwrap();
        assert_eq!(cache.accounted_bytes(), one, "restart re-counts quarantine");
        cache.store(2, 0, &sized_report(100)).unwrap();
        cache.store(3, 0, &sized_report(100)).unwrap();
        assert!(
            !dir.join(format!("{:016x}.quarantined", 1)).exists(),
            "quarantined bytes must be reclaimed before live entries"
        );
        assert!(entry_path(&dir, 2).exists());
        assert!(entry_path(&dir, 3).exists());
        // The incident report survives as the durable record.
        assert!(dir.join(format!("{:016x}.incident.json", 1)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_fault_corrupts_store_and_next_load_quarantines() {
        let dir = tmp("fault-bitflip");
        let obs = Telemetry::enabled();
        let plan = FaultPlan::new();
        plan.arm_spec("cache:bitflip=1").unwrap();
        let cache = Cache::open_with(&dir, &obs, None, plan).unwrap();
        cache.store(7, 0, "; chaos payload\n").unwrap();
        match cache.load(7) {
            Lookup::Quarantined { reason, .. } => {
                assert!(reason.contains("checksum mismatch"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // One-shot: the recompile's store publishes a clean entry.
        cache.store(7, 0, "; chaos payload\n").unwrap();
        assert!(matches!(cache.load(7), Lookup::Hit(_)));
        let m = obs.snapshot();
        assert_eq!(
            m.counters.get("chaos:cache:bitflip").copied().unwrap_or(0),
            1
        );
        assert_eq!(
            m.counters.get(names::CHAOS_INJECTED).copied().unwrap_or(0),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_read_race_fault_cannot_evict_the_pinned_entry() {
        let dir = tmp("fault-race");
        let obs = Telemetry::enabled();
        let plan = FaultPlan::new();
        plan.arm_spec("cache:evict-read-race=2").unwrap();
        let cache = Cache::open_with(&dir, &obs, Some(1 << 20), plan).unwrap();
        cache.store(1, 0, "; pinned payload\n").unwrap();
        cache.store(2, 0, "; other payload\n").unwrap();
        assert!(matches!(cache.load(1), Lookup::Hit(_)), "first load clean");
        // Second load fires the race: a full eviction pass runs mid-read.
        // The pinned key 1 must still be served; unpinned 2 is collateral.
        match cache.load(1) {
            Lookup::Hit(hit) => assert_eq!(hit.report, "; pinned payload\n"),
            other => panic!("pinned entry evicted from under the read: {other:?}"),
        }
        assert!(
            entry_path(&dir, 1).exists(),
            "pinned entry survives on disk"
        );
        assert!(!entry_path(&dir, 2).exists(), "unpinned entry was evicted");
        let m = obs.snapshot();
        assert_eq!(
            m.counters
                .get("chaos:cache:evict-read-race")
                .copied()
                .unwrap_or(0),
            1
        );
        assert!(m.counters.get(names::CACHE_PIN_SKIPS).copied().unwrap_or(0) >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_scan_quarantines_corrupt_entries() {
        let dir = tmp("scan-validate");
        let obs = Telemetry::enabled();
        let cache = Cache::open(&dir, &obs).unwrap();
        cache.store(1, 0, "; good\n").unwrap();
        cache.store(2, 0, "; soon corrupt\n").unwrap();
        drop(cache);
        let mut bytes = std::fs::read(entry_path(&dir, 2)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(entry_path(&dir, 2), &bytes).unwrap();
        // Reopen: the scan quarantines 2 before the first probe.
        let cache = Cache::open(&dir, &obs).unwrap();
        assert!(!entry_path(&dir, 2).exists());
        assert!(dir.join(format!("{:016x}.quarantined", 2)).exists());
        assert!(dir.join(format!("{:016x}.incident.json", 2)).exists());
        assert!(matches!(cache.load(2), Lookup::Miss), "no resurrection");
        assert!(
            matches!(cache.load(1), Lookup::Hit(_)),
            "clean entry serves"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
