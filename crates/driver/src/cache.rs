//! Content-addressed artifact cache with corruption quarantine.
//!
//! A cache entry maps `hash(sources + inputs + behavior-affecting flags)`
//! to the pipeline's exit code and rendered report, so a batch or serve
//! run can skip recompiling a unit whose whole input set is unchanged.
//! Only *successful* compilations are cached: failures carry retry and
//! crash-report machinery that must re-run to stay observable.
//!
//! Integrity model (the robustness headline):
//!
//! - Entries are published through the same atomic staging + fsync +
//!   rename path as crash reports ([`crate::report::atomic_write_in`]),
//!   so a torn write can never leave a half-entry under the final name.
//! - Each entry carries its key and an FNV-1a 64 checksum footer over
//!   everything before the footer line. A read validates header, key,
//!   payload length, and checksum.
//! - Any validation failure — truncation, bit flip, wrong key, missing
//!   footer — is *quarantined*: the entry is renamed aside to
//!   `<key>.quarantined`, an incident report is written next to it, and
//!   the lookup reports a miss so the unit is transparently recompiled.
//!   A corrupt entry is never served, and never silently deleted (the
//!   quarantined bytes are evidence).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use impact_obs::{names, Telemetry};
use impact_vm::fnv1a64;

use crate::report::{atomic_write_in, json_str};
use crate::{Options, RunSpec};
use impact_cfront::Source;

/// First line of every cache entry; version-bumps invalidate old caches.
pub const CACHE_HEADER: &str = "impact-cache v1";

/// Extension of a live entry (`<key:016x>.entry`).
const ENTRY_EXT: &str = "entry";

/// Extension an entry is renamed to when it fails validation.
const QUARANTINE_EXT: &str = "quarantined";

/// A validated cache hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedResult {
    /// Exit code the original compilation returned.
    pub exit: i32,
    /// The rendered pipeline report, byte-for-byte.
    pub report: String,
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Lookup {
    /// Entry present and validated.
    Hit(CachedResult),
    /// No entry under this key.
    Miss,
    /// Entry present but failed validation; it has been renamed aside
    /// and an incident report written. The caller must recompile.
    Quarantined {
        /// File name of the quarantined entry (relative to the cache dir).
        entry: String,
        /// Human-readable validation failure.
        reason: String,
    },
}

/// Handle on an open cache directory.
pub struct Cache {
    dir: PathBuf,
    obs: Telemetry,
}

/// Computes the content address of one unit of work: FNV-1a 64 over a
/// canonical dump of the sources, the run inputs/args, and every
/// behavior-affecting flag. Mirrors the field-enumeration style of
/// [`crate::journal::campaign_fingerprint`], so flags that cannot change
/// pipeline output (telemetry, journaling, `--jobs`) are excluded by
/// omission.
pub fn unit_key(sources: &[Source], runs: &[RunSpec], opts: &Options) -> u64 {
    let mut s = String::new();
    let _ = writeln!(s, "{CACHE_HEADER} key");
    for src in sources {
        let _ = writeln!(
            s,
            "source {} {:016x} {}",
            src.name.len(),
            fnv1a64(src.text.as_bytes()),
            src.name
        );
    }
    for (inputs, args) in runs {
        for f in inputs {
            let _ = writeln!(
                s,
                "input {} {:016x} {}",
                f.bytes.len(),
                fnv1a64(&f.bytes),
                f.name
            );
        }
        for a in args {
            let _ = writeln!(s, "arg {} {a}", a.len());
        }
        let _ = writeln!(s, "run-end");
    }
    let _ = writeln!(s, "threshold {:?}", opts.threshold);
    let _ = writeln!(s, "budget {:?}", opts.budget);
    let _ = writeln!(s, "stack_bound {:?}", opts.stack_bound);
    let _ = writeln!(s, "linearize {:?}", opts.linearization);
    let _ = writeln!(s, "promote_indirect {}", opts.promote_indirect);
    let _ = writeln!(s, "opt {}", opts.opt);
    let _ = writeln!(s, "fuel {:?}", opts.fuel);
    let _ = writeln!(s, "mem_limit {:?}", opts.mem_limit);
    let _ = writeln!(s, "profile_in {:?}", opts.profile_in);
    let _ = writeln!(s, "profile_out {:?}", opts.profile_out);
    let _ = writeln!(s, "quiet {}", opts.quiet);
    let mut faults: Vec<&String> = opts
        .faults
        .iter()
        .filter(|f| !crate::journal::is_journal_fault(f) && !f.starts_with("serve:"))
        .collect();
    faults.sort();
    for f in faults {
        let _ = writeln!(s, "fault {} {f}", f.len());
    }
    fnv1a64(s.as_bytes())
}

/// Renders an entry's on-disk bytes: header, key, exit, payload length,
/// payload, checksum footer.
fn render_entry(key: u64, exit: i32, report: &str) -> Vec<u8> {
    let mut body = String::new();
    let _ = writeln!(body, "{CACHE_HEADER}");
    let _ = writeln!(body, "key {key:016x}");
    let _ = writeln!(body, "exit {exit}");
    let _ = writeln!(body, "len {}", report.len());
    body.push_str(report);
    body.push('\n');
    let sum = fnv1a64(body.as_bytes());
    let _ = writeln!(body, "checksum {sum:016x}");
    body.into_bytes()
}

/// Parses and validates entry bytes against the expected key.
///
/// # Errors
///
/// Returns a description of the first validation failure.
fn parse_entry(key: u64, bytes: &[u8]) -> Result<CachedResult, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "entry is not UTF-8".to_string())?;
    // The checksum footer is the last line; everything before it is the
    // checksummed body.
    let trimmed = text
        .strip_suffix('\n')
        .ok_or("entry missing final newline")?;
    let footer_at = trimmed.rfind('\n').ok_or("entry truncated before footer")?;
    let (body, footer) = trimmed.split_at(footer_at + 1);
    let sum = footer
        .strip_prefix("checksum ")
        .ok_or("entry missing checksum footer")?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| "unparseable checksum".to_string())?;
    let actual = fnv1a64(body.as_bytes());
    if actual != sum {
        return Err(format!(
            "checksum mismatch: footer {sum:016x}, computed {actual:016x}"
        ));
    }
    let mut lines = body.splitn(4, '\n');
    let header = lines.next().unwrap_or_default();
    if header != CACHE_HEADER {
        return Err(format!("bad header `{header}`"));
    }
    let key_line = lines.next().unwrap_or_default();
    let stored = key_line
        .strip_prefix("key ")
        .and_then(|k| u64::from_str_radix(k, 16).ok())
        .ok_or("entry missing key line")?;
    if stored != key {
        return Err(format!(
            "key mismatch: entry {stored:016x}, expected {key:016x}"
        ));
    }
    let exit_line = lines.next().unwrap_or_default();
    let exit: i32 = exit_line
        .strip_prefix("exit ")
        .and_then(|e| e.parse().ok())
        .ok_or("entry missing exit line")?;
    let rest = lines.next().ok_or("entry truncated after exit line")?;
    let (len_line, payload) = rest
        .split_once('\n')
        .ok_or("entry truncated after len line")?;
    let len: usize = len_line
        .strip_prefix("len ")
        .and_then(|l| l.parse().ok())
        .ok_or("entry missing len line")?;
    // The payload is followed by the newline `render_entry` appended.
    let payload = payload
        .strip_suffix('\n')
        .ok_or("payload missing trailing newline")?;
    if payload.len() != len {
        return Err(format!(
            "payload length mismatch: len line {len}, actual {}",
            payload.len()
        ));
    }
    Ok(CachedResult {
        exit,
        report: payload.to_string(),
    })
}

impl Cache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns a message naming the directory on I/O failure.
    pub fn open(dir: &Path, obs: &Telemetry) -> Result<Cache, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
        Ok(Cache {
            dir: dir.to_path_buf(),
            obs: obs.clone(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_name(key: u64) -> String {
        format!("{key:016x}.{ENTRY_EXT}")
    }

    /// Probes the cache. A corrupt entry is quarantined (renamed aside,
    /// incident report written) and reported as [`Lookup::Quarantined`];
    /// the caller recompiles exactly as for a miss.
    pub fn load(&self, key: u64) -> Lookup {
        let name = Self::entry_name(key);
        let path = self.dir.join(&name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.obs.count(names::CACHE_MISSES, 1);
                return Lookup::Miss;
            }
            Err(e) => {
                // Unreadable is as untrustworthy as corrupt.
                return self.quarantine(key, &name, &format!("read failed: {e}"));
            }
        };
        match parse_entry(key, &bytes) {
            Ok(hit) => {
                self.obs.count(names::CACHE_HITS, 1);
                Lookup::Hit(hit)
            }
            Err(reason) => self.quarantine(key, &name, &reason),
        }
    }

    /// Stores a successful compilation under `key` through the atomic
    /// publish path.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn store(&self, key: u64, exit: i32, report: &str) -> Result<(), String> {
        atomic_write_in(
            &self.dir,
            &Self::entry_name(key),
            &render_entry(key, exit, report),
        )?;
        self.obs.count(names::CACHE_STORES, 1);
        Ok(())
    }

    /// Renames a failed entry aside and writes an incident report; the
    /// lookup then behaves as a miss (recompile), never serving the bytes.
    fn quarantine(&self, key: u64, name: &str, reason: &str) -> Lookup {
        let quarantined = format!("{key:016x}.{QUARANTINE_EXT}");
        let rename = std::fs::rename(self.dir.join(name), self.dir.join(&quarantined));
        let mut incident = String::new();
        let _ = writeln!(incident, "{{");
        let _ = writeln!(incident, "  \"version\": 1,");
        let _ = writeln!(incident, "  \"kind\": \"cache-incident\",");
        let _ = writeln!(incident, "  \"entry\": {},", json_str(name));
        let _ = writeln!(incident, "  \"reason\": {},", json_str(reason));
        let _ = writeln!(
            incident,
            "  \"quarantined_to\": {}",
            json_str(if rename.is_ok() { &quarantined } else { "" })
        );
        let _ = writeln!(incident, "}}");
        let _ = atomic_write_in(
            &self.dir,
            &format!("{key:016x}.incident.json"),
            incident.as_bytes(),
        );
        self.obs.count(names::CACHE_QUARANTINED, 1);
        self.obs.count(names::CACHE_MISSES, 1);
        Lookup::Quarantined {
            entry: quarantined,
            reason: reason.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("impactc-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_a_stored_entry() {
        let dir = tmp("roundtrip");
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        assert!(matches!(cache.load(7), Lookup::Miss));
        cache.store(7, 0, "; ok\nline two\n").unwrap();
        match cache.load(7) {
            Lookup::Hit(hit) => {
                assert_eq!(hit.exit, 0);
                assert_eq!(hit.report, "; ok\nline two\n");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_quarantined_and_recompile_path_recovers() {
        let dir = tmp("bitflip");
        let obs = Telemetry::enabled();
        let cache = Cache::open(&dir, &obs).unwrap();
        cache.store(9, 0, "; report payload\n").unwrap();
        let entry = dir.join(format!("{:016x}.entry", 9));
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();
        match cache.load(9) {
            Lookup::Quarantined { entry: q, reason } => {
                assert!(dir.join(&q).exists(), "entry renamed aside");
                assert!(!entry.exists(), "live entry removed");
                assert!(!reason.is_empty());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let incident = dir.join(format!("{:016x}.incident.json", 9));
        let text = std::fs::read_to_string(&incident).unwrap();
        assert!(text.contains("cache-incident"), "{text}");
        // The recompile path stores a fresh entry and subsequent loads hit.
        cache.store(9, 0, "; report payload\n").unwrap();
        assert!(matches!(cache.load(9), Lookup::Hit(_)));
        let metrics = obs.snapshot();
        let get = |n: &str| metrics.counters.get(n).copied().unwrap_or(0);
        assert_eq!(get(names::CACHE_QUARANTINED), 1);
        assert_eq!(get(names::CACHE_HITS), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_missing_footer_are_detected() {
        let dir = tmp("trunc");
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        cache.store(3, 0, "; payload\n").unwrap();
        let entry = dir.join(format!("{:016x}.entry", 3));
        let bytes = std::fs::read(&entry).unwrap();
        // Truncate mid-payload: the checksum footer disappears entirely.
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(cache.load(3), Lookup::Quarantined { .. }));
        // An empty file is also quarantined, not served.
        cache.store(4, 0, "x\n").unwrap();
        let entry4 = dir.join(format!("{:016x}.entry", 4));
        std::fs::write(&entry4, b"").unwrap();
        assert!(matches!(cache.load(4), Lookup::Quarantined { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_quarantined() {
        let dir = tmp("keymismatch");
        let cache = Cache::open(&dir, &Telemetry::disabled()).unwrap();
        cache.store(5, 0, "; payload\n").unwrap();
        // Copy key 5's entry under key 6's name: checksum is valid but the
        // embedded key is wrong.
        let bytes = std::fs::read(dir.join(format!("{:016x}.entry", 5))).unwrap();
        std::fs::write(dir.join(format!("{:016x}.entry", 6)), &bytes).unwrap();
        match cache.load(6) {
            Lookup::Quarantined { reason, .. } => {
                assert!(reason.contains("key mismatch"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_key_tracks_content_and_flags_but_not_service_knobs() {
        let strs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let sources = vec![Source::new("a.c", "int main() { return 0; }")];
        let runs: Vec<RunSpec> = vec![(Vec::new(), Vec::new())];
        let base = Options::parse(&strs(&["batch", "u.c"])).unwrap();
        let k0 = unit_key(&sources, &runs, &base);
        // Source text changes the key.
        let other = vec![Source::new("a.c", "int main() { return 1; }")];
        assert_ne!(k0, unit_key(&other, &runs, &base));
        // A behavior-affecting flag changes the key.
        let o = Options::parse(&strs(&["batch", "u.c", "--threshold", "5"])).unwrap();
        assert_ne!(k0, unit_key(&sources, &runs, &o));
        // Service/journal/telemetry knobs do not.
        let o = Options::parse(&strs(&[
            "batch",
            "u.c",
            "--jobs",
            "4",
            "--cache-dir",
            "/tmp/c",
            "--journal",
            "/tmp/j",
            "--trace-out",
            "/tmp/t",
        ]))
        .unwrap();
        assert_eq!(k0, unit_key(&sources, &runs, &o));
        let _ = std::fs::remove_dir_all(std::path::Path::new("/tmp/c"));
    }
}
