//! The `impactc fuzz` subcommand: a differential-oracle fuzzing campaign
//! with automatic reproducer shrinking.
//!
//! The heavy lifting lives in the `impact-fuzz` library (seeded program
//! generation, the configuration lattice, the metamorphic invariants);
//! this module adds the operational shell: flag handling through the
//! shared [`Options::validate_flags`] path, a campaign summary with the
//! per-class site counts of the paper's Tables 2–3, and — for every
//! diverging program — delta-debugged `*.repro.c` plus a JSON oracle
//! report under `--report-dir`, mirroring the batch supervisor's crash
//! artifacts.
//!
//! Exit codes: `0` clean campaign, `12` divergences found (distinct from
//! batch's `10`/`11` so CI can tell the failure families apart).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use impact_fuzz::{
    check_source, generate, program_seed, CampaignConfig, CampaignOutcome, Finding, OracleConfig,
};
use impact_inline::ClassTotals;

use crate::journal::{
    campaign_fingerprint, is_journal_fault, open_for, prepare_report_dir, Event, UnitRecord,
};
use crate::minimize::{shrink, ShrinkResult};
use crate::report::{atomic_write_in, json_str, json_str_list};
use crate::{telemetry, usage, Options};

/// Exit code when the oracle found divergences.
pub const EXIT_DIVERGENCE: i32 = 12;

/// Findings that get the (comparatively expensive) shrink + report
/// treatment; the rest are summarized in text only.
const MAX_SHRUNK: usize = 3;

/// Evaluation budget per shrink (each evaluation replays the whole
/// configuration lattice on a candidate program).
const SHRINK_EVALS: usize = 120;

/// Runs a fuzzing campaign described by `opts`.
///
/// # Errors
///
/// Returns a usage-style message for malformed flags; oracle findings are
/// *not* errors — they are reported in the text and via the exit code.
pub fn run_fuzz(opts: &Options) -> Result<(i32, String), String> {
    if !opts.positional.is_empty() {
        return Err(format!(
            "fuzz takes no positional arguments (got `{}`)\n{}",
            opts.positional.join(" "),
            usage()
        ));
    }
    // Shared flag validation (fault specs, threshold, governor flags all
    // get the same messages as inline/bench/batch)...
    let flags = opts.validate_flags()?;
    // ...except --budget, which for fuzz is the *program count*, not a
    // code-growth multiplier: it must be a whole number.
    let budget = match opts.budget {
        None => 100,
        Some(b) if b.fract() == 0.0 && (1.0..=1e9).contains(&b) => b as u64,
        Some(b) => {
            return Err(format!(
                "--budget {b} is not a valid program count; fuzz interprets \
                 --budget as the number of programs to check (default 100)"
            ));
        }
    };
    let config = CampaignConfig {
        seed: opts.seed.unwrap_or(42),
        budget,
        weight_threshold: flags.inline.weight_threshold,
        // `journal:*` specs drive the campaign journal's kill points, not
        // the oracle's configuration lattice.
        fault_specs: opts
            .faults
            .iter()
            .filter(|f| !is_journal_fault(f))
            .cloned()
            .collect(),
    };
    let fingerprint = campaign_fingerprint("fuzz", opts, &[]);
    let mut out = String::new();
    let journal = open_for(opts, "fuzz", fingerprint, &mut out)?;
    let (mut journal, completed) = match journal {
        Some((j, c)) => (Some(j), c),
        None => (None, std::collections::HashMap::new()),
    };
    let report_dir = PathBuf::from(opts.report_dir.as_deref().unwrap_or("fuzz-reports"));
    if opts.report_dir.is_some() {
        prepare_report_dir(&report_dir, "fuzz", fingerprint, opts.force_resume)?;
    }
    let oc = OracleConfig {
        weight_threshold: config.weight_threshold,
        fault_specs: config.fault_specs.clone(),
    };
    // The campaign loop, journaled per program. Completed programs are
    // reconstructed from their `unit-done` counts — findings re-derive
    // from the seed (generation and the oracle are pure functions of it),
    // so a resume converges on the exact outcome of an unbroken run.
    let obs = telemetry::handle_for(opts);
    let started = Instant::now();
    let campaign_span = obs.span("fuzz:campaign");
    let mut outcome = CampaignOutcome::default();
    let add = |acc: &mut ClassTotals, e: u64, p: u64, u: u64, s: u64| {
        acc.external += e;
        acc.pointer += p;
        acc.r#unsafe += u;
        acc.safe += s;
    };
    for index in 0..config.budget {
        let unit = format!("p{index}");
        if let Some(rec) = completed.get(&unit) {
            let c = &rec.counts;
            if c.len() != 10 {
                return Err(format!(
                    "journal record for `{unit}` carries {} counters, expected 10; \
                     the journal was written by an incompatible impactc",
                    c.len()
                ));
            }
            outcome.programs += 1;
            outcome.skipped += c[0];
            add(&mut outcome.static_classes, c[1], c[2], c[3], c[4]);
            add(&mut outcome.dynamic_classes, c[5], c[6], c[7], c[8]);
            if c[9] != 0 {
                let pseed = program_seed(config.seed, index);
                let source = generate(pseed);
                let report = check_source(&source, &oc);
                outcome.findings.push(Finding {
                    index,
                    program_seed: pseed,
                    source,
                    divergences: report.divergences,
                });
            }
            continue;
        }
        if let Some(j) = journal.as_mut() {
            j.append(&Event::UnitStart { unit: unit.clone() })?;
        }
        let pseed = program_seed(config.seed, index);
        let source = generate(pseed);
        let report = check_source(&source, &oc);
        outcome.programs += 1;
        if report.skipped {
            outcome.skipped += 1;
        }
        let st = &report.static_classes;
        let dy = &report.dynamic_classes;
        add(
            &mut outcome.static_classes,
            st.external,
            st.pointer,
            st.r#unsafe,
            st.safe,
        );
        add(
            &mut outcome.dynamic_classes,
            dy.external,
            dy.pointer,
            dy.r#unsafe,
            dy.safe,
        );
        let diverged = !report.divergences.is_empty();
        if let Some(j) = journal.as_mut() {
            if diverged {
                j.append(&Event::Finding { id: unit.clone() })?;
            }
            j.append(&Event::UnitDone(UnitRecord {
                unit,
                status: "checked".to_string(),
                attempts: 1,
                signature: "-".to_string(),
                report: "-".to_string(),
                counts: vec![
                    u64::from(report.skipped),
                    st.external,
                    st.pointer,
                    st.r#unsafe,
                    st.safe,
                    dy.external,
                    dy.pointer,
                    dy.r#unsafe,
                    dy.safe,
                    u64::from(diverged),
                ],
            }))?;
        }
        if diverged {
            outcome.findings.push(Finding {
                index,
                program_seed: pseed,
                source,
                divergences: report.divergences,
            });
        }
    }

    drop(campaign_span);
    // Canonical-order guarantee for the findings section: the loop above
    // pushes in index order today, but the summary contract (resumed ==
    // uninterrupted, byte-for-byte) must not depend on that incidental
    // property, so sort defensively before rendering.
    outcome.findings.sort_by_key(|f| f.index);
    let elapsed_ms = started.elapsed().as_millis();
    let _ = writeln!(
        out,
        "fuzz: seed {}, {} programs, {} skipped, {} diverging in {elapsed_ms}ms",
        config.seed,
        outcome.programs,
        outcome.skipped,
        outcome.findings.len()
    );
    let st = &outcome.static_classes;
    let dy = &outcome.dynamic_classes;
    obs.count("fuzz:programs", outcome.programs);
    obs.count("fuzz:skipped", outcome.skipped);
    obs.count("fuzz:findings", outcome.findings.len() as u64);
    obs.count("fuzz:sites:external", st.external);
    obs.count("fuzz:sites:pointer", st.pointer);
    obs.count("fuzz:sites:unsafe", st.r#unsafe);
    obs.count("fuzz:sites:safe", st.safe);
    obs.count("fuzz:dynamic:external", dy.external);
    obs.count("fuzz:dynamic:pointer", dy.pointer);
    obs.count("fuzz:dynamic:unsafe", dy.r#unsafe);
    obs.count("fuzz:dynamic:safe", dy.safe);
    let _ = writeln!(
        out,
        "; sites:         {} external / {} pointer / {} unsafe / {} safe",
        st.external, st.pointer, st.r#unsafe, st.safe
    );
    let _ = writeln!(
        out,
        "; dynamic calls: {} external / {} pointer / {} unsafe / {} safe",
        dy.external, dy.pointer, dy.r#unsafe, dy.safe
    );

    if outcome.findings.is_empty() {
        let _ = writeln!(
            out,
            "; no divergences: every config agreed on every program"
        );
        if let Some(j) = journal.as_mut() {
            j.append(&Event::CampaignEnd {
                ok: outcome.programs,
                failed: 0,
            })?;
        }
        telemetry::write_artifacts(opts, &obs, None)?;
        return Ok((0, out));
    }

    if opts.report_dir.is_none() {
        // The default report dir is only claimed once there is something
        // to write into it.
        prepare_report_dir(&report_dir, "fuzz", fingerprint, opts.force_resume)?;
    }
    for (i, finding) in outcome.findings.iter().enumerate() {
        let sigs: Vec<String> = finding.divergences.iter().map(|d| d.signature()).collect();
        let _ = writeln!(
            out,
            "; finding p{} (program seed {:#018x}): {}",
            finding.index,
            finding.program_seed,
            sigs.join(", ")
        );
        if i >= MAX_SHRUNK {
            continue;
        }
        let reduced = shrink_finding(finding, &oc);
        let stem = format!("fuzz-seed{}-p{}", config.seed, finding.index);
        // Stable names + atomic replace: re-emitting after a resume
        // converges on the same artifact set instead of duplicating it.
        let c_path = atomic_write_in(
            &report_dir,
            &format!("{stem}.repro.c"),
            reduced.source.as_bytes(),
        )?;
        let json_path = atomic_write_in(
            &report_dir,
            &format!("{stem}.json"),
            oracle_report_json(&config, finding, &reduced).as_bytes(),
        )?;
        let _ = writeln!(
            out,
            ";   reproducer: {} ({} -> {} bytes, {} evals), report: {}",
            c_path.display(),
            reduced.original_bytes,
            reduced.reduced_bytes,
            reduced.evals,
            json_path.display()
        );
    }
    if outcome.findings.len() > MAX_SHRUNK {
        let _ = writeln!(
            out,
            "; {} further finding(s) not shrunk (cap {MAX_SHRUNK}); rerun with a \
             narrower --budget window to isolate them",
            outcome.findings.len() - MAX_SHRUNK
        );
    }
    if let Some(j) = journal.as_mut() {
        j.append(&Event::CampaignEnd {
            ok: outcome.programs - outcome.findings.len() as u64,
            failed: outcome.findings.len() as u64,
        })?;
    }
    telemetry::write_artifacts(opts, &obs, None)?;
    Ok((EXIT_DIVERGENCE, out))
}

/// Delta-debugs one finding's source: a candidate counts as a reproducer
/// when it still triggers the finding's *primary* oracle signature
/// (kind@config of the first divergence).
fn shrink_finding(finding: &Finding, oc: &OracleConfig) -> ShrinkResult {
    let primary = finding.divergences[0].signature();
    let mut check = |candidate: &str| {
        check_source(candidate, oc)
            .divergences
            .iter()
            .any(|d| d.signature() == primary)
    };
    shrink(&finding.source, &mut check, SHRINK_EVALS)
}

/// Renders the JSON oracle report for one finding — same dialect as the
/// batch supervisor's crash reports (hand-rendered, schema-versioned).
fn oracle_report_json(
    config: &CampaignConfig,
    finding: &Finding,
    reduced: &ShrinkResult,
) -> String {
    let mut divs = String::new();
    for (i, d) in finding.divergences.iter().enumerate() {
        if i > 0 {
            divs.push_str(", ");
        }
        let _ = write!(
            divs,
            "{{\"kind\": {}, \"config\": {}, \"detail\": {}}}",
            json_str(&d.kind.to_string()),
            json_str(&d.config),
            json_str(&d.detail)
        );
    }
    format!(
        "{{\n  \"version\": 1,\n  \"kind\": \"fuzz-oracle-report\",\n  \
         \"campaign_seed\": {},\n  \"program_index\": {},\n  \
         \"program_seed\": {},\n  \"weight_threshold\": {},\n  \
         \"fault_plan\": {},\n  \"divergences\": [{}],\n  \
         \"reproducer\": {{\"original_bytes\": {}, \"reduced_bytes\": {}, \
         \"evals\": {}}}\n}}\n",
        config.seed,
        finding.index,
        finding.program_seed,
        config.weight_threshold,
        json_str_list(&config.fault_specs),
        divs,
        reduced.original_bytes,
        reduced.reduced_bytes,
        reduced.evals
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn clean_campaign_exits_zero_with_all_classes_populated() {
        let o = Options::parse(&strs(&["fuzz", "--seed", "7", "--budget", "4"])).unwrap();
        let (code, out) = crate::execute(&o).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("4 programs"), "{out}");
        assert!(out.contains("no divergences"), "{out}");
        // All four classification columns are nonzero.
        for line in out.lines().filter(|l| l.starts_with("; sites:")) {
            assert!(!line.contains(" 0 "), "a class column is zero: {line}");
        }
    }

    /// Replaces every `<digits>ms` token with `<N>ms` so outputs can be
    /// compared across runs with different wall-clock timings.
    fn normalize_ms(s: &str) -> String {
        let pieces: Vec<&str> = s.split("ms").collect();
        let mut outp = String::with_capacity(s.len());
        for (i, piece) in pieces.iter().enumerate() {
            if i > 0 {
                outp.push_str("ms");
            }
            // Only pieces that precede an `ms` separator had digits
            // stripped from a timing token.
            let head = piece.trim_end_matches(|c: char| c.is_ascii_digit());
            if i + 1 < pieces.len() && head.len() < piece.len() {
                outp.push_str(head);
                outp.push_str("<N>");
            } else {
                outp.push_str(piece);
            }
        }
        outp
    }

    #[test]
    fn campaigns_are_deterministic_end_to_end() {
        let o = Options::parse(&strs(&["fuzz", "--seed", "9", "--budget", "3"])).unwrap();
        let (code_a, out_a) = crate::execute(&o).unwrap();
        let (code_b, out_b) = crate::execute(&o).unwrap();
        assert_eq!(code_a, code_b);
        // Only the campaign wall-clock may differ between runs.
        assert_eq!(normalize_ms(&out_a), normalize_ms(&out_b));
    }

    #[test]
    fn injected_fault_writes_repro_and_json_report() {
        let dir = tmp_dir("impactc-fuzz-repro");
        let o = Options::parse(&strs(&[
            "fuzz",
            "--seed",
            "42",
            "--budget",
            "2",
            "--fault",
            "expand:verify",
            "--report-dir",
            &dir,
        ]))
        .unwrap();
        let (code, out) = crate::execute(&o).unwrap();
        assert_eq!(code, EXIT_DIVERGENCE, "{out}");
        assert!(out.contains("incident@"), "{out}");
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            entries.iter().any(|n| n.ends_with(".repro.c")),
            "{entries:?}"
        );
        let json_name = entries
            .iter()
            .find(|n| n.ends_with(".json"))
            .unwrap_or_else(|| panic!("no JSON report in {entries:?}"));
        let json = std::fs::read_to_string(std::path::Path::new(&dir).join(json_name)).unwrap();
        assert!(json.contains("\"fuzz-oracle-report\""), "{json}");
        assert!(json.contains("\"campaign_seed\": 42"), "{json}");
        assert!(json.contains("expand:verify"), "{json}");
        // The shrunken reproducer still reproduces by construction; it
        // must also still be a compilable program (shrink validates every
        // candidate against the oracle, which compiles first).
        let repro = entries.iter().find(|n| n.ends_with(".repro.c")).unwrap();
        let src = std::fs::read_to_string(std::path::Path::new(&dir).join(repro)).unwrap();
        assert!(src.contains("main"), "{src}");
    }

    #[test]
    fn fuzz_budget_must_be_a_whole_count() {
        let o = Options::parse(&strs(&["fuzz", "--budget", "1.5"])).unwrap();
        let err = run_fuzz(&o).unwrap_err();
        assert!(err.contains("program count"), "{err}");
    }

    #[test]
    fn bad_fault_specs_fail_via_the_shared_path() {
        let o = Options::parse(&strs(&["fuzz", "--fault", "nocolon"])).unwrap();
        let err = run_fuzz(&o).unwrap_err();
        assert!(err.contains("--fault"), "{err}");
    }

    #[test]
    fn fuzz_rejects_positionals() {
        let o = Options::parse(&strs(&["fuzz", "x.c"])).unwrap();
        assert!(run_fuzz(&o).is_err());
    }
}
