//! Crash-consistent campaign journal: a checkpointed, resumable record of
//! `impactc batch` and `impactc fuzz` campaigns.
//!
//! PR 2 and PR 3 made campaigns resilient *inside* a process; this module
//! makes them survive the process dying. The journal is an append-only,
//! checksummed, schema-versioned write-ahead log of campaign events:
//!
//! | event             | meaning                                            |
//! |-------------------|----------------------------------------------------|
//! | `campaign-start`  | campaign opened; carries the config fingerprint    |
//! | `campaign-resume` | a resume re-attached to an existing journal        |
//! | `unit-start`      | a unit/program attempt began (in-flight marker)    |
//! | `unit-done`       | a unit finished; carries everything the summary row |
//! |                   | and report reconstruction need                     |
//! | `finding`         | the fuzz oracle flagged a diverging program        |
//! | `campaign-end`    | the campaign summary was produced                  |
//!
//! **Durability discipline.** Every record is one line, `CRC SEQ BODY`,
//! where `CRC` is FNV-1a 64 over `SEQ BODY` and `SEQ` is a dense record
//! counter. Appends go straight to the file descriptor and are fsync'd
//! before the campaign proceeds, and `unit-done` is only appended *after*
//! the unit's report artifacts were atomically published — so a record's
//! presence implies its work (and its files) are durable.
//!
//! **Replay rules.** On `--resume`, the journal is scanned front to back:
//! a checksum/sequence failure on the *last* line is a torn tail — the
//! expected shape of a crash mid-append — and is truncated away; the same
//! failure with valid records after it is corruption and refuses to load.
//! Units with a `unit-done` record are *skipped* and their summary rows
//! (plus `; crash report:` lines) are reconstructed from the record;
//! units with only a `unit-start` were in flight and re-run from scratch.
//! Report emission is idempotent (stable names, atomic replace), so
//! re-running an in-flight unit converges on the same artifact set.
//!
//! **Fingerprinting.** `campaign-start` records an FNV-1a fingerprint of
//! the campaign configuration (command, unit list or seed/budget, every
//! behavior-affecting flag; `journal:*` fault specs excluded so a
//! kill-injection run and its resume fingerprint identically). Resuming
//! under a different fingerprint is refused unless `--force-resume`.
//!
//! **Kill injection.** [`Journal::append`] evaluates three fault points
//! in order — `journal:crash` (abort before the write), `journal:torn`
//! (write half the record, then abort), `journal:crash-after` (abort
//! after the fsync) — so the crash→resume matrix test can kill a campaign
//! at every event class and prove recovery is exact.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use impact_vm::{fnv1a64, FaultPlan};

use crate::report::{atomic_write_in, STAGING_DIR};
use crate::Options;

/// First line of every journal file; bumped on incompatible changes.
pub const JOURNAL_HEADER: &str = "impact-journal v1";

/// Manifest file written into `--report-dir` so directory reuse across
/// different campaigns is detected (see [`prepare_report_dir`]).
pub const MANIFEST_NAME: &str = "campaign.manifest";

/// Everything a `unit-done` record carries: enough to rebuild the unit's
/// summary row, its `; crash report:` line, and (for fuzz) its class
/// totals without re-running the unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitRecord {
    /// Unit name (batch) or `p<index>` (fuzz).
    pub unit: String,
    /// `ok` / `quarantined` (batch) or `checked` (fuzz).
    pub status: String,
    /// Attempts as displayed in the batch summary table.
    pub attempts: u64,
    /// Failure signature, `-` for none.
    pub signature: String,
    /// Path of the published crash report, `-` for none.
    pub report: String,
    /// Campaign-specific counters (fuzz packs its per-program class
    /// totals, skipped flag, and diverged flag here; batch leaves it
    /// empty).
    pub counts: Vec<u64>,
}

/// One journal event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Campaign opened under `kind` (`batch`/`fuzz`) with `fingerprint`.
    CampaignStart {
        /// The subcommand that owns the journal.
        kind: String,
        /// [`campaign_fingerprint`] of the flags in force.
        fingerprint: u64,
    },
    /// A `--resume` re-attached to the journal.
    CampaignResume {
        /// Fingerprint of the resuming invocation.
        fingerprint: u64,
    },
    /// A unit attempt began.
    UnitStart {
        /// Unit name.
        unit: String,
    },
    /// A unit completed (its artifacts are already durable).
    UnitDone(UnitRecord),
    /// The fuzz oracle emitted a finding for `id`.
    Finding {
        /// Finding id (`p<index>`).
        id: String,
    },
    /// The campaign produced its final summary.
    CampaignEnd {
        /// Units that succeeded (batch) / programs checked (fuzz).
        ok: u64,
        /// Units quarantined (batch) / findings (fuzz).
        failed: u64,
    },
}

// ----- record encode/decode ------------------------------------------------

/// Percent-escapes a token so it survives the space-separated record
/// format: `%`, whitespace, control bytes, and all non-ASCII bytes become
/// `%XX` (record lines are therefore pure printable ASCII).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' => {
                let _ = write!(out, "%{b:02x}");
            }
            0x21..=0x7e => out.push(b as char),
            _ => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in `{s}`"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in `{s}`"))?;
            out.push(
                u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape `%{hex}` in `{s}`"))?,
            );
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("non-UTF-8 escape payload in `{s}`"))
}

/// Encodes an event body (everything after the sequence number).
fn encode_body(ev: &Event) -> String {
    match ev {
        Event::CampaignStart { kind, fingerprint } => {
            format!("campaign-start {} {fingerprint:016x}", escape(kind))
        }
        Event::CampaignResume { fingerprint } => {
            format!("campaign-resume {fingerprint:016x}")
        }
        Event::UnitStart { unit } => format!("unit-start {}", escape(unit)),
        Event::UnitDone(r) => {
            let mut s = format!(
                "unit-done {} {} {} {} {}",
                escape(&r.unit),
                escape(&r.status),
                r.attempts,
                escape(&r.signature),
                escape(&r.report)
            );
            for c in &r.counts {
                let _ = write!(s, " {c}");
            }
            s
        }
        Event::Finding { id } => format!("finding {}", escape(id)),
        Event::CampaignEnd { ok, failed } => format!("campaign-end {ok} {failed}"),
    }
}

/// Encodes one full journal line (with CRC, sequence number, and newline).
pub fn encode_record(seq: u64, ev: &Event) -> String {
    let body = format!("{seq} {}", encode_body(ev));
    format!("{:016x} {body}\n", fnv1a64(body.as_bytes()))
}

/// Decodes one journal line (without its newline) into `(seq, event)`.
///
/// # Errors
///
/// Returns a message on any checksum, framing, or field error.
pub fn decode_record(line: &str) -> Result<(u64, Event), String> {
    let (crc_hex, body) = line
        .split_once(' ')
        .ok_or_else(|| "record has no checksum field".to_string())?;
    let crc = u64::from_str_radix(crc_hex, 16).map_err(|_| format!("bad CRC `{crc_hex}`"))?;
    if fnv1a64(body.as_bytes()) != crc {
        return Err("record checksum mismatch".to_string());
    }
    let mut tok = body.split(' ');
    let seq: u64 = tok
        .next()
        .ok_or("missing sequence number")?
        .parse()
        .map_err(|_| "bad sequence number".to_string())?;
    let kind = tok.next().ok_or("missing event kind")?;
    let mut next = |what: &str| -> Result<&str, String> {
        tok.next().ok_or_else(|| format!("missing {what} field"))
    };
    let ev = match kind {
        "campaign-start" => {
            let k = unescape(next("kind")?)?;
            let fp = u64::from_str_radix(next("fingerprint")?, 16)
                .map_err(|_| "bad fingerprint".to_string())?;
            Event::CampaignStart {
                kind: k,
                fingerprint: fp,
            }
        }
        "campaign-resume" => Event::CampaignResume {
            fingerprint: u64::from_str_radix(next("fingerprint")?, 16)
                .map_err(|_| "bad fingerprint".to_string())?,
        },
        "unit-start" => Event::UnitStart {
            unit: unescape(next("unit")?)?,
        },
        "unit-done" => {
            let unit = unescape(next("unit")?)?;
            let status = unescape(next("status")?)?;
            let attempts = next("attempts")?
                .parse()
                .map_err(|_| "bad attempts".to_string())?;
            let signature = unescape(next("signature")?)?;
            let report = unescape(next("report")?)?;
            let counts = tok
                .map(|t| t.parse::<u64>().map_err(|_| format!("bad count `{t}`")))
                .collect::<Result<Vec<_>, _>>()?;
            Event::UnitDone(UnitRecord {
                unit,
                status,
                attempts,
                signature,
                report,
                counts,
            })
        }
        "finding" => Event::Finding {
            id: unescape(next("id")?)?,
        },
        "campaign-end" => Event::CampaignEnd {
            ok: next("ok")?.parse().map_err(|_| "bad count".to_string())?,
            failed: next("failed")?
                .parse()
                .map_err(|_| "bad count".to_string())?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok((seq, ev))
}

// ----- replay --------------------------------------------------------------

/// The state recovered from a journal file.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Fingerprint from the `campaign-start` record, when one survived.
    pub fingerprint: Option<u64>,
    /// Completed units by name, latest record wins.
    pub completed: HashMap<String, UnitRecord>,
    /// Number of valid records (the next sequence number to append).
    pub records: u64,
    /// Byte length of the valid prefix (repair truncates to this).
    pub valid_bytes: u64,
    /// Bytes of torn tail discarded (0 for a clean journal).
    pub torn_bytes: u64,
    /// Whether a `campaign-end` record is present.
    pub ended: bool,
}

/// Scans journal `text` and recovers the campaign state, truncating (in
/// the returned offsets, not on disk) a torn tail.
///
/// # Errors
///
/// Refuses journals whose header is wrong or whose *interior* records are
/// corrupt — only the final record may be torn.
pub fn replay(text: &str) -> Result<Replay, String> {
    // Split into (offset, line, terminated) triples by hand: a torn tail
    // is exactly a final line without its newline (or one that fails to
    // decode), and offsets are needed for the repair truncation.
    let mut lines: Vec<(usize, &str, bool)> = Vec::new();
    let mut pos = 0;
    while pos < text.len() {
        match text[pos..].find('\n') {
            Some(i) => {
                lines.push((pos, &text[pos..pos + i], true));
                pos += i + 1;
            }
            None => {
                lines.push((pos, &text[pos..], false));
                pos = text.len();
            }
        }
    }
    let mut rep = Replay::default();
    if lines.is_empty() {
        return Ok(rep);
    }
    let (_, header, header_complete) = lines[0];
    if !header_complete || header != JOURNAL_HEADER {
        if lines.len() == 1 {
            // The create itself was interrupted: nothing usable, treat
            // the whole file as a torn tail.
            rep.torn_bytes = text.len() as u64;
            return Ok(rep);
        }
        return Err(format!(
            "`{header}` is not an {JOURNAL_HEADER} journal header"
        ));
    }
    rep.valid_bytes = (lines[0].0 + header.len() + 1) as u64;
    for (i, &(offset, line, complete)) in lines.iter().enumerate().skip(1) {
        let last = i + 1 == lines.len();
        let decoded = if complete {
            decode_record(line)
        } else {
            Err("unterminated record".to_string())
        };
        match decoded {
            Ok((seq, ev)) if seq == rep.records => {
                rep.records += 1;
                rep.valid_bytes = (offset + line.len() + 1) as u64;
                match ev {
                    Event::CampaignStart { fingerprint, .. } => {
                        rep.fingerprint.get_or_insert(fingerprint);
                    }
                    Event::CampaignResume { .. } | Event::UnitStart { .. } => {}
                    Event::UnitDone(r) => {
                        rep.completed.insert(r.unit.clone(), r);
                    }
                    Event::Finding { .. } => {}
                    Event::CampaignEnd { .. } => rep.ended = true,
                }
            }
            Ok((seq, _)) if last => {
                // A stale sequence number on the final line is treated as
                // a torn/duplicated tail and discarded.
                let _ = seq;
                rep.torn_bytes = (text.len() as u64) - rep.valid_bytes;
                break;
            }
            Ok((seq, _)) => {
                return Err(format!(
                    "journal record {i} has sequence {seq}, expected {}: \
                     the journal is corrupt (not a torn tail)",
                    rep.records
                ));
            }
            Err(e) if last => {
                let _ = e;
                rep.torn_bytes = (text.len() as u64) - rep.valid_bytes;
                break;
            }
            Err(e) => {
                return Err(format!(
                    "journal record {i} is corrupt ({e}) but later records \
                     are intact: refusing to replay a damaged interior"
                ));
            }
        }
    }
    Ok(rep)
}

// ----- the writer ----------------------------------------------------------

/// An open, append-only campaign journal.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    seq: u64,
    fault: FaultPlan,
}

impl Journal {
    /// Creates a fresh journal at `path` and records `campaign-start`.
    ///
    /// # Errors
    ///
    /// Refuses to overwrite an existing journal (resume it or pick a
    /// fresh path), and reports filesystem errors.
    pub fn create(
        path: &Path,
        kind: &str,
        fingerprint: u64,
        fault: FaultPlan,
    ) -> Result<Journal, String> {
        if path.exists() {
            return Err(format!(
                "journal `{}` already exists; pass --resume to continue that \
                 campaign or point --journal at a fresh path",
                path.display()
            ));
        }
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create journal `{}`: {e}", path.display()))?;
        file.write_all(format!("{JOURNAL_HEADER}\n").as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("cannot write journal `{}`: {e}", path.display()))?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
            seq: 0,
            fault,
        };
        j.append(&Event::CampaignStart {
            kind: kind.to_string(),
            fingerprint,
        })?;
        Ok(j)
    }

    /// Re-opens an existing journal for `--resume`: replays it, validates
    /// the fingerprint, truncates any torn tail on disk, and records
    /// `campaign-resume` (or a fresh `campaign-start` when the previous
    /// run died before its start record survived).
    ///
    /// # Errors
    ///
    /// Refuses a missing journal, a corrupt interior, and — without
    /// `force` — a fingerprint mismatch.
    pub fn resume(
        path: &Path,
        kind: &str,
        fingerprint: u64,
        force: bool,
        fault: FaultPlan,
    ) -> Result<(Journal, Replay), String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot resume: journal `{}`: {e}", path.display()))?;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let rep = replay(&text).map_err(|e| format!("cannot resume `{}`: {e}", path.display()))?;
        if let Some(fp) = rep.fingerprint {
            if fp != fingerprint && !force {
                return Err(format!(
                    "journal `{}` records campaign fingerprint {fp:016x}, but the \
                     current flags fingerprint to {fingerprint:016x}; refusing to \
                     resume a campaign under different flags (rerun with the \
                     original flags, or pass --force-resume to override)",
                    path.display()
                ));
            }
        }
        if rep.torn_bytes > 0 {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| format!("cannot repair journal `{}`: {e}", path.display()))?;
            f.set_len(rep.valid_bytes)
                .and_then(|()| f.sync_data())
                .map_err(|e| format!("cannot repair journal `{}`: {e}", path.display()))?;
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal `{}`: {e}", path.display()))?;
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
            seq: rep.records,
            fault,
        };
        if rep.valid_bytes == 0 {
            // Even the header was lost: restart the file from scratch.
            j.file
                .write_all(format!("{JOURNAL_HEADER}\n").as_bytes())
                .and_then(|()| j.file.sync_data())
                .map_err(|e| format!("cannot write journal `{}`: {e}", path.display()))?;
        }
        if rep.fingerprint.is_none() {
            j.append(&Event::CampaignStart {
                kind: kind.to_string(),
                fingerprint,
            })?;
        } else {
            j.append(&Event::CampaignResume { fingerprint })?;
        }
        Ok((j, rep))
    }

    /// Appends one event with write→fsync discipline, evaluating the
    /// `journal:crash` / `journal:torn` / `journal:crash-after` kill
    /// points (which abort the whole process — that is their job).
    ///
    /// # Errors
    ///
    /// Returns a message on filesystem errors.
    pub fn append(&mut self, ev: &Event) -> Result<(), String> {
        if self.fault.should_fail("journal:crash") {
            std::process::abort();
        }
        let line = encode_record(self.seq, ev);
        if self.fault.should_fail("journal:torn") {
            // Persist a deliberately torn record: a strict prefix of the
            // line, synced so the tail is really on disk, then die.
            let cut = line.len() / 2;
            let _ = self.file.write_all(&line.as_bytes()[..cut]);
            let _ = self.file.sync_data();
            std::process::abort();
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("cannot append to journal `{}`: {e}", self.path.display()))?;
        if self.fault.should_fail("journal:crash-after") {
            std::process::abort();
        }
        self.seq += 1;
        Ok(())
    }
}

// ----- fingerprints and flag plumbing --------------------------------------

/// True for fault specs that target the journal itself: they are armed on
/// the *driver's* plan only and must not leak into per-unit pipelines,
/// oracle configs, or the campaign fingerprint (a kill-injection run and
/// its resume must fingerprint identically).
pub fn is_journal_fault(spec: &str) -> bool {
    spec.starts_with("journal:")
}

/// Builds the fault plan driving the journal kill points from the
/// `journal:*` subset of `--fault` specs.
///
/// # Errors
///
/// Returns a message naming the malformed spec.
pub fn journal_fault_plan(opts: &Options) -> Result<FaultPlan, String> {
    let plan = FaultPlan::new();
    for spec in opts.faults.iter().filter(|s| is_journal_fault(s)) {
        plan.arm_spec(spec)
            .map_err(|e| format!("bad --fault `{spec}`: {e}"))?;
    }
    Ok(plan)
}

/// The campaign's config fingerprint: FNV-1a 64 over a canonical dump of
/// every behavior-affecting flag plus the unit list (batch) — the
/// identity `--resume` checks before trusting a journal, and the value
/// recorded in the report-dir manifest.
///
/// Telemetry flags (`--explain`, `--decisions-out`, `--trace-out`,
/// `--metrics-out`) are deliberately *excluded* (by omission from the
/// dump): observability never changes pipeline behavior, so an
/// instrumented rerun may resume an uninstrumented campaign's journal
/// and vice versa.
///
/// Service knobs (`--jobs`, `--cache-dir`, `--queue-depth`) are excluded
/// for the same reason: they tune *how* the campaign executes, never
/// *what* it computes — parallel, cached, and serial runs of the same
/// campaign are observationally identical by construction, so a serial
/// journal may be resumed under `--jobs 4` (and vice versa).
pub fn campaign_fingerprint(kind: &str, opts: &Options, units: &[String]) -> u64 {
    let mut s = String::new();
    let _ = writeln!(s, "kind {kind}");
    for u in units {
        let _ = writeln!(s, "unit {}", escape(u));
    }
    for (name, path) in &opts.inputs {
        let _ = writeln!(s, "input {}={}", escape(name), escape(path));
    }
    for a in &opts.args {
        let _ = writeln!(s, "arg {}", escape(a));
    }
    let mut faults: Vec<&String> = opts
        .faults
        .iter()
        .filter(|f| !is_journal_fault(f))
        .collect();
    faults.sort();
    for f in faults {
        let _ = writeln!(s, "fault {}", escape(f));
    }
    let _ = writeln!(s, "threshold {:?}", opts.threshold);
    let _ = writeln!(s, "budget {:?}", opts.budget);
    let _ = writeln!(s, "stack_bound {:?}", opts.stack_bound);
    let _ = writeln!(s, "linearize {:?}", opts.linearization);
    let _ = writeln!(s, "promote_indirect {}", opts.promote_indirect);
    let _ = writeln!(s, "opt {}", opts.opt);
    let _ = writeln!(s, "fuel {:?}", opts.fuel);
    let _ = writeln!(s, "mem_limit {:?}", opts.mem_limit);
    let _ = writeln!(s, "time_limit_ms {:?}", opts.time_limit_ms);
    let _ = writeln!(s, "retries {:?}", opts.retries);
    let _ = writeln!(s, "retry_base_ms {:?}", opts.retry_base_ms);
    let _ = writeln!(s, "report_dir {:?}", opts.report_dir);
    let _ = writeln!(s, "fault_unit {:?}", opts.fault_unit);
    let _ = writeln!(s, "workloads {}", opts.workloads);
    let _ = writeln!(s, "seed {:?}", opts.seed);
    fnv1a64(s.as_bytes())
}

/// Completed units recovered by a resume, keyed by unit name.
pub type CompletedUnits = HashMap<String, UnitRecord>;

/// Opens the campaign journal named by the flags: `None` when `--journal`
/// was not given, otherwise the journal plus the map of already-completed
/// units (empty unless `--resume`). Emits `; journal:` status lines into
/// `out` — the one output prefix excluded from the byte-identical resume
/// contract.
///
/// # Errors
///
/// Returns flag-validation and journal errors (missing journal on
/// `--resume`, fingerprint mismatch without `--force-resume`, corrupt
/// interior records).
pub fn open_for(
    opts: &Options,
    kind: &str,
    fingerprint: u64,
    out: &mut String,
) -> Result<Option<(Journal, CompletedUnits)>, String> {
    let Some(path) = opts.journal.as_deref() else {
        if opts.resume {
            return Err("--resume requires --journal <path>".to_string());
        }
        return Ok(None);
    };
    let path = Path::new(path);
    let fault = journal_fault_plan(opts)?;
    if opts.resume {
        let (j, rep) = Journal::resume(path, kind, fingerprint, opts.force_resume, fault)?;
        let _ = writeln!(
            out,
            "; journal: resumed `{}`: {} unit(s) already complete{}",
            path.display(),
            rep.completed.len(),
            if rep.torn_bytes > 0 {
                format!(" (truncated a {}-byte torn tail)", rep.torn_bytes)
            } else {
                String::new()
            }
        );
        Ok(Some((j, rep.completed)))
    } else {
        let j = Journal::create(path, kind, fingerprint, fault)?;
        let _ = writeln!(out, "; journal: recording to `{}`", path.display());
        Ok(Some((j, HashMap::new())))
    }
}

// ----- report-dir manifest --------------------------------------------------

/// Prepares a `--report-dir` for a campaign: creates it, clears stale
/// staging leftovers from a previous crash, and enforces the reuse
/// contract via an atomically-written `campaign.manifest` — a fresh (or
/// resumed) campaign whose fingerprint differs from the directory's
/// recorded one is refused unless `force`.
///
/// # Errors
///
/// Returns the collision diagnostic or a filesystem error.
pub fn prepare_report_dir(
    dir: &Path,
    kind: &str,
    fingerprint: u64,
    force: bool,
) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create report dir `{}`: {e}", dir.display()))?;
    let manifest = dir.join(MANIFEST_NAME);
    if manifest.exists() && !force {
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("cannot read `{}`: {e}", manifest.display()))?;
        let recorded = text
            .lines()
            .find_map(|l| l.strip_prefix("fingerprint "))
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok());
        match recorded {
            Some(fp) if fp == fingerprint => {}
            Some(fp) => {
                return Err(format!(
                    "report dir `{}` already holds artifacts of a different campaign \
                     (its manifest records fingerprint {fp:016x}, this invocation \
                     fingerprints to {fingerprint:016x}); use a fresh directory, rerun \
                     with the original flags, or pass --force-resume to take it over",
                    dir.display()
                ));
            }
            None => {
                return Err(format!(
                    "report dir `{}` contains an unreadable `{MANIFEST_NAME}`; use a \
                     fresh directory or pass --force-resume to take it over",
                    dir.display()
                ));
            }
        }
    }
    // Clear staging leftovers a crash may have stranded mid-write.
    let staging = dir.join(STAGING_DIR);
    if staging.is_dir() {
        let _ = std::fs::remove_dir_all(&staging);
    }
    atomic_write_in(
        dir,
        MANIFEST_NAME,
        format!("impact-manifest v1\nkind {kind}\nfingerprint {fingerprint:016x}\n").as_bytes(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("impactc-journal-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::CampaignStart {
                kind: "batch".into(),
                fingerprint: 0xdead_beef_cafe_f00d,
            },
            Event::UnitStart {
                unit: "a b.c".into(),
            },
            Event::UnitDone(UnitRecord {
                unit: "a b.c".into(),
                status: "ok".into(),
                attempts: 1,
                signature: "-".into(),
                report: "-".into(),
                counts: vec![],
            }),
            Event::UnitStart { unit: "p1".into() },
            Event::Finding { id: "p1".into() },
            Event::UnitDone(UnitRecord {
                unit: "p1".into(),
                status: "checked".into(),
                attempts: 1,
                signature: "behavior@inline-default".into(),
                report: "r/p1.json".into(),
                counts: vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 1],
            }),
            Event::CampaignEnd { ok: 2, failed: 1 },
        ]
    }

    fn journal_text(events: &[Event]) -> String {
        let mut s = format!("{JOURNAL_HEADER}\n");
        for (i, ev) in events.iter().enumerate() {
            s.push_str(&encode_record(i as u64, ev));
        }
        s
    }

    #[test]
    fn records_round_trip() {
        for (i, ev) in sample_events().iter().enumerate() {
            let line = encode_record(i as u64, ev);
            let (seq, back) = decode_record(line.trim_end()).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn replay_recovers_completed_units_and_end_marker() {
        let rep = replay(&journal_text(&sample_events())).unwrap();
        assert_eq!(rep.records, 7);
        assert_eq!(rep.torn_bytes, 0);
        assert!(rep.ended);
        assert_eq!(rep.fingerprint, Some(0xdead_beef_cafe_f00d));
        assert_eq!(rep.completed.len(), 2);
        assert_eq!(rep.completed["a b.c"].status, "ok");
        assert_eq!(rep.completed["p1"].counts.len(), 10);
    }

    #[test]
    fn torn_tail_is_truncated_but_interior_corruption_refuses() {
        let text = journal_text(&sample_events());
        // Any strict prefix that cuts into the last record replays to the
        // records before it.
        let last_start = text
            .rfind("\n")
            .map(|_| {
                let body = text.trim_end_matches('\n');
                body.rfind('\n').unwrap() + 1
            })
            .unwrap();
        for cut in [last_start + 1, last_start + 10, text.len() - 1] {
            let rep = replay(&text[..cut]).unwrap();
            assert_eq!(rep.records, 6, "cut at {cut}");
            assert!(!rep.ended);
            assert!(rep.torn_bytes > 0);
            assert_eq!(rep.valid_bytes as usize, last_start);
        }
        // Flipping a byte in an interior record is corruption, not a tear.
        let mut corrupt = text.clone().into_bytes();
        corrupt[JOURNAL_HEADER.len() + 5] ^= 0x01;
        let err = replay(&String::from_utf8(corrupt).unwrap()).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
    }

    #[test]
    fn journal_files_append_resume_and_repair() {
        let dir = tmp_dir("file");
        let path = dir.join("c.journal");
        let mut j = Journal::create(&path, "batch", 7, FaultPlan::new()).unwrap();
        j.append(&Event::UnitStart { unit: "u.c".into() }).unwrap();
        j.append(&Event::UnitDone(UnitRecord {
            unit: "u.c".into(),
            status: "ok".into(),
            attempts: 1,
            signature: "-".into(),
            report: "-".into(),
            counts: vec![],
        }))
        .unwrap();
        drop(j);
        // Fresh create refuses to clobber.
        let err = Journal::create(&path, "batch", 7, FaultPlan::new()).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        // Simulate a torn append, then resume: the tail is repaired away.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        use std::io::Write as _;
        f.write_all(b"0123 torn garb").unwrap();
        drop(f);
        let (mut j, rep) = Journal::resume(&path, "batch", 7, false, FaultPlan::new()).unwrap();
        assert_eq!(rep.completed.len(), 1);
        assert!(rep.torn_bytes > 0);
        j.append(&Event::CampaignEnd { ok: 1, failed: 0 }).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let rep = replay(&text).unwrap();
        assert!(rep.ended);
        assert_eq!(rep.torn_bytes, 0, "repair left a clean journal: {text}");
        assert!(std::fs::metadata(&path).unwrap().len() > clean_len);
    }

    #[test]
    fn resume_refuses_fingerprint_mismatch_without_force() {
        let dir = tmp_dir("fp");
        let path = dir.join("c.journal");
        drop(Journal::create(&path, "batch", 0xaaaa, FaultPlan::new()).unwrap());
        let err = Journal::resume(&path, "batch", 0xbbbb, false, FaultPlan::new()).unwrap_err();
        assert!(err.contains("--force-resume"), "{err}");
        assert!(err.contains("000000000000aaaa"), "{err}");
        // --force-resume overrides.
        let (_, rep) = Journal::resume(&path, "batch", 0xbbbb, true, FaultPlan::new()).unwrap();
        assert_eq!(rep.fingerprint, Some(0xaaaa));
        // A matching fingerprint needs no force.
        assert!(Journal::resume(&path, "batch", 0xaaaa, false, FaultPlan::new()).is_ok());
    }

    #[test]
    fn fingerprint_ignores_journal_faults_but_tracks_real_flags() {
        let base = Options::parse(&strs(&["batch", "a.c", "--threshold", "5"])).unwrap();
        let with_kill = Options::parse(&strs(&[
            "batch",
            "a.c",
            "--threshold",
            "5",
            "--fault",
            "journal:crash=3",
        ]))
        .unwrap();
        let units = strs(&["a.c"]);
        assert_eq!(
            campaign_fingerprint("batch", &base, &units),
            campaign_fingerprint("batch", &with_kill, &units),
            "journal kill faults must not change the campaign identity"
        );
        let other = Options::parse(&strs(&["batch", "a.c", "--threshold", "6"])).unwrap();
        assert_ne!(
            campaign_fingerprint("batch", &base, &units),
            campaign_fingerprint("batch", &other, &units)
        );
        assert_ne!(
            campaign_fingerprint("batch", &base, &units),
            campaign_fingerprint("fuzz", &base, &units)
        );
    }

    #[test]
    fn fingerprint_ignores_telemetry_flags() {
        let base = Options::parse(&strs(&["batch", "a.c", "--threshold", "5"])).unwrap();
        let instrumented = Options::parse(&strs(&[
            "batch",
            "a.c",
            "--threshold",
            "5",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        let units = strs(&["a.c"]);
        assert_eq!(
            campaign_fingerprint("batch", &base, &units),
            campaign_fingerprint("batch", &instrumented, &units),
            "telemetry flags must not change the campaign identity"
        );
        let mut audited = base.clone();
        audited.explain = true;
        audited.decisions_out = Some("decisions.json".to_string());
        assert_eq!(
            campaign_fingerprint("batch", &base, &units),
            campaign_fingerprint("batch", &audited, &units),
            "audit flags must not change the campaign identity"
        );
    }

    #[test]
    fn fingerprint_ignores_service_knobs() {
        let base = Options::parse(&strs(&["batch", "a.c", "--threshold", "5"])).unwrap();
        let tuned = Options::parse(&strs(&[
            "batch",
            "a.c",
            "--threshold",
            "5",
            "--jobs",
            "4",
            "--cache-dir",
            "artifact-cache",
        ]))
        .unwrap();
        let units = strs(&["a.c"]);
        assert_eq!(
            campaign_fingerprint("batch", &base, &units),
            campaign_fingerprint("batch", &tuned, &units),
            "service knobs tune execution, not campaign identity: a \
             serial journal must resume under --jobs N and vice versa"
        );
    }

    #[test]
    fn fingerprint_ignores_engine_selection() {
        // The two engines are behaviorally identical (proven by the
        // parity suite), so switching engines mid-campaign must resume
        // the same journal rather than start a new campaign.
        let base = Options::parse(&strs(&["batch", "a.c", "--threshold", "5"])).unwrap();
        let interp = Options::parse(&strs(&[
            "batch",
            "a.c",
            "--threshold",
            "5",
            "--engine",
            "interp",
        ]))
        .unwrap();
        let simulated = Options::parse(&strs(&[
            "batch",
            "a.c",
            "--threshold",
            "5",
            "--engine",
            "bytecode",
            "--icache",
        ]))
        .unwrap();
        let units = strs(&["a.c"]);
        let k = campaign_fingerprint("batch", &base, &units);
        assert_eq!(
            k,
            campaign_fingerprint("batch", &interp, &units),
            "engine choice must not change the campaign identity"
        );
        assert_eq!(
            k,
            campaign_fingerprint("batch", &simulated, &units),
            "icache simulation must not change the campaign identity"
        );
    }

    #[test]
    fn report_dir_manifest_detects_collisions() {
        let dir = tmp_dir("manifest");
        prepare_report_dir(&dir, "batch", 0x1111, false).unwrap();
        // Same campaign: fine (idempotent).
        prepare_report_dir(&dir, "batch", 0x1111, false).unwrap();
        // Different campaign: refused with the fingerprints named.
        let err = prepare_report_dir(&dir, "batch", 0x2222, false).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        assert!(err.contains("0000000000001111"), "{err}");
        // Force takes the directory over and rewrites the manifest.
        prepare_report_dir(&dir, "batch", 0x2222, true).unwrap();
        prepare_report_dir(&dir, "batch", 0x2222, false).unwrap();
    }

    #[test]
    fn open_for_validates_flag_combinations() {
        let mut out = String::new();
        let o = Options::parse(&strs(&["batch", "a.c", "--resume"])).unwrap();
        let err = open_for(&o, "batch", 1, &mut out).unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        let o = Options::parse(&strs(&["batch", "a.c"])).unwrap();
        assert!(open_for(&o, "batch", 1, &mut out).unwrap().is_none());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_unit_record() -> impl Strategy<Value = UnitRecord> {
        (
            any::<String>(),
            any::<String>(),
            any::<u64>(),
            any::<String>(),
            any::<String>(),
            proptest::collection::vec(any::<u64>(), 0..12),
        )
            .prop_map(
                |(unit, status, attempts, signature, report, counts)| UnitRecord {
                    unit,
                    status,
                    attempts,
                    signature,
                    report,
                    counts,
                },
            )
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        prop_oneof![
            (any::<String>(), any::<u64>())
                .prop_map(|(kind, fingerprint)| { Event::CampaignStart { kind, fingerprint } }),
            any::<u64>().prop_map(|fingerprint| Event::CampaignResume { fingerprint }),
            any::<String>().prop_map(|unit| Event::UnitStart { unit }),
            arb_unit_record().prop_map(Event::UnitDone),
            any::<String>().prop_map(|id| Event::Finding { id }),
            (any::<u64>(), any::<u64>()).prop_map(|(ok, failed)| Event::CampaignEnd { ok, failed }),
        ]
    }

    proptest! {
        #[test]
        fn record_encode_decode_round_trips(seq in any::<u64>(), ev in arb_event()) {
            let line = encode_record(seq, &ev);
            prop_assert!(line.ends_with('\n'));
            // One record is exactly one line: no interior newline survives
            // escaping.
            prop_assert_eq!(line.matches('\n').count(), 1);
            let (seq2, ev2) = decode_record(line.trim_end_matches('\n')).unwrap();
            prop_assert_eq!(seq2, seq);
            prop_assert_eq!(ev2, ev);
        }

        #[test]
        fn torn_tails_replay_to_the_valid_prefix(
            events in proptest::collection::vec(arb_event(), 1..8),
            cut_back in 1usize..64,
        ) {
            let mut text = format!("{JOURNAL_HEADER}\n");
            let mut offsets = vec![text.len()];
            for (i, ev) in events.iter().enumerate() {
                text.push_str(&encode_record(i as u64, ev));
                offsets.push(text.len());
            }
            // Cut somewhere inside the final record.
            let last_start = offsets[offsets.len() - 2];
            let cut = (text.len() - (cut_back % (text.len() - last_start)).max(1)).max(last_start);
            if cut == last_start {
                // Clean cut at a record boundary: full prefix, no tear.
                let rep = replay(&text[..cut]).unwrap();
                prop_assert_eq!(rep.records, events.len() as u64 - 1);
                prop_assert_eq!(rep.torn_bytes, 0);
            } else {
                let rep = replay(&text[..cut]).unwrap();
                prop_assert_eq!(rep.records, events.len() as u64 - 1);
                prop_assert!(rep.torn_bytes > 0);
                prop_assert_eq!(rep.valid_bytes as usize, last_start);
            }
        }

        #[test]
        fn replay_never_panics_on_arbitrary_text(s in any::<String>()) {
            let _ = replay(&s);
        }
    }
}
