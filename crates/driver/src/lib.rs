//! # impact-driver — the `impactc` command-line pipeline
//!
//! Library backing for the `impactc` binary: argument parsing and the
//! compile → profile → inline → report pipeline over real files, so that
//! the whole flow is unit-testable without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use impact_cfront::{compile, Source};
use impact_callgraph::CallGraph;
use impact_il::{module_to_string, verify_module, Module};
use impact_inline::{inline_module, InlineConfig, Linearization};
use impact_vm::{profile_runs, NamedFile, VmConfig};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Subcommand: `compile`, `run`, `inline`, `callgraph`, or `bench`.
    pub command: String,
    /// Positional arguments (source paths, or a benchmark name for
    /// `bench`).
    pub positional: Vec<String>,
    /// `--input name=path` pairs: files made visible to the program.
    pub inputs: Vec<(String, String)>,
    /// `--arg v` values passed as program arguments.
    pub args: Vec<String>,
    /// `--threshold N` (arc-weight threshold).
    pub threshold: Option<u64>,
    /// `--budget F` (code-growth limit).
    pub budget: Option<f64>,
    /// `--stack-bound N` (bytes).
    pub stack_bound: Option<u64>,
    /// `--linearize node-weight|reverse|random:<seed>|source`.
    pub linearization: Option<String>,
    /// `--promote-indirect` (profile-guided indirect-call promotion,
    /// extension).
    pub promote_indirect: bool,
    /// `--profile-out path`: write the collected profile as text.
    pub profile_out: Option<String>,
    /// `--profile-in path`: reuse a previously written profile instead of
    /// re-running the program.
    pub profile_in: Option<String>,
    /// `--quiet` (suppress IL dumps).
    pub quiet: bool,
}

impl Options {
    /// Parses `argv[1..]`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut it = argv.iter().peekable();
        let command = it.next().cloned().ok_or_else(usage)?;
        let mut opts = Options {
            command,
            positional: Vec::new(),
            inputs: Vec::new(),
            args: Vec::new(),
            threshold: None,
            budget: None,
            stack_bound: None,
            linearization: None,
            promote_indirect: false,
            profile_out: None,
            profile_in: None,
            quiet: false,
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--input" => {
                    let v = it.next().ok_or("--input needs name=path".to_string())?;
                    let (name, path) = v
                        .split_once('=')
                        .ok_or("--input needs name=path".to_string())?;
                    opts.inputs.push((name.to_string(), path.to_string()));
                }
                "--arg" => {
                    let v = it.next().ok_or("--arg needs a value".to_string())?;
                    opts.args.push(v.clone());
                }
                "--threshold" => {
                    let v = it.next().ok_or("--threshold needs a number".to_string())?;
                    opts.threshold = Some(v.parse().map_err(|_| "bad --threshold")?);
                }
                "--budget" => {
                    let v = it.next().ok_or("--budget needs a number".to_string())?;
                    opts.budget = Some(v.parse().map_err(|_| "bad --budget")?);
                }
                "--stack-bound" => {
                    let v = it.next().ok_or("--stack-bound needs a number".to_string())?;
                    opts.stack_bound = Some(v.parse().map_err(|_| "bad --stack-bound")?);
                }
                "--linearize" => {
                    let v = it.next().ok_or("--linearize needs a strategy".to_string())?;
                    opts.linearization = Some(v.clone());
                }
                "--promote-indirect" => opts.promote_indirect = true,
                "--profile-out" => {
                    let v = it.next().ok_or("--profile-out needs a path".to_string())?;
                    opts.profile_out = Some(v.clone());
                }
                "--profile-in" => {
                    let v = it.next().ok_or("--profile-in needs a path".to_string())?;
                    opts.profile_in = Some(v.clone());
                }
                "--quiet" => opts.quiet = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown option `{other}`\n{}", usage()));
                }
                other => opts.positional.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    /// Builds the inline configuration from the flags.
    pub fn inline_config(&self) -> Result<InlineConfig, String> {
        let mut cfg = InlineConfig::default();
        if let Some(t) = self.threshold {
            cfg.weight_threshold = t;
        }
        if let Some(b) = self.budget {
            cfg.code_growth_limit = b;
        }
        if let Some(s) = self.stack_bound {
            cfg.stack_bound = s;
        }
        cfg.promote_indirect = self.promote_indirect;
        if let Some(l) = &self.linearization {
            cfg.linearization = match l.as_str() {
                "node-weight" => Linearization::NodeWeight,
                "reverse" => Linearization::ReverseNodeWeight,
                "source" => Linearization::SourceOrder,
                other => match other.strip_prefix("random:") {
                    Some(seed) => Linearization::Random(
                        seed.parse().map_err(|_| "bad random seed".to_string())?,
                    ),
                    None => return Err(format!("unknown linearization `{other}`")),
                },
            };
        }
        Ok(cfg)
    }
}

/// The usage text.
pub fn usage() -> String {
    "usage: impactc <command> [options]\n\
     \n\
     commands:\n\
     \x20 compile <files.c...>            compile and print the IL\n\
     \x20 run <files.c...>                compile and execute main()\n\
     \x20 inline <files.c...>             profile, inline-expand, report, re-run\n\
     \x20 callgraph <files.c...>          print the weighted call graph (DOT)\n\
     \x20 bench <name>                    run one bundled benchmark end to end\n\
     \n\
     options:\n\
     \x20 --input name=path               make a file visible to the program (repeatable)\n\
     \x20 --arg value                     program argument (repeatable)\n\
     \x20 --threshold N                   arc-weight threshold (default 10)\n\
     \x20 --budget F                      code-growth limit (default 2.0)\n\
     \x20 --stack-bound N                 recursion stack bound in bytes (default 4096)\n\
     \x20 --linearize S                   node-weight | reverse | source | random:<seed>\n\
     \x20 --promote-indirect              promote profile-dominated indirect calls (extension)\n\
     \x20 --profile-out PATH              save the collected profile as text\n\
     \x20 --profile-in PATH               reuse a saved profile instead of re-profiling\n\
     \x20 --quiet                         suppress IL dumps\n"
        .to_string()
}

fn read_sources(paths: &[String]) -> Result<Vec<Source>, String> {
    if paths.is_empty() {
        return Err(format!("no source files given\n{}", usage()));
    }
    paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(p)
                .map(|text| Source::new(p.clone(), text))
                .map_err(|e| format!("cannot read `{p}`: {e}"))
        })
        .collect()
}

fn compile_sources(paths: &[String]) -> Result<Module, String> {
    let sources = read_sources(paths)?;
    let module = compile(&sources).map_err(|e| e.render(&sources))?;
    verify_module(&module).map_err(|es| {
        es.iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    Ok(module)
}

fn load_inputs(pairs: &[(String, String)]) -> Result<Vec<NamedFile>, String> {
    pairs
        .iter()
        .map(|(name, path)| {
            std::fs::read(path)
                .map(|bytes| NamedFile::new(name.clone(), bytes))
                .map_err(|e| format!("cannot read input `{path}`: {e}"))
        })
        .collect()
}

/// Executes a parsed command; returns the process exit code and the text
/// to print.
///
/// # Errors
///
/// Returns a human-readable error message.
pub fn execute(opts: &Options) -> Result<(i32, String), String> {
    let mut out = String::new();
    match opts.command.as_str() {
        "compile" => {
            let module = compile_sources(&opts.positional)?;
            let _ = writeln!(
                out,
                "; {} functions, {} IL instructions",
                module.functions.len(),
                module.total_size()
            );
            if !opts.quiet {
                out.push_str(&module_to_string(&module));
            }
            Ok((0, out))
        }
        "run" => {
            let module = compile_sources(&opts.positional)?;
            let inputs = load_inputs(&opts.inputs)?;
            let result = impact_vm::run(&module, inputs, opts.args.clone(), &VmConfig::default())
                .map_err(|e| e.to_string())?;
            if let Some(path) = &opts.profile_out {
                std::fs::write(path, result.profile.to_text())
                    .map_err(|e| format!("cannot write profile `{path}`: {e}"))?;
            }
            out.push_str(&String::from_utf8_lossy(&result.stdout));
            let _ = writeln!(
                out,
                "; exit {} after {} ILs ({} calls)",
                result.exit_code, result.profile.il_executed, result.profile.calls
            );
            Ok((result.exit_code as i32, out))
        }
        "inline" => {
            let mut module = compile_sources(&opts.positional)?;
            let inputs = load_inputs(&opts.inputs)?;
            let runs = vec![(inputs, opts.args.clone())];
            let profile = match &opts.profile_in {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read profile `{path}`: {e}"))?;
                    impact_vm::Profile::from_text(&text)
                        .map_err(|e| format!("bad profile `{path}`: {e}"))?
                }
                None => {
                    let (p, _) = profile_runs(&module, &runs, &VmConfig::default())
                        .map_err(|e| e.to_string())?;
                    p
                }
            };
            if let Some(path) = &opts.profile_out {
                std::fs::write(path, profile.to_text())
                    .map_err(|e| format!("cannot write profile `{path}`: {e}"))?;
            }
            let cfg = opts.inline_config()?;
            let report = inline_module(&mut module, &profile.averaged(), &cfg);
            verify_module(&module).map_err(|e| format!("{e:?}"))?;
            let totals = report.classification.static_totals();
            let _ = writeln!(
                out,
                "; sites: {} total / {} external / {} pointer / {} unsafe / {} safe",
                totals.total(),
                totals.external,
                totals.pointer,
                totals.r#unsafe,
                totals.safe
            );
            let _ = writeln!(
                out,
                "; expanded {} arcs; code size {} -> {} ({:+.1}%)",
                report.expanded.len(),
                report.size_before,
                report.size_after,
                report.code_increase_percent()
            );
            if !report.removed_functions.is_empty() {
                let _ = writeln!(out, "; removed: {}", report.removed_functions.join(", "));
            }
            if !report.promoted.is_empty() {
                let _ = writeln!(
                    out,
                    "; promoted {} indirect site(s) to guarded direct calls",
                    report.promoted.len()
                );
            }
            let runs2 = runs.clone();
            let (after, _) = profile_runs(&module, &runs2, &VmConfig::default())
                .map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "; dynamic calls {} -> {} ({:.1}% eliminated)",
                profile.calls,
                after.calls,
                if profile.calls == 0 {
                    0.0
                } else {
                    100.0 * profile.calls.saturating_sub(after.calls) as f64
                        / profile.calls as f64
                }
            );
            if !opts.quiet {
                out.push_str(&module_to_string(&module));
            }
            Ok((0, out))
        }
        "callgraph" => {
            let module = compile_sources(&opts.positional)?;
            let inputs = load_inputs(&opts.inputs)?;
            let runs = vec![(inputs, opts.args.clone())];
            let (profile, _) = profile_runs(&module, &runs, &VmConfig::default())
                .map_err(|e| e.to_string())?;
            let graph = CallGraph::build(&module, &profile.averaged());
            out.push_str(&graph.to_dot(&module));
            Ok((0, out))
        }
        "bench" => {
            let name = opts
                .positional
                .first()
                .ok_or_else(|| format!("bench needs a benchmark name\n{}", usage()))?;
            let b = impact_workloads::benchmark(name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            let mut module = b.compile().map_err(|e| e.render(&b.sources()))?;
            let runs = b.profile_run_set(4);
            let (profile, _) = profile_runs(&module, &runs, &VmConfig::default())
                .map_err(|e| e.to_string())?;
            let cfg = opts.inline_config()?;
            let report = inline_module(&mut module, &profile.averaged(), &cfg);
            let (after, _) = profile_runs(&module, &runs, &VmConfig::default())
                .map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "{name}: {} C lines, {} ILs/run, calls {} -> {} ({:.1}% eliminated), code {:+.1}%",
                b.c_lines(),
                profile.averaged().il_executed,
                profile.calls,
                after.calls,
                if profile.calls == 0 {
                    0.0
                } else {
                    100.0 * profile.calls.saturating_sub(after.calls) as f64
                        / profile.calls as f64
                },
                report.code_increase_percent()
            );
            Ok((0, out))
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_option_set() {
        let o = Options::parse(&strs(&[
            "inline",
            "a.c",
            "b.c",
            "--input",
            "stdin=/tmp/x",
            "--arg",
            "-v",
            "--threshold",
            "5",
            "--budget",
            "1.5",
            "--stack-bound",
            "8192",
            "--linearize",
            "random:9",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(o.command, "inline");
        assert_eq!(o.positional, strs(&["a.c", "b.c"]));
        assert_eq!(o.inputs, vec![("stdin".to_string(), "/tmp/x".to_string())]);
        assert_eq!(o.args, strs(&["-v"]));
        assert_eq!(o.threshold, Some(5));
        assert_eq!(o.budget, Some(1.5));
        assert_eq!(o.stack_bound, Some(8192));
        assert!(o.quiet);
        let cfg = o.inline_config().unwrap();
        assert_eq!(cfg.weight_threshold, 5);
        assert_eq!(cfg.linearization, Linearization::Random(9));
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(Options::parse(&strs(&["compile", "--bogus"])).is_err());
        let o = Options::parse(&strs(&["teleport"])).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn compile_and_run_a_real_file() {
        let dir = std::env::temp_dir().join("impactc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("t.c");
        std::fs::write(&src, "int main() { return 41 + 1; }").unwrap();

        let o = Options::parse(&strs(&["compile", src.to_str().unwrap()])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("func"));

        let o = Options::parse(&strs(&["run", src.to_str().unwrap()])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 42);
        assert!(out.contains("exit 42"));
    }

    #[test]
    fn inline_pipeline_over_files() {
        let dir = std::env::temp_dir().join("impactc-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("hot.c");
        std::fs::write(
            &src,
            "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 50; i++) s += sq(i); return s & 0xff; }",
        )
        .unwrap();
        let o = Options::parse(&strs(&[
            "inline",
            src.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("expanded 1 arcs"), "{out}");
        assert!(out.contains("100.0% eliminated"), "{out}");
    }

    #[test]
    fn callgraph_emits_dot() {
        let dir = std::env::temp_dir().join("impactc-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("g.c");
        std::fs::write(&src, "int f(int x) { return x; } int main() { return f(1); }").unwrap();
        let o = Options::parse(&strs(&["callgraph", src.to_str().unwrap()])).unwrap();
        let (_, out) = execute(&o).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("main"));
    }

    #[test]
    fn bench_command_runs_a_suite_member() {
        let o = Options::parse(&strs(&["bench", "wc"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("wc:"), "{out}");
        assert!(out.contains("eliminated"), "{out}");
    }
}

#[cfg(test)]
mod profile_flag_tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn profile_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("impactc-prof");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("p.c");
        std::fs::write(
            &src,
            "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 30; i++) s += sq(i); return s & 0x7f; }",
        )
        .unwrap();
        let prof = dir.join("p.profile");

        // run --profile-out
        let o = Options::parse(&strs(&[
            "run",
            src.to_str().unwrap(),
            "--profile-out",
            prof.to_str().unwrap(),
        ]))
        .unwrap();
        let (_, _) = execute(&o).unwrap();
        let text = std::fs::read_to_string(&prof).unwrap();
        assert!(text.starts_with("impact-profile v1"));

        // inline --profile-in (no re-profiling run needed)
        let o = Options::parse(&strs(&[
            "inline",
            src.to_str().unwrap(),
            "--profile-in",
            prof.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("expanded 1 arcs"), "{out}");
    }

    #[test]
    fn promote_indirect_flag_reaches_config() {
        let o = Options::parse(&strs(&["inline", "x.c", "--promote-indirect"])).unwrap();
        assert!(o.inline_config().unwrap().promote_indirect);
    }
}
