//! # impact-driver — the `impactc` command-line pipeline
//!
//! Library backing for the `impactc` binary: argument parsing and the
//! compile → profile → inline → report pipeline over real files, so that
//! the whole flow is unit-testable without spawning processes.

// `deny` rather than `forbid`: the one scoped exception is the SIGTERM
// handler installation in `serve::sig`, which binds the C `signal`
// function directly (no libc crate dependency) under a module-local
// `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use impact_callgraph::CallGraph;
use impact_cfront::{compile, compile_with, Source};
use impact_il::{module_to_string, verify_module, Module, VerifyError};
use impact_inline::{
    expand_site, inline_module, ExpansionRecord, Incident, IncidentStage, InlineConfig,
    Linearization, SiteDecision,
};
use impact_opt::optimize_module_observed;
use impact_vm::{profile_runs, Engine, FaultPlan, IcacheConfig, NamedFile, Profile, VmConfig};

pub mod cache;
pub mod fuzz;
pub mod journal;
pub mod minimize;
pub mod pool;
pub mod report;
pub mod serve;
pub mod supervise;
pub mod telemetry;
#[cfg(unix)]
pub(crate) mod transport;

use report::PipelineFailure;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Subcommand: `compile`, `run`, `inline`, `callgraph`, or `bench`.
    pub command: String,
    /// Positional arguments (source paths, or a benchmark name for
    /// `bench`).
    pub positional: Vec<String>,
    /// `--input name=path` pairs: files made visible to the program.
    pub inputs: Vec<(String, String)>,
    /// `--arg v` values passed as program arguments.
    pub args: Vec<String>,
    /// `--threshold N` (arc-weight threshold).
    pub threshold: Option<u64>,
    /// `--budget F` (code-growth limit).
    pub budget: Option<f64>,
    /// `--stack-bound N` (bytes).
    pub stack_bound: Option<u64>,
    /// `--linearize node-weight|reverse|random:<seed>|source`.
    pub linearization: Option<String>,
    /// `--promote-indirect` (profile-guided indirect-call promotion,
    /// extension).
    pub promote_indirect: bool,
    /// `--profile-out path`: write the collected profile as text.
    pub profile_out: Option<String>,
    /// `--profile-in path`: reuse a previously written profile instead of
    /// re-running the program.
    pub profile_in: Option<String>,
    /// `--opt`: run the classical optimization passes (with per-pass
    /// isolation) after inline expansion.
    pub opt: bool,
    /// `--fault KEY[=N]` specs: deterministic fault-injection points
    /// (repeatable), e.g. `expand:verify:1` or `vm:oom=3`.
    pub faults: Vec<String>,
    /// `--quiet` (suppress IL dumps).
    pub quiet: bool,
    /// `--fuel N`: VM instruction budget per run (resource governor).
    pub fuel: Option<u64>,
    /// `--mem-limit N`: VM heap allocation quota in bytes (resource
    /// governor); see [`impact_vm::Memory::set_quota`].
    pub mem_limit: Option<u64>,
    /// `--time-limit-ms N` (batch): per-attempt wall-clock deadline.
    pub time_limit_ms: Option<u64>,
    /// `--retries N` (batch): re-attempts for transient failures.
    pub retries: Option<u32>,
    /// `--retry-base-ms N` (batch): base delay of the exponential backoff.
    pub retry_base_ms: Option<u64>,
    /// `--report-dir DIR` (batch): where crash reports and minimized
    /// reproducers are persisted.
    pub report_dir: Option<String>,
    /// `--fault-unit NAME` (batch): arm the `--fault` specs for this unit
    /// only; every other unit runs fault-free.
    pub fault_unit: Option<String>,
    /// `--workloads` (batch): add the twelve bundled benchmarks as units.
    pub workloads: bool,
    /// `--seed N` (fuzz): campaign seed fixing the whole corpus.
    pub seed: Option<u64>,
    /// `--journal PATH` (batch/fuzz): record campaign progress to a
    /// crash-consistent journal at this path.
    pub journal: Option<String>,
    /// `--resume` (batch/fuzz): continue the campaign recorded in
    /// `--journal`, skipping completed units.
    pub resume: bool,
    /// `--force-resume`: resume even when the journal (or the report-dir
    /// manifest) records a different config fingerprint.
    pub force_resume: bool,
    /// `--explain` (inline): print the per-call-site inline-decision
    /// audit table.
    pub explain: bool,
    /// `--decisions-out PATH` (inline): write the audit trail as
    /// schema-versioned JSON.
    pub decisions_out: Option<String>,
    /// `--trace-out PATH`: write Chrome trace-event JSON for the run.
    pub trace_out: Option<String>,
    /// `--metrics-out PATH`: write per-stage counters and timings as
    /// schema-versioned JSON.
    pub metrics_out: Option<String>,
    /// `--jobs N` (batch/serve): worker count for the compile pool
    /// (default: the number of available cores).
    pub jobs: Option<usize>,
    /// `--cache-dir DIR` (batch/serve): content-addressed artifact cache
    /// directory.
    pub cache_dir: Option<String>,
    /// `--queue-depth N` (serve): bound of the request queue; a full
    /// queue sheds new requests with an immediate `busy` response.
    pub queue_depth: Option<usize>,
    /// `--cache-budget-bytes N` (batch/serve): total on-disk byte budget
    /// across cache entries; past it, least-recently-used entries are
    /// evicted (quarantined bytes reclaimed first, pinned reads never).
    pub cache_budget_bytes: Option<u64>,
    /// `--deadline-ms N` (request): overall client deadline across all
    /// retry attempts; per-attempt socket timeouts shrink as it runs down.
    pub deadline_ms: Option<u64>,
    /// `--ping` (request): run the daemon health self-checks instead of
    /// compiling.
    pub ping: bool,
    /// `--tcp HOST:PORT` (serve): also bind a TCP listener alongside the
    /// Unix socket, serving the same protocol to remote clients.
    pub tcp: Option<String>,
    /// `--max-conns N` (serve): accept-time cap on connections admitted
    /// but not yet finished; past it new connections are shed with an
    /// immediate `busy` response.
    pub max_conns: Option<u64>,
    /// `--remote ENDPOINTS` (batch): ship each file unit to this
    /// comma-separated daemon fleet instead of compiling locally.
    pub remote: Option<String>,
    /// `--engine interp|bytecode`: which VM execution engine runs the
    /// program (default `bytecode`). The engines are proven behaviorally
    /// identical by the parity suite, so — like the telemetry flags —
    /// this cannot change any output and is excluded from campaign
    /// fingerprints and cache keys.
    pub engine: Option<String>,
    /// `--icache`: replay the dynamic instruction stream through the
    /// paper-era simulated instruction cache (8 KiB direct-mapped,
    /// 32-byte lines) and report hit/miss statistics. Composes with
    /// either `--engine`; the simulated stream is identical on both.
    pub icache: bool,
    /// `--stats` (request): ask the daemon for a live stats snapshot
    /// rendered as a human-readable table instead of compiling.
    pub stats: bool,
    /// `--stats-prom` (request): like `--stats` but rendered as
    /// Prometheus text exposition, suitable for scraping.
    pub stats_prom: bool,
    /// `--stats-json` (request): like `--stats` but rendered as the
    /// versioned stats JSON document.
    pub stats_json: bool,
    /// `--flight-recorder N` (serve): capacity of the in-memory ring of
    /// recent structured events dumped on panic/quarantine/protocol
    /// violation and at drain (default 256).
    pub flight_recorder: Option<usize>,
}

impl Options {
    /// Parses `argv[1..]`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed input.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut it = argv.iter().peekable();
        let command = it.next().cloned().ok_or_else(usage)?;
        let mut opts = Options {
            command,
            positional: Vec::new(),
            inputs: Vec::new(),
            args: Vec::new(),
            threshold: None,
            budget: None,
            stack_bound: None,
            linearization: None,
            promote_indirect: false,
            profile_out: None,
            profile_in: None,
            opt: false,
            faults: Vec::new(),
            quiet: false,
            fuel: None,
            mem_limit: None,
            time_limit_ms: None,
            retries: None,
            retry_base_ms: None,
            report_dir: None,
            fault_unit: None,
            workloads: false,
            seed: None,
            journal: None,
            resume: false,
            force_resume: false,
            explain: false,
            decisions_out: None,
            trace_out: None,
            metrics_out: None,
            jobs: None,
            cache_dir: None,
            queue_depth: None,
            cache_budget_bytes: None,
            deadline_ms: None,
            ping: false,
            tcp: None,
            max_conns: None,
            remote: None,
            engine: None,
            icache: false,
            stats: false,
            stats_prom: false,
            stats_json: false,
            flight_recorder: None,
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--input" => {
                    let v = it.next().ok_or("--input needs name=path".to_string())?;
                    let (name, path) = v
                        .split_once('=')
                        .ok_or("--input needs name=path".to_string())?;
                    opts.inputs.push((name.to_string(), path.to_string()));
                }
                "--arg" => {
                    let v = it.next().ok_or("--arg needs a value".to_string())?;
                    opts.args.push(v.clone());
                }
                "--threshold" => {
                    let v = it.next().ok_or("--threshold needs a number".to_string())?;
                    opts.threshold = Some(v.parse().map_err(|_| "bad --threshold")?);
                }
                "--budget" => {
                    let v = it.next().ok_or("--budget needs a number".to_string())?;
                    opts.budget = Some(v.parse().map_err(|_| "bad --budget")?);
                }
                "--stack-bound" => {
                    let v = it
                        .next()
                        .ok_or("--stack-bound needs a number".to_string())?;
                    opts.stack_bound = Some(v.parse().map_err(|_| "bad --stack-bound")?);
                }
                "--linearize" => {
                    let v = it
                        .next()
                        .ok_or("--linearize needs a strategy".to_string())?;
                    opts.linearization = Some(v.clone());
                }
                "--promote-indirect" => opts.promote_indirect = true,
                "--profile-out" => {
                    let v = it.next().ok_or("--profile-out needs a path".to_string())?;
                    opts.profile_out = Some(v.clone());
                }
                "--profile-in" => {
                    let v = it.next().ok_or("--profile-in needs a path".to_string())?;
                    opts.profile_in = Some(v.clone());
                }
                "--opt" => opts.opt = true,
                "--fault" => {
                    let v = it.next().ok_or("--fault needs KEY[=N]".to_string())?;
                    opts.faults.push(v.clone());
                }
                "--quiet" => opts.quiet = true,
                "--fuel" => {
                    let v = it.next().ok_or("--fuel needs a number".to_string())?;
                    opts.fuel = Some(v.parse().map_err(|_| "bad --fuel")?);
                }
                "--mem-limit" => {
                    let v = it.next().ok_or("--mem-limit needs a number".to_string())?;
                    opts.mem_limit = Some(v.parse().map_err(|_| "bad --mem-limit")?);
                }
                "--time-limit-ms" => {
                    let v = it
                        .next()
                        .ok_or("--time-limit-ms needs a number".to_string())?;
                    opts.time_limit_ms = Some(v.parse().map_err(|_| "bad --time-limit-ms")?);
                }
                "--retries" => {
                    let v = it.next().ok_or("--retries needs a number".to_string())?;
                    opts.retries = Some(v.parse().map_err(|_| "bad --retries")?);
                }
                "--retry-base-ms" => {
                    let v = it
                        .next()
                        .ok_or("--retry-base-ms needs a number".to_string())?;
                    opts.retry_base_ms = Some(v.parse().map_err(|_| "bad --retry-base-ms")?);
                }
                "--report-dir" => {
                    let v = it.next().ok_or("--report-dir needs a path".to_string())?;
                    opts.report_dir = Some(v.clone());
                }
                "--fault-unit" => {
                    let v = it.next().ok_or("--fault-unit needs a name".to_string())?;
                    opts.fault_unit = Some(v.clone());
                }
                "--workloads" => opts.workloads = true,
                "--journal" => {
                    let v = it.next().ok_or("--journal needs a path".to_string())?;
                    opts.journal = Some(v.clone());
                }
                "--resume" => opts.resume = true,
                "--force-resume" => opts.force_resume = true,
                "--explain" => opts.explain = true,
                "--decisions-out" => {
                    let v = it
                        .next()
                        .ok_or("--decisions-out needs a path".to_string())?;
                    opts.decisions_out = Some(v.clone());
                }
                "--trace-out" => {
                    let v = it.next().ok_or("--trace-out needs a path".to_string())?;
                    opts.trace_out = Some(v.clone());
                }
                "--metrics-out" => {
                    let v = it.next().ok_or("--metrics-out needs a path".to_string())?;
                    opts.metrics_out = Some(v.clone());
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a number".to_string())?;
                    opts.seed = Some(v.parse().map_err(|_| "bad --seed")?);
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a number".to_string())?;
                    opts.jobs = Some(v.parse().map_err(|_| "bad --jobs")?);
                }
                "--cache-dir" => {
                    let v = it.next().ok_or("--cache-dir needs a path".to_string())?;
                    opts.cache_dir = Some(v.clone());
                }
                "--queue-depth" => {
                    let v = it
                        .next()
                        .ok_or("--queue-depth needs a number".to_string())?;
                    opts.queue_depth = Some(v.parse().map_err(|_| "bad --queue-depth")?);
                }
                "--cache-budget-bytes" => {
                    let v = it
                        .next()
                        .ok_or("--cache-budget-bytes needs a number".to_string())?;
                    opts.cache_budget_bytes =
                        Some(v.parse().map_err(|_| "bad --cache-budget-bytes")?);
                }
                "--deadline-ms" => {
                    let v = it
                        .next()
                        .ok_or("--deadline-ms needs a number".to_string())?;
                    opts.deadline_ms = Some(v.parse().map_err(|_| "bad --deadline-ms")?);
                }
                "--ping" => opts.ping = true,
                "--tcp" => {
                    let v = it.next().ok_or("--tcp needs HOST:PORT".to_string())?;
                    opts.tcp = Some(v.clone());
                }
                "--max-conns" => {
                    let v = it.next().ok_or("--max-conns needs a number".to_string())?;
                    opts.max_conns = Some(v.parse().map_err(|_| "bad --max-conns")?);
                }
                "--remote" => {
                    let v = it
                        .next()
                        .ok_or("--remote needs an endpoint list".to_string())?;
                    opts.remote = Some(v.clone());
                }
                "--engine" => {
                    let v = it.next().ok_or("--engine needs a name".to_string())?;
                    opts.engine = Some(v.clone());
                }
                "--icache" => opts.icache = true,
                "--stats" => opts.stats = true,
                "--stats-prom" => opts.stats_prom = true,
                "--stats-json" => opts.stats_json = true,
                "--flight-recorder" => {
                    let v = it
                        .next()
                        .ok_or("--flight-recorder needs a capacity".to_string())?;
                    opts.flight_recorder = Some(v.parse().map_err(|_| "bad --flight-recorder")?);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown option `{other}`\n{}", usage()));
                }
                other => opts.positional.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    /// Builds the fault-injection plan from the `--fault` flags.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed spec.
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        let plan = FaultPlan::new();
        for spec in &self.faults {
            plan.arm_spec(spec)
                .map_err(|e| format!("bad --fault `{spec}`: {e}"))?;
        }
        Ok(plan)
    }

    /// Resolves the `--engine` flag (default: [`Engine::Bytecode`]).
    ///
    /// # Errors
    ///
    /// Returns an actionable message naming the valid engines.
    pub fn engine_choice(&self) -> Result<Engine, String> {
        match self.engine.as_deref() {
            None => Ok(Engine::default()),
            Some(name) => name.parse().map_err(|_| {
                format!(
                    "--engine `{name}` is not a known execution engine; use \
                     `bytecode` (the default register-bytecode engine) or \
                     `interp` (the reference tree-walking interpreter)"
                )
            }),
        }
    }

    /// Builds the VM configuration from the resource-governor flags,
    /// threading `fault` through it. Validates `--fuel`, `--mem-limit`,
    /// and `--engine` the same way `--budget`/`--stack-bound` are, and
    /// arms the simulated instruction cache for `--icache`.
    ///
    /// # Errors
    ///
    /// Returns an actionable message for out-of-range values.
    pub fn vm_config(&self, fault: FaultPlan) -> Result<VmConfig, String> {
        let mut cfg = VmConfig {
            fault,
            engine: self.engine_choice()?,
            ..VmConfig::default()
        };
        if self.icache {
            cfg.icache = Some(IcacheConfig::small_direct_mapped());
        }
        if let Some(fuel) = self.fuel {
            if fuel == 0 {
                return Err("--fuel 0 would stop the VM before its first instruction; \
                     use a positive instruction budget (default 2000000000)"
                    .to_string());
            }
            cfg.max_steps = fuel;
        }
        if let Some(limit) = self.mem_limit {
            if limit == 0 {
                return Err(
                    "--mem-limit 0 would reject the program's first allocation; \
                     use a positive heap quota in bytes"
                        .to_string(),
                );
            }
            cfg.mem_limit = Some(limit);
        }
        Ok(cfg)
    }

    /// Builds the inline configuration from the flags.
    pub fn inline_config(&self) -> Result<InlineConfig, String> {
        let mut cfg = InlineConfig::default();
        if let Some(t) = self.threshold {
            cfg.weight_threshold = t;
        }
        if let Some(b) = self.budget {
            if !b.is_finite() {
                return Err(format!(
                    "--budget {b} is not a finite number; the code-growth limit \
                     must be a multiplier such as 1.5"
                ));
            }
            if b < 1.0 {
                return Err(format!(
                    "--budget {b} is below 1.0, which would forbid the original \
                     program itself; use a growth multiplier >= 1.0 (default 2.0)"
                ));
            }
            cfg.code_growth_limit = b;
        }
        if let Some(s) = self.stack_bound {
            if s == 0 {
                return Err(
                    "--stack-bound 0 would reject every expansion into a recursive \
                     region; use a positive byte bound (default 4096)"
                        .to_string(),
                );
            }
            cfg.stack_bound = s;
        }
        cfg.fault = self.fault_plan()?;
        cfg.promote_indirect = self.promote_indirect;
        if let Some(l) = &self.linearization {
            cfg.linearization = match l.as_str() {
                "node-weight" => Linearization::NodeWeight,
                "reverse" => Linearization::ReverseNodeWeight,
                "source" => Linearization::SourceOrder,
                other => match other.strip_prefix("random:") {
                    Some(seed) => Linearization::Random(
                        seed.parse().map_err(|_| "bad random seed".to_string())?,
                    ),
                    None => return Err(format!("unknown linearization `{other}`")),
                },
            };
        }
        Ok(cfg)
    }

    /// Builds the service configuration from the parallelism/caching
    /// flags, validating them the same way the governor flags are.
    ///
    /// # Errors
    ///
    /// Returns an actionable message for out-of-range values.
    pub fn service_config(&self) -> Result<ServiceConfig, String> {
        if self.jobs == Some(0) {
            return Err(
                "--jobs 0 would run no compile workers; use a positive worker \
                 count (default: the number of available cores)"
                    .to_string(),
            );
        }
        if self.queue_depth == Some(0) {
            return Err(format!(
                "--queue-depth 0 would shed every request before a worker could \
                 accept one; use a positive queue bound (default {DEFAULT_QUEUE_DEPTH})"
            ));
        }
        if self.cache_dir.as_deref() == Some("") {
            return Err(
                "--cache-dir needs a non-empty directory path for the artifact cache".to_string(),
            );
        }
        if self.cache_budget_bytes == Some(0) {
            return Err(
                "--cache-budget-bytes 0 would evict every entry the moment it was \
                 stored; use a positive byte budget, or omit the flag for an \
                 unbounded cache"
                    .to_string(),
            );
        }
        if self.cache_budget_bytes.is_some() && self.cache_dir.is_none() {
            return Err(
                "--cache-budget-bytes needs --cache-dir (there is no cache to \
                 bound without one)"
                    .to_string(),
            );
        }
        if self.deadline_ms == Some(0) {
            return Err("--deadline-ms 0 would expire the request before its first \
                 attempt; use a positive overall deadline in milliseconds"
                .to_string());
        }
        if let Some(addr) = &self.tcp {
            let ok = addr.rsplit_once(':').is_some_and(|(host, port)| {
                !host.is_empty() && !host.contains('/') && port.parse::<u16>().is_ok_and(|p| p > 0)
            });
            if !ok {
                return Err(format!(
                    "--tcp needs HOST:PORT with a nonzero port (got `{addr}`)"
                ));
            }
        }
        if self.max_conns == Some(0) {
            return Err(
                "--max-conns 0 would shed every connection at accept time; use a \
                 positive cap, or omit the flag for an unbounded daemon"
                    .to_string(),
            );
        }
        if let Some(list) = &self.remote {
            if list.is_empty() || list.split(',').any(str::is_empty) {
                return Err(
                    "--remote needs a non-empty comma-separated endpoint list with no \
                     empty elements"
                        .to_string(),
                );
            }
        }
        if self.ping && self.positional.first().is_some_and(|p| p.contains(',')) {
            return Err("--ping probes a single daemon; give one endpoint, not a \
                 comma-separated list"
                .to_string());
        }
        let stats_flags = [
            (self.stats, "--stats"),
            (self.stats_prom, "--stats-prom"),
            (self.stats_json, "--stats-json"),
        ];
        let picked: Vec<&str> = stats_flags
            .iter()
            .filter(|(on, _)| *on)
            .map(|&(_, name)| name)
            .collect();
        if picked.len() > 1 {
            return Err(format!(
                "{} asks for one stats snapshot in two formats; pick exactly one \
                 of --stats, --stats-prom, --stats-json",
                picked.join(" and ")
            ));
        }
        if let Some(flag) = picked.first() {
            if self.ping {
                return Err(format!(
                    "{flag} and --ping are different daemon interrogations; run \
                     them as separate requests"
                ));
            }
            if self.positional.first().is_some_and(|p| p.contains(',')) {
                return Err(format!(
                    "{flag} snapshots a single daemon; give one endpoint, not a \
                     comma-separated list"
                ));
            }
        }
        if self.flight_recorder == Some(0) {
            return Err(
                "--flight-recorder 0 would record no events before a crash; use a \
                 positive ring capacity (default 256), or omit the flag"
                    .to_string(),
            );
        }
        let jobs = match self.jobs {
            Some(n) => n,
            None => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        Ok(ServiceConfig {
            jobs,
            queue_depth: self.queue_depth.unwrap_or(DEFAULT_QUEUE_DEPTH),
            cache_dir: self.cache_dir.as_ref().map(std::path::PathBuf::from),
            cache_budget_bytes: self.cache_budget_bytes,
            tcp: self.tcp.clone(),
            max_conns: self.max_conns,
            flight_recorder: self
                .flight_recorder
                .unwrap_or(impact_obs::DEFAULT_FLIGHT_CAPACITY),
        })
    }

    /// Validates the inline *and* VM flag sets in one shot, threading the
    /// shared fault plan through both — the single flag-validation path
    /// used by `inline`, `bench`, `batch`, and `fuzz` (previously each
    /// call site combined [`Options::inline_config`] and
    /// [`Options::vm_config`] by hand). The service flags (`--jobs`,
    /// `--cache-dir`, `--queue-depth`) validate through the same call.
    ///
    /// # Errors
    ///
    /// Returns the first actionable flag error, exactly as the underlying
    /// validators produce it.
    pub fn validate_flags(&self) -> Result<ValidatedFlags, String> {
        let inline = self.inline_config()?;
        let vm = self.vm_config(inline.fault.clone())?;
        let service = self.service_config()?;
        Ok(ValidatedFlags {
            inline,
            vm,
            service,
        })
    }
}

/// Default bound of the serve request queue (`--queue-depth`).
pub const DEFAULT_QUEUE_DEPTH: usize = 8;

/// Service-level settings shared by `batch` and `serve`: pool width,
/// artifact-cache location, and the serve queue bound. Like the telemetry
/// flags, none of these change pipeline *behavior*, so they are excluded
/// from [`journal::campaign_fingerprint`] — a serial campaign's journal
/// may be resumed with `--jobs 4` and vice versa.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Resolved worker count (`--jobs`, default: available cores).
    pub jobs: usize,
    /// Bounded serve queue depth (`--queue-depth`).
    pub queue_depth: usize,
    /// Artifact cache directory (`--cache-dir`), when caching is on.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Total on-disk byte budget for the cache (`--cache-budget-bytes`);
    /// `None` disables eviction.
    pub cache_budget_bytes: Option<u64>,
    /// TCP listen address (`--tcp HOST:PORT`), bound alongside the Unix
    /// socket when present.
    pub tcp: Option<String>,
    /// Accept-time cap on admitted-but-unfinished connections
    /// (`--max-conns`); `None` leaves admission bounded only by the
    /// queue.
    pub max_conns: Option<u64>,
    /// Capacity of the serve flight-recorder ring (`--flight-recorder`,
    /// default [`impact_obs::DEFAULT_FLIGHT_CAPACITY`]).
    pub flight_recorder: usize,
}

/// The result of [`Options::validate_flags`]: every configuration, built
/// from one validation pass and sharing one fault plan.
#[derive(Clone, Debug)]
pub struct ValidatedFlags {
    /// The inline-expander configuration.
    pub inline: InlineConfig,
    /// The VM configuration (resource governor + the same fault plan).
    pub vm: VmConfig,
    /// The service configuration (pool, cache, queue).
    pub service: ServiceConfig,
}

/// The usage text.
pub fn usage() -> String {
    "usage: impactc <command> [options]\n\
     \n\
     commands:\n\
     \x20 compile <files.c...>            compile and print the IL\n\
     \x20 run <files.c...>                compile and execute main()\n\
     \x20 inline <files.c...>             profile, inline-expand, report, re-run\n\
     \x20 callgraph <files.c...>          print the weighted call graph (DOT)\n\
     \x20 bench [name]                    run one bundled benchmark end to end; with no\n\
     \x20                                 name, evaluate the whole suite and write the\n\
     \x20                                 paper-style metrics to BENCH_inline.json\n\
     \x20 batch <dirs|files|bench:N...>   supervised batch compilation: every unit\n\
     \x20                                 runs isolated under the resource governor;\n\
     \x20                                 failures are retried, then quarantined with\n\
     \x20                                 a crash report (exit 0 all ok, 10 partial,\n\
     \x20                                 11 none succeeded)\n\
     \x20 fuzz                            differential oracle fuzzing: generate seeded\n\
     \x20                                 C programs, check behavioral equivalence and\n\
     \x20                                 profile invariants across a config lattice,\n\
     \x20                                 shrink failures into repro files (exit 0 clean,\n\
     \x20                                 12 divergences found)\n\
     \x20 serve <socket>                  persistent compile daemon on a Unix socket\n\
     \x20                                 (and, with --tcp, a TCP port): bounded queue\n\
     \x20                                 with overload shedding, crash-isolated request\n\
     \x20                                 workers, SIGTERM graceful drain (finish\n\
     \x20                                 in-flight work, exit 0)\n\
     \x20 request <endpoints> <files.c..> compile files through a running serve daemon\n\
     \x20                                 and print the pipeline report; a comma-\n\
     \x20                                 separated endpoint list (socket paths and/or\n\
     \x20                                 host:port) fails over with per-endpoint\n\
     \x20                                 circuit breakers\n\
     \n\
     options:\n\
     \x20 --input name=path               make a file visible to the program (repeatable)\n\
     \x20 --arg value                     program argument (repeatable)\n\
     \x20 --threshold N                   arc-weight threshold (default 10)\n\
     \x20 --budget F                      code-growth limit (default 2.0)\n\
     \x20 --stack-bound N                 recursion stack bound in bytes (default 4096)\n\
     \x20 --linearize S                   node-weight | reverse | source | random:<seed>\n\
     \x20 --promote-indirect              promote profile-dominated indirect calls (extension)\n\
     \x20 --profile-out PATH              save the collected profile as text\n\
     \x20 --profile-in PATH               reuse a saved profile instead of re-profiling\n\
     \x20 --opt                           run classical optimizations after expansion\n\
     \x20 --fault KEY[=N]                 arm a deterministic fault point (repeatable),\n\
     \x20                                 e.g. expand:verify:1, vm:oom=3, profile:parse\n\
     \x20 --quiet                         suppress IL dumps\n\
     \n\
     resource governor (run/inline/bench/batch):\n\
     \x20 --fuel N                        VM instruction budget per run\n\
     \x20 --mem-limit N                   VM heap allocation quota in bytes\n\
     \n\
     execution engine (run/inline/callgraph/bench/batch/fuzz/serve):\n\
     \x20 --engine interp|bytecode        VM execution engine (default bytecode: flat\n\
     \x20                                 register bytecode, measured multiple-x faster;\n\
     \x20                                 interp is the reference tree-walker — both are\n\
     \x20                                 behaviorally identical, proven by the parity\n\
     \x20                                 suite, so results never depend on the choice)\n\
     \x20 --icache                        replay the instruction stream through the\n\
     \x20                                 paper-era simulated icache (8 KiB direct-\n\
     \x20                                 mapped, 32-byte lines) and report miss stats;\n\
     \x20                                 the stream is identical on either engine\n\
     \n\
     batch supervision:\n\
     \x20 --time-limit-ms N               per-attempt wall-clock deadline (default 10000)\n\
     \x20 --retries N                     re-attempts for transient failures (default 2)\n\
     \x20 --retry-base-ms N               backoff base delay (default 25)\n\
     \x20 --report-dir DIR                persist JSON crash reports + reproducers\n\
     \x20 --fault-unit NAME               arm --fault specs for this unit only\n\
     \x20 --workloads                     add the twelve bundled benchmarks as units\n\
     \x20 --remote ENDPOINTS              ship each file unit to this comma-separated\n\
     \x20                                 daemon fleet (failover + circuit breakers)\n\
     \x20                                 instead of compiling locally\n\
     \n\
     parallelism and caching (batch/serve):\n\
     \x20 --jobs N                        compile-pool worker count (default: the\n\
     \x20                                 number of available cores)\n\
     \x20 --cache-dir DIR                 content-addressed artifact cache: hits skip\n\
     \x20                                 recompilation; corrupt or truncated entries\n\
     \x20                                 are quarantined with an incident report and\n\
     \x20                                 recompiled, never served\n\
     \x20 --queue-depth N                 (serve) request queue bound; a full queue\n\
     \x20                                 sheds new requests with an immediate busy\n\
     \x20                                 response (default 8)\n\
     \x20 --cache-budget-bytes N          total on-disk byte budget for the cache;\n\
     \x20                                 past it, least-recently-used entries are\n\
     \x20                                 evicted (quarantined bytes reclaimed first,\n\
     \x20                                 in-flight reads never; needs --cache-dir)\n\
     \x20 --tcp HOST:PORT                 (serve) also bind a TCP listener serving the\n\
     \x20                                 same protocol to remote clients\n\
     \x20 --max-conns N                   (serve) accept-time cap on connections being\n\
     \x20                                 served; past it new connections are shed with\n\
     \x20                                 an immediate busy response\n\
     \x20 --flight-recorder N             (serve) capacity of the in-memory ring of\n\
     \x20                                 recent structured events dumped as incident\n\
     \x20                                 JSON on panic/quarantine/protocol violation\n\
     \x20                                 and at drain (default 256)\n\
     \n\
     request client (request):\n\
     \x20 --retries N                     re-attempts after retryable failures: torn\n\
     \x20                                 or dropped connections, busy daemons, crashed\n\
     \x20                                 request workers (default 2)\n\
     \x20 --retry-base-ms N               backoff base delay between attempts; the\n\
     \x20                                 daemon's busy retry-after hint overrides the\n\
     \x20                                 exponential schedule (default 25)\n\
     \x20 --deadline-ms N                 overall deadline across all attempts; socket\n\
     \x20                                 timeouts shrink as the budget runs down\n\
     \x20 --ping                          daemon health self-check instead of compiling:\n\
     \x20                                 queue headroom and cache-dir writability\n\
     \x20                                 (exit 0 healthy, 1 degraded)\n\
     \x20 --stats                         live daemon stats snapshot as a table:\n\
     \x20                                 counters, latency histograms, queue/cache/\n\
     \x20                                 idempotency occupancy, breaker states\n\
     \x20 --stats-prom                    the same snapshot as Prometheus text\n\
     \x20                                 exposition, suitable for scraping\n\
     \x20 --stats-json                    the same snapshot as versioned JSON\n\
     \n\
     fuzzing:\n\
     \x20 --seed N                        campaign seed (default 42)\n\
     \x20 --budget N                      number of programs to check (default 100)\n\
     \x20 --threshold N                   arc-weight threshold for the oracle's configs\n\
     \x20 --fault KEY[=N]                 arm fault points in every config (the positive\n\
     \x20                                 control: armed faults must surface as findings)\n\
     \x20 --report-dir DIR                where shrunken *.repro.c + JSON oracle reports\n\
     \x20                                 are written (default fuzz-reports)\n\
     \n\
     telemetry (zero-cost unless a flag below is set):\n\
     \x20 --explain                       (inline) print the per-call-site decision\n\
     \x20                                 audit table: class, weight, budget state,\n\
     \x20                                 and the accept/reject reason\n\
     \x20 --decisions-out PATH            (inline) write the same audit trail as\n\
     \x20                                 schema-versioned JSON\n\
     \x20 --trace-out PATH                write Chrome trace-event JSON (load it at\n\
     \x20                                 chrome://tracing or ui.perfetto.dev)\n\
     \x20 --metrics-out PATH              write per-stage counters and timings as\n\
     \x20                                 schema-versioned JSON; batch/fuzz aggregate\n\
     \x20                                 across all units into campaign-level metrics\n\
     \n\
     crash consistency (batch/fuzz):\n\
     \x20 --journal PATH                  record campaign progress to a checksummed\n\
     \x20                                 write-ahead journal (fsync'd per event)\n\
     \x20 --resume                        continue the campaign in --journal: completed\n\
     \x20                                 units are skipped, in-flight ones re-run, and\n\
     \x20                                 reports are re-emitted idempotently\n\
     \x20 --force-resume                  resume even if the journal or report-dir\n\
     \x20                                 manifest records different campaign flags\n"
        .to_string()
}

fn read_sources(paths: &[String]) -> Result<Vec<Source>, String> {
    if paths.is_empty() {
        return Err(format!("no source files given\n{}", usage()));
    }
    paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(p)
                .map(|text| Source::new(p.clone(), text))
                .map_err(|e| format!("cannot read `{p}`: {e}"))
        })
        .collect()
}

/// Renders verifier errors the same way on every path: one readable
/// Display line per error.
fn render_verify_errors(errors: &[VerifyError]) -> String {
    errors
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn compile_sources(paths: &[String]) -> Result<Module, String> {
    let sources = read_sources(paths)?;
    let module = compile(&sources).map_err(|e| e.render(&sources))?;
    verify_module(&module).map_err(|es| render_verify_errors(&es))?;
    Ok(module)
}

fn load_inputs(pairs: &[(String, String)]) -> Result<Vec<NamedFile>, String> {
    pairs
        .iter()
        .map(|(name, path)| {
            std::fs::read(path)
                .map(|bytes| NamedFile::new(name.clone(), bytes))
                .map_err(|e| format!("cannot read input `{path}`: {e}"))
        })
        .collect()
}

/// One profiling/benchmark run: named input files plus program arguments.
pub type RunSpec = (Vec<NamedFile>, Vec<String>);

/// Acquires a profile with graceful degradation: a corrupt `--profile-in`
/// (or the `profile:parse` fault point), and a trapping profiling run,
/// both warn and fall back to an unprofiled plan in which every arc
/// carries exactly the threshold weight — threshold-only inlining —
/// instead of aborting the compilation.
fn acquire_profile(
    module: &Module,
    runs: &[RunSpec],
    vm_cfg: &VmConfig,
    profile_in: Option<&str>,
    fallback_weight: u64,
    incidents: &mut Vec<Incident>,
    out: &mut String,
) -> Result<Profile, String> {
    let degraded =
        |detail: String, subject: String, incidents: &mut Vec<Incident>, out: &mut String| {
            let _ = writeln!(
                out,
                "; warning: {detail}; falling back to unprofiled (threshold-only) inlining"
            );
            incidents.push(Incident {
                stage: IncidentStage::Profile,
                subject,
                detail,
                rolled_back: false,
            });
            Profile::assume_hot(module, fallback_weight)
        };
    match profile_in {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read profile `{path}`: {e}"))?;
            let parsed = if vm_cfg.fault.should_fail("profile:parse") {
                Err("fault injection corrupted the profile read".to_string())
            } else {
                Profile::from_text(&text).map_err(|e| e.to_string())
            };
            match parsed {
                Ok(p) => Ok(p),
                Err(e) => Ok(degraded(
                    format!("bad profile `{path}`: {e}"),
                    format!("profile `{path}`"),
                    incidents,
                    out,
                )),
            }
        }
        None => match profile_runs(module, runs, vm_cfg) {
            Ok((p, _)) => Ok(p),
            Err(e) => Ok(degraded(
                format!("profiling run trapped: {e}"),
                "profiling run".to_string(),
                incidents,
                out,
            )),
        },
    }
}

/// Observable behavior of a module over a run set: per-run stdout and
/// exit code, or the trap that stopped the first failing run.
fn behavior(module: &Module, runs: &[RunSpec]) -> Result<Vec<(Vec<u8>, i64)>, String> {
    let cfg = VmConfig::default(); // differential runs are never faulted
    let mut results = Vec::with_capacity(runs.len());
    for (inputs, args) in runs {
        let out = impact_vm::run(module, inputs.clone(), args.clone(), &cfg)
            .map_err(|e| e.to_string())?;
        results.push((out.stdout, out.exit_code));
    }
    Ok(results)
}

/// Replays a subset of expansion records on a pristine pre-expansion
/// module (plan sites always refer to original-module sites, so any
/// subset replays cleanly in order).
fn replay(module0: &Module, records: &[ExpansionRecord], included: &[bool]) -> Module {
    let mut m = module0.clone();
    for (r, inc) in records.iter().zip(included) {
        if *inc {
            expand_site(&mut m, r.caller, r.site, r.callee);
        }
    }
    m
}

/// The differential safety net: compares the inlined module's observable
/// behavior against the pre-inline module on the same runs. On
/// divergence, bisects the applied expansions to the smallest offending
/// set, rolls those arcs back (rebuilding the module from the pristine
/// copy), and records incidents — a miscompile is never shipped.
///
/// `promoted` forces the conservative path: promotion rewrites sites the
/// records may reference, so the whole transformation is rolled back
/// instead of bisected.
#[allow(clippy::too_many_arguments)]
fn differential_guard(
    module: &mut Module,
    module0: &Module,
    records: &[ExpansionRecord],
    promoted: bool,
    eliminate: bool,
    runs: &[RunSpec],
    incidents: &mut Vec<Incident>,
    out: &mut String,
) {
    let Ok(target) = behavior(module0, runs) else {
        // The original program itself traps on these runs: there is no
        // ground truth to compare against.
        return;
    };
    if behavior(module, runs).ok().as_ref() == Some(&target) {
        return;
    }
    let _ = writeln!(
        out,
        "; warning: post-inline behavior diverged from the pre-inline run; bisecting"
    );
    if promoted || records.is_empty() {
        *module = module0.clone();
        incidents.push(Incident {
            stage: IncidentStage::Divergence,
            subject: "whole transformation".to_string(),
            detail: "behavior diverged and the expansion set cannot be bisected; \
                     reverted to the pre-inline module"
                .to_string(),
            rolled_back: true,
        });
        return;
    }
    let mut included = vec![true; records.len()];
    for _ in 0..records.len() {
        let candidate = replay(module0, records, &included);
        if behavior(&candidate, runs).ok().as_ref() == Some(&target) {
            break;
        }
        // Smallest prefix of still-included arcs that diverges; its last
        // arc is an offender.
        let active: Vec<usize> = (0..records.len()).filter(|&i| included[i]).collect();
        let fails = |k: usize| {
            let mut subset = vec![false; records.len()];
            for &i in &active[..k] {
                subset[i] = true;
            }
            behavior(&replay(module0, records, &subset), runs)
                .ok()
                .as_ref()
                != Some(&target)
        };
        let (mut lo, mut hi) = (1, active.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if fails(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let offender = active[lo - 1];
        included[offender] = false;
        let r = &records[offender];
        incidents.push(Incident {
            stage: IncidentStage::Divergence,
            subject: format!(
                "`{}` -> `{}` (site {})",
                module0.function(r.callee).name,
                module0.function(r.caller).name,
                r.site.0
            ),
            detail: "expansion changed observable behavior; arc rolled back".to_string(),
            rolled_back: true,
        });
    }
    *module = replay(module0, records, &included);
    if eliminate {
        impact_inline::eliminate_unreachable(module);
    }
    debug_assert!(behavior(module, runs).ok().as_ref() == Some(&target));
}

/// Appends per-incident lines and the `; incidents: N (M rolled back)`
/// summary to the report.
/// Warns about armed fault points that never fired — a typo'd domain or
/// an out-of-range hit count would otherwise be silently ignored.
fn warn_unfired(out: &mut String, fault: &FaultPlan) {
    for key in fault.unfired() {
        let _ = writeln!(
            out,
            "; warning: fault point `{key}` was armed but never fired; \
             check the spelling and hit count"
        );
    }
}

fn render_incidents(out: &mut String, incidents: &[Incident]) {
    for i in incidents {
        let _ = writeln!(out, "; incident: {i}");
    }
    let rolled = incidents.iter().filter(|i| i.rolled_back).count();
    let _ = writeln!(
        out,
        "; incidents: {} ({} rolled back)",
        incidents.len(),
        rolled
    );
}

/// The full profile → inline → verify → guard → optimize pipeline over
/// already-loaded sources, with every hard failure classified as a
/// [`PipelineFailure`] so the batch supervisor (and the `inline` command)
/// can make retry/quarantine decisions and match failure signatures.
///
/// The post-inline verification step doubles as the pipeline's one
/// *unrecovered* failure point: the `inline:verify` fault key injects a
/// verification failure here, modeling the class of hard failures that
/// the recovery layer of PR 1 cannot absorb.
///
/// # Errors
///
/// Returns the classified failure; `Ok` carries `(exit_code, report)`.
pub fn inline_pipeline(
    sources: &[Source],
    runs: &[RunSpec],
    opts: &Options,
) -> Result<(i32, String), PipelineFailure> {
    let obs = telemetry::handle_for(opts);
    inline_pipeline_observed(sources, runs, opts, &obs).map(|(code, out, _)| (code, out))
}

/// [`inline_pipeline`] with an externally-owned telemetry handle (so a
/// campaign can aggregate across units into one collector) and the
/// inline-decision audit trail in the result. Spans cover every stage:
/// the front end (per-source lex/parse, lower), both verifier runs, the
/// profiling VM runs, each inline sub-phase, and each optimization pass.
///
/// # Errors
///
/// Returns the classified failure; `Ok` carries
/// `(exit_code, report, decisions)`.
pub fn inline_pipeline_observed(
    sources: &[Source],
    runs: &[RunSpec],
    opts: &Options,
    obs: &impact_obs::Telemetry,
) -> Result<(i32, String, Vec<SiteDecision>), PipelineFailure> {
    let mut out = String::new();
    let config_err = |e: String| PipelineFailure::new("config", "bad-flag", e);
    let ValidatedFlags {
        inline: mut cfg,
        vm: mut vm_cfg,
        ..
    } = opts.validate_flags().map_err(config_err)?;
    cfg.obs = obs.clone();
    cfg.audit = telemetry::audit_requested(opts);
    vm_cfg.obs = obs.clone();
    let fault = cfg.fault.clone();
    let mut module = compile_with(sources, obs)
        .map_err(|e| PipelineFailure::new("compile", e.message.clone(), e.render(sources)))?;
    {
        let _verify_span = obs.span("il:verify");
        verify_module(&module).map_err(|es| {
            PipelineFailure::new(
                "verify",
                "post-compile-verify-failed",
                render_verify_errors(&es),
            )
        })?;
    }
    let module0 = module.clone();
    let mut incidents: Vec<Incident> = Vec::new();
    let profile = {
        let _profile_span = obs.span("profile:acquire");
        acquire_profile(
            &module,
            runs,
            &vm_cfg,
            opts.profile_in.as_deref(),
            cfg.weight_threshold,
            &mut incidents,
            &mut out,
        )
        .map_err(|e| PipelineFailure::new("io", "profile-read-failed", e))?
    };
    if let Some(path) = &opts.profile_out {
        report::atomic_write_path(std::path::Path::new(path), profile.to_text().as_bytes())
            .map_err(|e| PipelineFailure::new("io", "profile-write-failed", e))?;
    }
    let report = inline_module(&mut module, &profile.averaged(), &cfg);
    incidents.extend(report.incidents.iter().cloned());
    // The one unrecovered failure point: a module that fails verification
    // *after* inlining has no safe fallback short of abandoning the unit,
    // so it surfaces as a hard `inline:verify-failed` error (and the
    // `inline:verify` fault key injects exactly this failure).
    let verified = {
        let _verify_span = obs.span("il:verify");
        if fault.should_fail("inline:verify") {
            Err("fault injection: post-inline verification rejected the module".to_string())
        } else {
            verify_module(&module).map_err(|es| render_verify_errors(&es))
        }
    };
    if let Err(detail) = verified {
        let mut f = PipelineFailure::new(
            "inline",
            "verify-failed",
            format!("post-inline verification failed: {detail}"),
        );
        f.incidents = incidents.iter().map(|i| i.to_string()).collect();
        return Err(f);
    }
    differential_guard(
        &mut module,
        &module0,
        &report.records,
        !report.promoted.is_empty(),
        cfg.eliminate_unreachable,
        runs,
        &mut incidents,
        &mut out,
    );
    if opts.opt {
        let pre_opt = module.clone();
        let (_, skipped, fixpoints) = optimize_module_observed(&mut module, &fault, obs);
        for s in skipped {
            incidents.push(Incident {
                stage: IncidentStage::OptPass,
                subject: format!("pass `{}` on `{}`", s.pass, s.func),
                detail: s.reason,
                rolled_back: true,
            });
        }
        for fx in fixpoints {
            incidents.push(Incident {
                stage: IncidentStage::OptFixpoint,
                detail: fx.to_string(),
                subject: format!("optimizer fixpoint in `{}`", fx.func),
                rolled_back: false,
            });
        }
        // The optimizer gets the same never-ship-a-miscompile
        // treatment, but wholesale: verify and re-compare, and
        // revert the whole optimization on any failure.
        let broken = verify_module(&module).is_err()
            || behavior(&module, runs).ok() != behavior(&pre_opt, runs).ok();
        if broken {
            module = pre_opt;
            incidents.push(Incident {
                stage: IncidentStage::Divergence,
                subject: "post-inline optimization".to_string(),
                detail: "optimized module failed verification or diverged; \
                         optimization reverted"
                    .to_string(),
                rolled_back: true,
            });
        }
    }
    let totals = report.classification.static_totals();
    let _ = writeln!(
        out,
        "; sites: {} total / {} external / {} pointer / {} unsafe / {} safe",
        totals.total(),
        totals.external,
        totals.pointer,
        totals.r#unsafe,
        totals.safe
    );
    // Summary lines reflect the *final* module: the differential
    // guard may have rolled expansions back since the report was
    // built, changing both code size and which functions died.
    let size_after = module.total_size();
    let _ = writeln!(
        out,
        "; expanded {} arcs; code size {} -> {} ({:+.1}%)",
        report.expanded.len(),
        report.size_before,
        size_after,
        if report.size_before == 0 {
            0.0
        } else {
            100.0 * (size_after as f64 - report.size_before as f64) / report.size_before as f64
        }
    );
    let removed: Vec<&str> = module0
        .functions
        .iter()
        .map(|f| f.name.as_str())
        .filter(|n| module.functions.iter().all(|f| f.name != *n))
        .collect();
    if !removed.is_empty() {
        let _ = writeln!(out, "; removed: {}", removed.join(", "));
    }
    if !report.promoted.is_empty() {
        let _ = writeln!(
            out,
            "; promoted {} indirect site(s) to guarded direct calls",
            report.promoted.len()
        );
    }
    match profile_runs(&module, runs, &VmConfig::default()) {
        Ok((after, _)) => {
            let _ = writeln!(
                out,
                "; dynamic calls {} -> {} ({:.1}% eliminated)",
                profile.calls,
                after.calls,
                if profile.calls == 0 {
                    0.0
                } else {
                    100.0 * profile.calls.saturating_sub(after.calls) as f64 / profile.calls as f64
                }
            );
        }
        Err(e) => {
            let _ = writeln!(out, "; warning: post-inline measurement run trapped: {e}");
        }
    }
    warn_unfired(&mut out, &fault);
    render_incidents(&mut out, &incidents);
    if opts.explain {
        out.push_str(&telemetry::explain_table(&report.decisions));
    }
    if !opts.quiet {
        out.push_str(&module_to_string(&module));
    }
    Ok((0, out, report.decisions))
}

/// Executes a parsed command; returns the process exit code and the text
/// to print.
///
/// # Errors
///
/// Returns a human-readable error message.
pub fn execute(opts: &Options) -> Result<(i32, String), String> {
    let mut out = String::new();
    if !matches!(opts.command.as_str(), "batch" | "fuzz")
        && (opts.journal.is_some() || opts.resume || opts.force_resume)
    {
        return Err(format!(
            "--journal/--resume/--force-resume only apply to campaign commands \
             (batch, fuzz), not `{}`",
            opts.command
        ));
    }
    if opts.command != "inline" && (opts.explain || opts.decisions_out.is_some()) {
        return Err(format!(
            "--explain/--decisions-out only apply to `inline` (the command that \
             plans inline expansion), not `{}`",
            opts.command
        ));
    }
    if !matches!(
        opts.command.as_str(),
        "inline" | "bench" | "batch" | "fuzz" | "serve" | "request"
    ) && (opts.trace_out.is_some() || opts.metrics_out.is_some())
    {
        return Err(format!(
            "--trace-out/--metrics-out only apply to pipeline commands \
             (inline, bench, batch, fuzz, serve, request), not `{}`",
            opts.command
        ));
    }
    if !matches!(opts.command.as_str(), "batch" | "serve")
        && (opts.jobs.is_some() || opts.cache_dir.is_some() || opts.cache_budget_bytes.is_some())
    {
        return Err(format!(
            "--jobs/--cache-dir/--cache-budget-bytes only apply to service \
             commands (batch, serve), not `{}`",
            opts.command
        ));
    }
    if opts.command != "serve" && opts.queue_depth.is_some() {
        return Err(format!(
            "--queue-depth only applies to `serve` (the command with a bounded \
             request queue), not `{}`",
            opts.command
        ));
    }
    if opts.command != "serve" && (opts.tcp.is_some() || opts.max_conns.is_some()) {
        return Err(format!(
            "--tcp/--max-conns only apply to `serve` (the daemon that binds \
             listeners), not `{}`",
            opts.command
        ));
    }
    if opts.command != "batch" && opts.remote.is_some() {
        return Err(format!(
            "--remote only applies to `batch` (shipping units to a daemon \
             fleet), not `{}`",
            opts.command
        ));
    }
    if opts.command != "request" && (opts.deadline_ms.is_some() || opts.ping) {
        return Err(format!(
            "--deadline-ms/--ping only apply to `request` (the client talking \
             to a serve daemon), not `{}`",
            opts.command
        ));
    }
    if opts.command != "request" && (opts.stats || opts.stats_prom || opts.stats_json) {
        return Err(format!(
            "--stats/--stats-prom/--stats-json only apply to `request` (the \
             client interrogating a serve daemon), not `{}`",
            opts.command
        ));
    }
    if opts.command != "serve" && opts.flight_recorder.is_some() {
        return Err(format!(
            "--flight-recorder only applies to `serve` (the daemon that keeps \
             the event ring), not `{}`",
            opts.command
        ));
    }
    if !matches!(opts.command.as_str(), "batch" | "request")
        && (opts.retries.is_some() || opts.retry_base_ms.is_some())
    {
        return Err(format!(
            "--retries/--retry-base-ms only apply to the commands that retry \
             (batch supervision, request client), not `{}`",
            opts.command
        ));
    }
    if !matches!(
        opts.command.as_str(),
        "run" | "inline" | "callgraph" | "bench" | "batch" | "fuzz" | "serve"
    ) && (opts.engine.is_some() || opts.icache)
    {
        return Err(format!(
            "--engine/--icache only apply to commands that execute code on the \
             VM (run, inline, callgraph, bench, batch, fuzz, serve), not `{}`",
            opts.command
        ));
    }
    match opts.command.as_str() {
        "compile" => {
            let module = compile_sources(&opts.positional)?;
            let _ = writeln!(
                out,
                "; {} functions, {} IL instructions",
                module.functions.len(),
                module.total_size()
            );
            if !opts.quiet {
                out.push_str(&module_to_string(&module));
            }
            Ok((0, out))
        }
        "run" => {
            let module = compile_sources(&opts.positional)?;
            let inputs = load_inputs(&opts.inputs)?;
            let vm_cfg = opts.vm_config(opts.fault_plan()?)?;
            let result = impact_vm::run(&module, inputs, opts.args.clone(), &vm_cfg)
                .map_err(|e| e.to_string())?;
            if let Some(path) = &opts.profile_out {
                report::atomic_write_path(
                    std::path::Path::new(path),
                    result.profile.to_text().as_bytes(),
                )?;
            }
            out.push_str(&String::from_utf8_lossy(&result.stdout));
            let _ = writeln!(
                out,
                "; exit {} after {} ILs ({} calls)",
                result.exit_code, result.profile.il_executed, result.profile.calls
            );
            if let Some(stats) = &result.icache {
                let _ = writeln!(
                    out,
                    "; icache: {} accesses, {} misses ({:.2}% miss ratio)",
                    stats.accesses,
                    stats.misses,
                    100.0 * stats.miss_ratio()
                );
            }
            warn_unfired(&mut out, &vm_cfg.fault);
            Ok((result.exit_code as i32, out))
        }
        "inline" => {
            let sources = read_sources(&opts.positional)?;
            let inputs = load_inputs(&opts.inputs)?;
            let runs = vec![(inputs, opts.args.clone())];
            let obs = telemetry::handle_for(opts);
            let (code, text, decisions) =
                inline_pipeline_observed(&sources, &runs, opts, &obs).map_err(|f| f.render())?;
            telemetry::write_artifacts(opts, &obs, Some(&decisions))?;
            Ok((code, text))
        }
        "callgraph" => {
            let module = compile_sources(&opts.positional)?;
            let inputs = load_inputs(&opts.inputs)?;
            let runs = vec![(inputs, opts.args.clone())];
            let cfg = VmConfig {
                engine: opts.engine_choice()?,
                ..VmConfig::default()
            };
            let (profile, _) = profile_runs(&module, &runs, &cfg).map_err(|e| e.to_string())?;
            let graph = CallGraph::build(&module, &profile.averaged());
            out.push_str(&graph.to_dot(&module));
            Ok((0, out))
        }
        "bench" => {
            let obs = telemetry::handle_for(opts);
            let Some(name) = opts.positional.first() else {
                let (code, text) = telemetry::run_bench_suite(opts, &obs)?;
                telemetry::write_artifacts(opts, &obs, None)?;
                out.push_str(&text);
                return Ok((code, out));
            };
            let b = impact_workloads::benchmark(name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            let ValidatedFlags {
                inline: mut cfg,
                vm: mut vm_cfg,
                ..
            } = opts.validate_flags()?;
            cfg.obs = obs.clone();
            vm_cfg.obs = obs.clone();
            let mut module =
                compile_with(&b.sources(), &obs).map_err(|e| e.render(&b.sources()))?;
            let module0 = module.clone();
            let runs = b.profile_run_set(4);
            let mut incidents: Vec<Incident> = Vec::new();
            let profile = acquire_profile(
                &module,
                &runs,
                &vm_cfg,
                None,
                cfg.weight_threshold,
                &mut incidents,
                &mut out,
            )?;
            let report = inline_module(&mut module, &profile.averaged(), &cfg);
            incidents.extend(report.incidents.iter().cloned());
            differential_guard(
                &mut module,
                &module0,
                &report.records,
                !report.promoted.is_empty(),
                cfg.eliminate_unreachable,
                &runs,
                &mut incidents,
                &mut out,
            );
            let after_cfg = VmConfig {
                engine: vm_cfg.engine,
                ..VmConfig::default()
            };
            let (after, _) = profile_runs(&module, &runs, &after_cfg).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "{name}: {} C lines, {} ILs/run, calls {} -> {} ({:.1}% eliminated), code {:+.1}%",
                b.c_lines(),
                profile.averaged().il_executed,
                profile.calls,
                after.calls,
                if profile.calls == 0 {
                    0.0
                } else {
                    100.0 * profile.calls.saturating_sub(after.calls) as f64 / profile.calls as f64
                },
                report.code_increase_percent()
            );
            warn_unfired(&mut out, &cfg.fault);
            if !incidents.is_empty() {
                render_incidents(&mut out, &incidents);
            }
            telemetry::write_artifacts(opts, &obs, None)?;
            Ok((0, out))
        }
        "batch" => supervise::run_batch(opts),
        "fuzz" => fuzz::run_fuzz(opts),
        "serve" => serve::run_serve(opts),
        "request" => serve::run_request(opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_option_set() {
        let o = Options::parse(&strs(&[
            "inline",
            "a.c",
            "b.c",
            "--input",
            "stdin=/tmp/x",
            "--arg",
            "-v",
            "--threshold",
            "5",
            "--budget",
            "1.5",
            "--stack-bound",
            "8192",
            "--linearize",
            "random:9",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(o.command, "inline");
        assert_eq!(o.positional, strs(&["a.c", "b.c"]));
        assert_eq!(o.inputs, vec![("stdin".to_string(), "/tmp/x".to_string())]);
        assert_eq!(o.args, strs(&["-v"]));
        assert_eq!(o.threshold, Some(5));
        assert_eq!(o.budget, Some(1.5));
        assert_eq!(o.stack_bound, Some(8192));
        assert!(o.quiet);
        let cfg = o.inline_config().unwrap();
        assert_eq!(cfg.weight_threshold, 5);
        assert_eq!(cfg.linearization, Linearization::Random(9));
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(Options::parse(&strs(&["compile", "--bogus"])).is_err());
        let o = Options::parse(&strs(&["teleport"])).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn engine_flag_resolves_and_rejects_unknown_names() {
        let o = Options::parse(&strs(&["run", "a.c"])).unwrap();
        assert_eq!(o.engine_choice().unwrap(), Engine::Bytecode);
        let o = Options::parse(&strs(&["run", "a.c", "--engine", "interp"])).unwrap();
        assert_eq!(o.engine_choice().unwrap(), Engine::Interp);
        let o = Options::parse(&strs(&["run", "a.c", "--engine", "bytecode"])).unwrap();
        assert_eq!(o.engine_choice().unwrap(), Engine::Bytecode);
        let o = Options::parse(&strs(&["run", "a.c", "--engine", "turbo"])).unwrap();
        let err = o.engine_choice().unwrap_err();
        assert!(err.contains("not a known execution engine"), "{err}");
        assert!(err.contains("interp") && err.contains("bytecode"), "{err}");
        // vm_config surfaces the same failure.
        assert!(o.vm_config(FaultPlan::new()).is_err());
    }

    #[test]
    fn engine_and_icache_only_apply_to_vm_commands() {
        for args in [
            vec!["compile", "a.c", "--engine", "interp"],
            vec!["compile", "a.c", "--icache"],
            vec!["request", "--engine", "bytecode"],
            vec!["request", "--icache"],
        ] {
            let o = Options::parse(&strs(&args)).unwrap();
            let err = execute(&o).unwrap_err();
            assert!(
                err.contains("only apply to commands that execute code"),
                "{args:?}: {err}"
            );
        }
    }

    #[test]
    fn both_engines_run_and_icache_composes() {
        let dir = std::env::temp_dir().join("impactc-test-engine");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("e.c");
        std::fs::write(
            &src,
            "int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += i; return s; }",
        )
        .unwrap();
        let path = src.to_str().unwrap();

        let mut outs = Vec::new();
        for engine in ["interp", "bytecode"] {
            let o = Options::parse(&strs(&["run", path, "--engine", engine, "--icache"])).unwrap();
            let (code, out) = execute(&o).unwrap();
            assert_eq!(code, 45, "{engine}");
            assert!(out.contains("icache:"), "{engine}: {out}");
            outs.push(out);
        }
        // The simulated stream (and thus the stats line) is identical
        // on both engines.
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn compile_and_run_a_real_file() {
        let dir = std::env::temp_dir().join("impactc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("t.c");
        std::fs::write(&src, "int main() { return 41 + 1; }").unwrap();

        let o = Options::parse(&strs(&["compile", src.to_str().unwrap()])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("func"));

        let o = Options::parse(&strs(&["run", src.to_str().unwrap()])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 42);
        assert!(out.contains("exit 42"));
    }

    #[test]
    fn inline_pipeline_over_files() {
        let dir = std::env::temp_dir().join("impactc-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("hot.c");
        std::fs::write(
            &src,
            "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 50; i++) s += sq(i); return s & 0xff; }",
        )
        .unwrap();
        let o = Options::parse(&strs(&["inline", src.to_str().unwrap(), "--quiet"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("expanded 1 arcs"), "{out}");
        assert!(out.contains("100.0% eliminated"), "{out}");
    }

    #[test]
    fn callgraph_emits_dot() {
        let dir = std::env::temp_dir().join("impactc-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("g.c");
        std::fs::write(
            &src,
            "int f(int x) { return x; } int main() { return f(1); }",
        )
        .unwrap();
        let o = Options::parse(&strs(&["callgraph", src.to_str().unwrap()])).unwrap();
        let (_, out) = execute(&o).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("main"));
    }

    #[test]
    fn bench_command_runs_a_suite_member() {
        let o = Options::parse(&strs(&["bench", "wc"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("wc:"), "{out}");
        assert!(out.contains("eliminated"), "{out}");
    }
}

#[cfg(test)]
mod profile_flag_tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn profile_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("impactc-prof");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("p.c");
        std::fs::write(
            &src,
            "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 30; i++) s += sq(i); return s & 0x7f; }",
        )
        .unwrap();
        let prof = dir.join("p.profile");

        // run --profile-out
        let o = Options::parse(&strs(&[
            "run",
            src.to_str().unwrap(),
            "--profile-out",
            prof.to_str().unwrap(),
        ]))
        .unwrap();
        let (_, _) = execute(&o).unwrap();
        let text = std::fs::read_to_string(&prof).unwrap();
        assert!(text.starts_with("impact-profile v1"));

        // inline --profile-in (no re-profiling run needed)
        let o = Options::parse(&strs(&[
            "inline",
            src.to_str().unwrap(),
            "--profile-in",
            prof.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("expanded 1 arcs"), "{out}");
    }

    #[test]
    fn promote_indirect_flag_reaches_config() {
        let o = Options::parse(&strs(&["inline", "x.c", "--promote-indirect"])).unwrap();
        assert!(o.inline_config().unwrap().promote_indirect);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    const HOT_TWO: &str = "int sq(int x) { return x * x; }\n\
         int cube(int x) { return x * x * x; }\n\
         int main() { int i; int s; s = 0;\n\
           for (i = 0; i < 100; i++) { s += sq(i); s += cube(i); }\n\
           return s & 0xff; }";

    fn write_src(dir: &str, name: &str, text: &str) -> String {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn numeric_flag_validation() {
        for bad in [
            vec!["inline", "x.c", "--budget", "NaN"],
            vec!["inline", "x.c", "--budget", "inf"],
            vec!["inline", "x.c", "--budget", "0.5"],
            vec!["inline", "x.c", "--stack-bound", "0"],
        ] {
            let o = Options::parse(&strs(&bad)).unwrap();
            let err = o.inline_config().unwrap_err();
            assert!(
                err.contains("--budget") || err.contains("--stack-bound"),
                "unactionable message: {err}"
            );
        }
        // The boundary value 1.0 is allowed.
        let o = Options::parse(&strs(&["inline", "x.c", "--budget", "1.0"])).unwrap();
        assert_eq!(o.inline_config().unwrap().code_growth_limit, 1.0);
    }

    #[test]
    fn governor_flag_validation() {
        let o = Options::parse(&strs(&["run", "x.c", "--fuel", "0"])).unwrap();
        let err = o.vm_config(FaultPlan::new()).unwrap_err();
        assert!(err.contains("--fuel"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["run", "x.c", "--mem-limit", "0"])).unwrap();
        let err = o.vm_config(FaultPlan::new()).unwrap_err();
        assert!(err.contains("--mem-limit"), "unactionable message: {err}");
        let o = Options::parse(&strs(&[
            "run",
            "x.c",
            "--fuel",
            "500",
            "--mem-limit",
            "4096",
        ]))
        .unwrap();
        let cfg = o.vm_config(FaultPlan::new()).unwrap();
        assert_eq!(cfg.max_steps, 500);
        assert_eq!(cfg.mem_limit, Some(4096));
    }

    #[test]
    fn service_flag_validation() {
        let o = Options::parse(&strs(&["batch", "u.c", "--jobs", "0"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--jobs"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["serve", "s.sock", "--queue-depth", "0"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--queue-depth"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["batch", "u.c", "--cache-dir", ""])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--cache-dir"), "unactionable message: {err}");
        // Explicit values round-trip; the default queue bound is applied.
        let o = Options::parse(&strs(&[
            "serve",
            "s.sock",
            "--jobs",
            "4",
            "--cache-dir",
            "/tmp/c",
        ]))
        .unwrap();
        let svc = o.service_config().unwrap();
        assert_eq!(svc.jobs, 4);
        assert_eq!(svc.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(
            svc.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        // validate_flags surfaces the same rejection.
        let o = Options::parse(&strs(&["batch", "u.c", "--jobs", "0"])).unwrap();
        assert!(o.validate_flags().unwrap_err().contains("--jobs"));
    }

    #[test]
    fn cache_budget_flag_validation() {
        // A zero budget would make the cache useless; reject it outright.
        let o = Options::parse(&strs(&[
            "serve",
            "s.sock",
            "--cache-dir",
            "/tmp/c",
            "--cache-budget-bytes",
            "0",
        ]))
        .unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--cache-budget-bytes"), "unactionable: {err}");
        // A budget without a cache has nothing to bound.
        let o = Options::parse(&strs(&["serve", "s.sock", "--cache-budget-bytes", "64"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--cache-dir"), "unactionable: {err}");
        // A positive budget with a cache dir rides through to the config.
        let o = Options::parse(&strs(&[
            "batch",
            "u.c",
            "--cache-dir",
            "/tmp/c",
            "--cache-budget-bytes",
            "4096",
        ]))
        .unwrap();
        assert_eq!(o.service_config().unwrap().cache_budget_bytes, Some(4096));
    }

    #[test]
    fn deadline_flag_validation() {
        let o = Options::parse(&strs(&["request", "s.sock", "x.c", "--deadline-ms", "0"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--deadline-ms"), "unactionable: {err}");
    }

    #[test]
    fn tcp_flag_validation() {
        // Anything that is not HOST:PORT with a nonzero u16 port is
        // rejected — a Unix path here means the operator swapped flags.
        for bad in [
            "7070",
            "host:",
            ":7070",
            "host:0",
            "host:99999",
            "/tmp/d.sock",
        ] {
            let o = Options::parse(&strs(&["serve", "s.sock", "--tcp", bad])).unwrap();
            let err = o.service_config().unwrap_err();
            assert!(err.contains("--tcp"), "`{bad}`: unactionable: {err}");
        }
        let o = Options::parse(&strs(&["serve", "s.sock", "--tcp", "127.0.0.1:7070"])).unwrap();
        assert_eq!(
            o.service_config().unwrap().tcp.as_deref(),
            Some("127.0.0.1:7070")
        );
    }

    #[test]
    fn max_conns_zero_is_rejected() {
        let o = Options::parse(&strs(&["serve", "s.sock", "--max-conns", "0"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--max-conns"), "unactionable: {err}");
        let o = Options::parse(&strs(&["serve", "s.sock", "--max-conns", "2"])).unwrap();
        assert_eq!(o.service_config().unwrap().max_conns, Some(2));
    }

    #[test]
    fn remote_endpoint_list_validation() {
        for bad in ["", ",", "a.sock,", ",a.sock", "a.sock,,b.sock"] {
            let o = Options::parse(&strs(&["batch", "u.c", "--remote", bad])).unwrap();
            let err = o.service_config().unwrap_err();
            assert!(err.contains("--remote"), "`{bad}`: unactionable: {err}");
        }
        let o = Options::parse(&strs(&["batch", "u.c", "--remote", "a.sock,host:9000"])).unwrap();
        assert!(o.service_config().is_ok());
    }

    #[test]
    fn ping_rejects_a_multi_endpoint_list() {
        let o = Options::parse(&strs(&["request", "a.sock,b.sock", "--ping"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--ping"), "unactionable: {err}");
        let o = Options::parse(&strs(&["request", "a.sock", "--ping"])).unwrap();
        assert!(o.service_config().is_ok());
    }

    #[test]
    fn stats_formats_are_mutually_exclusive() {
        let o = Options::parse(&strs(&["request", "a.sock", "--stats", "--stats-prom"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(
            err.contains("--stats") && err.contains("--stats-prom"),
            "unactionable: {err}"
        );
        let o = Options::parse(&strs(&[
            "request",
            "a.sock",
            "--stats-prom",
            "--stats-json",
        ]))
        .unwrap();
        assert!(o.service_config().is_err());
        let o = Options::parse(&strs(&["request", "a.sock", "--stats"])).unwrap();
        assert!(o.service_config().is_ok());
    }

    #[test]
    fn stats_rejects_ping_in_the_same_request() {
        let o = Options::parse(&strs(&["request", "a.sock", "--stats", "--ping"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(
            err.contains("--stats") && err.contains("--ping"),
            "unactionable: {err}"
        );
    }

    #[test]
    fn stats_rejects_a_multi_endpoint_list() {
        let o = Options::parse(&strs(&["request", "a.sock,b.sock", "--stats-prom"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--stats-prom"), "unactionable: {err}");
        let o = Options::parse(&strs(&["request", "a.sock", "--stats-prom"])).unwrap();
        assert!(o.service_config().is_ok());
    }

    #[test]
    fn flight_recorder_zero_is_rejected() {
        let o = Options::parse(&strs(&["serve", "s.sock", "--flight-recorder", "0"])).unwrap();
        let err = o.service_config().unwrap_err();
        assert!(err.contains("--flight-recorder"), "unactionable: {err}");
        let o = Options::parse(&strs(&["serve", "s.sock", "--flight-recorder", "16"])).unwrap();
        assert_eq!(o.service_config().unwrap().flight_recorder, 16);
        let o = Options::parse(&strs(&["serve", "s.sock"])).unwrap();
        assert_eq!(
            o.service_config().unwrap().flight_recorder,
            impact_obs::DEFAULT_FLIGHT_CAPACITY
        );
    }

    #[test]
    fn observability_flags_are_scoped_to_their_commands() {
        // Stats snapshots are a request-client interrogation...
        for flag in ["--stats", "--stats-prom", "--stats-json"] {
            let o = Options::parse(&strs(&["batch", "u.c", flag])).unwrap();
            let err = execute(&o).unwrap_err();
            assert!(err.contains("--stats"), "{flag}: unactionable: {err}");
        }
        // ...and the flight-recorder ring lives in the daemon.
        let o = Options::parse(&strs(&["request", "s.sock", "--flight-recorder", "8"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--flight-recorder"), "unactionable: {err}");
    }

    #[test]
    fn transport_flags_are_scoped_to_their_commands() {
        // --tcp and --max-conns belong to the daemon...
        let o = Options::parse(&strs(&["request", "s.sock", "x.c", "--tcp", "h:1"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--tcp"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["batch", "u.c", "--max-conns", "4"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--max-conns"), "unactionable message: {err}");
        // ...and --remote to batch.
        let o = Options::parse(&strs(&["request", "s.sock", "x.c", "--remote", "a.sock"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--remote"), "unactionable message: {err}");
    }

    #[test]
    fn service_flags_are_scoped_to_service_commands() {
        let o = Options::parse(&strs(&["inline", "x.c", "--jobs", "2"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--jobs"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["run", "x.c", "--cache-dir", "/tmp/c"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--cache-dir"), "unactionable message: {err}");
        // --queue-depth is serve-only: even batch rejects it.
        let o = Options::parse(&strs(&["batch", "u.c", "--queue-depth", "4"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--queue-depth"), "unactionable message: {err}");
        // --cache-budget-bytes is service-only, like --cache-dir.
        let o = Options::parse(&strs(&["run", "x.c", "--cache-budget-bytes", "64"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--cache-budget-bytes"), "unactionable: {err}");
        // The client knobs are request-only.
        let o = Options::parse(&strs(&["batch", "u.c", "--deadline-ms", "500"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--deadline-ms"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["serve", "s.sock", "--ping"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--ping"), "unactionable message: {err}");
        // Retry knobs belong to the two retrying commands only.
        let o = Options::parse(&strs(&["run", "x.c", "--retries", "3"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("--retries"), "unactionable message: {err}");
        let o = Options::parse(&strs(&["fuzz", "--retry-base-ms", "5"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(
            err.contains("--retry-base-ms"),
            "unactionable message: {err}"
        );
    }

    #[test]
    fn fuel_flag_bounds_a_run() {
        let src = write_src(
            "impactc-governor1",
            "spin.c",
            "int main() { int i; int s; s = 0; for (i = 0; i < 100000; i++) s += i; return s & 1; }",
        );
        let o = Options::parse(&strs(&["run", &src, "--fuel", "50"])).unwrap();
        let err = execute(&o).unwrap_err();
        assert!(err.contains("instruction budget"), "{err}");
    }

    #[test]
    fn mem_limit_flag_bounds_a_run() {
        let src = write_src(
            "impactc-governor2",
            "alloc.c",
            "extern long __malloc(long n);\n\
             int main() { long p; p = __malloc(100000); if (p == 0) return 1; return 0; }",
        );
        // Without a quota the allocation succeeds...
        let o = Options::parse(&strs(&["run", &src])).unwrap();
        let (code, _) = execute(&o).unwrap();
        assert_eq!(code, 0);
        // ...and the governor's quota makes the program observe NULL.
        let o = Options::parse(&strs(&["run", &src, "--mem-limit", "1024"])).unwrap();
        let (code, _) = execute(&o).unwrap();
        assert_eq!(code, 1);
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        let o = Options::parse(&strs(&["inline", "x.c", "--fault", "nocolon"])).unwrap();
        assert!(o.inline_config().unwrap_err().contains("--fault"));
        let o = Options::parse(&strs(&["inline", "x.c", "--fault", "vm:oom=x"])).unwrap();
        assert!(o.fault_plan().is_err());
    }

    #[test]
    fn expand_fault_rolls_back_one_arc_and_exits_zero() {
        let src = write_src("impactc-recover1", "hot.c", HOT_TWO);
        let o = Options::parse(&strs(&[
            "inline",
            &src,
            "--quiet",
            "--fault",
            "expand:verify:1",
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("; incidents: 1 (1 rolled back)"), "{out}");
        assert!(out.contains("[expand]"), "{out}");
        // The other arc still expanded: half the dynamic calls are gone.
        assert!(out.contains("50.0% eliminated"), "{out}");
    }

    #[test]
    fn corrupt_profile_in_degrades_to_unprofiled_inlining() {
        let src = write_src("impactc-recover2", "hot.c", HOT_TWO);
        let prof = write_src("impactc-recover2", "bad.profile", "not a profile at all");
        let o = Options::parse(&strs(&["inline", &src, "--profile-in", &prof, "--quiet"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("warning"), "{out}");
        assert!(out.contains("falling back to unprofiled"), "{out}");
        assert!(out.contains("[profile]"), "{out}");
        // Threshold-only inlining still expands the hot arcs.
        assert!(out.contains("expanded 2 arcs"), "{out}");
    }

    #[test]
    fn profile_parse_fault_degrades_a_good_profile() {
        let src = write_src("impactc-recover3", "hot.c", HOT_TWO);
        let prof = std::env::temp_dir()
            .join("impactc-recover3")
            .join("good.profile");
        let o = Options::parse(&strs(&[
            "run",
            &src,
            "--profile-out",
            prof.to_str().unwrap(),
        ]))
        .unwrap();
        execute(&o).unwrap();

        let o = Options::parse(&strs(&[
            "inline",
            &src,
            "--profile-in",
            prof.to_str().unwrap(),
            "--quiet",
            "--fault",
            "profile:parse",
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(
            out.contains("fault injection corrupted the profile read"),
            "{out}"
        );
        assert!(out.contains("; incidents: 1 (0 rolled back)"), "{out}");
    }

    #[test]
    fn trapping_profile_run_degrades_instead_of_erroring() {
        let src = write_src(
            "impactc-recover4",
            "trap.c",
            "int sq(int x) { return x * x; }\n\
             int main() { int z; z = 0; return sq(3) / z; }",
        );
        let o = Options::parse(&strs(&["inline", &src, "--quiet"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("profiling run trapped"), "{out}");
        assert!(out.contains("falling back to unprofiled"), "{out}");
    }

    #[test]
    fn opt_pass_fault_is_isolated_and_reported() {
        let src = write_src("impactc-recover5", "hot.c", HOT_TWO);
        let o = Options::parse(&strs(&[
            "inline",
            &src,
            "--quiet",
            "--opt",
            "--fault",
            "opt:pass:1",
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("[opt]"), "{out}");
        assert!(out.contains("rolled back)"), "{out}");
    }

    #[test]
    fn differential_net_bisects_a_real_stack_divergence() {
        // Inlining `leaf` (2 KiB frame) into `rec` passes the paper's
        // per-frame stack bound but multiplies the frame across 10 000
        // recursion levels, overflowing the VM's 4 MiB stack — a genuine
        // behavior divergence only the differential net can catch. The
        // bisect must roll back exactly that arc and keep the harmless
        // `leaf` -> `main` expansion.
        let src = write_src(
            "impactc-recover7",
            "deep.c",
            "int leaf(int x) { char a[2048]; a[0] = x; a[x & 1023] = 1; return a[0] + a[x & 1023]; }\n\
             int rec(int n) { if (n <= 0) return 0; return leaf(n) + rec(n - 1); }\n\
             int main() { int i; int s; s = 0;\n\
               for (i = 0; i < 20000; i++) s += leaf(i);\n\
               s += rec(10000);\n\
               return s & 0xff; }",
        );
        let o = Options::parse(&strs(&["inline", &src, "--quiet"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("behavior diverged"), "{out}");
        assert!(out.contains("[differential]"), "{out}");
        assert!(
            out.contains("`leaf` -> `rec`"),
            "bisect should name the offending arc: {out}"
        );
        assert!(
            !out.contains("`leaf` -> `main`"),
            "the harmless arc must survive: {out}"
        );
        assert!(out.contains("(1 rolled back)"), "{out}");
    }

    #[test]
    fn clean_run_reports_zero_incidents() {
        let src = write_src("impactc-recover6", "hot.c", HOT_TWO);
        let o = Options::parse(&strs(&["inline", &src, "--quiet", "--opt"])).unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("; incidents: 0 (0 rolled back)"), "{out}");
        assert!(out.contains("100.0% eliminated"), "{out}");
    }
}
