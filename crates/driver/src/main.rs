//! `impactc` — command-line driver for the IMPACT inline-expansion
//! pipeline, including the batch supervisor (`batch --jobs N`) and the
//! compile daemon (`serve` / `request`). See `impactc` with no
//! arguments for usage.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match impact_driver::Options::parse(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match impact_driver::execute(&opts) {
        Ok((code, out)) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(msg) => {
            eprintln!("impactc: {msg}");
            std::process::exit(2);
        }
    }
}
