//! Source-level delta-debugging reproducer minimization.
//!
//! PR 1's differential safety net bisects *arcs* to isolate one offending
//! expansion. This module generalizes the idea to the *source* level: when
//! the batch supervisor quarantines a unit, it greedily shrinks the unit's
//! C source while a caller-supplied predicate confirms that the failure
//! signature is preserved, producing the smallest reproducer the budget
//! allows. The result is embedded in the crash report and written as a
//! `.repro.c` file that replays with `impactc inline`.
//!
//! Two greedy phases, coarse to fine:
//!
//! 1. **top-level chunks** — whole functions and global declarations,
//!    found by brace/semicolon scanning at nesting depth zero (string,
//!    character, and comment syntax is respected so a `{` in a literal
//!    never confuses the chunker);
//! 2. **lines** — repeated single-line removal sweeps until a sweep
//!    removes nothing or the evaluation budget is exhausted.
//!
//! Every candidate is validated with the predicate before it is kept, so
//! the output is *always* a true reproducer; the phases only affect how
//! small it gets.

/// The outcome of a minimization run.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized source text (still triggers the original signature).
    pub source: String,
    /// Byte length of the original source.
    pub original_bytes: usize,
    /// Byte length of the minimized source.
    pub reduced_bytes: usize,
    /// Candidate evaluations spent.
    pub evals: usize,
}

/// Splits C source into top-level chunks: every byte of the input lands in
/// exactly one chunk, and chunk boundaries fall after a `}` or `;` at
/// brace depth zero (plus any trailing whitespace up to and including the
/// newline). Comments and string/char literals are skipped, so braces
/// inside them do not affect the depth.
pub fn top_level_chunks(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment,
        Str,
        Chr,
    }
    let bytes = text.as_bytes();
    let mut chunks = Vec::new();
    let mut depth: i64 = 0;
    let mut start = 0usize;
    let mut st = St::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match st {
            St::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => st = St::LineComment,
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    st = St::BlockComment;
                    i += 1;
                }
                b'"' => st = St::Str,
                b'\'' => st = St::Chr,
                b'{' => depth += 1,
                b'}' | b';' => {
                    if b == b'}' {
                        depth -= 1;
                    }
                    if depth <= 0 {
                        // Extend through trailing horizontal space and one
                        // newline so removing a chunk removes its line.
                        let mut end = i + 1;
                        while end < bytes.len() && (bytes[end] == b' ' || bytes[end] == b'\t') {
                            end += 1;
                        }
                        if end < bytes.len() && bytes[end] == b'\r' {
                            end += 1;
                        }
                        if end < bytes.len() && bytes[end] == b'\n' {
                            end += 1;
                        }
                        chunks.push(text[start..end].to_string());
                        start = end;
                        i = end;
                        continue;
                    }
                }
                _ => {}
            },
            St::LineComment => {
                if b == b'\n' {
                    st = St::Code;
                }
            }
            St::BlockComment => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    st = St::Code;
                    i += 1;
                }
            }
            St::Str => match b {
                b'\\' => i += 1,
                b'"' => st = St::Code,
                _ => {}
            },
            St::Chr => match b {
                b'\\' => i += 1,
                b'\'' => st = St::Code,
                _ => {}
            },
        }
        i += 1;
    }
    if start < bytes.len() {
        chunks.push(text[start..].to_string());
    }
    chunks
}

/// Greedily minimizes `original` under `check` (which must return `true`
/// when a candidate still triggers the original failure signature).
/// `check` is never called on the original text — the caller has already
/// established that it fails. At most `max_evals` candidates are tried.
pub fn shrink(
    original: &str,
    check: &mut dyn FnMut(&str) -> bool,
    max_evals: usize,
) -> ShrinkResult {
    let mut evals = 0usize;
    let budget = |evals: &mut usize| {
        *evals += 1;
        *evals <= max_evals
    };

    // Phase 1: drop whole top-level chunks, scanning from the end so that
    // helpers defined above their callers tend to be removed after the
    // callers that reference them are gone.
    let mut chunks = top_level_chunks(original);
    let mut i = chunks.len();
    while i > 0 {
        i -= 1;
        if chunks.len() <= 1 {
            break;
        }
        if !budget(&mut evals) {
            break;
        }
        let removed = chunks.remove(i);
        let candidate: String = chunks.concat();
        if !check(&candidate) {
            chunks.insert(i, removed);
        }
    }
    let mut current: String = chunks.concat();

    // Phase 2: repeated single-line removal sweeps.
    loop {
        let mut lines: Vec<&str> = current.split_inclusive('\n').collect();
        let mut changed = false;
        let mut j = lines.len();
        let mut out_of_budget = false;
        while j > 0 {
            j -= 1;
            if lines.len() <= 1 {
                break;
            }
            // Blank lines never affect a failure signature: drop them for
            // free (this also guarantees progress on padded sources).
            if lines[j].trim().is_empty() {
                lines.remove(j);
                changed = true;
                continue;
            }
            if !budget(&mut evals) {
                out_of_budget = true;
                break;
            }
            let removed = lines.remove(j);
            let candidate: String = lines.concat();
            if check(&candidate) {
                changed = true;
            } else {
                lines.insert(j, removed);
            }
        }
        current = lines.concat();
        if !changed || out_of_budget {
            break;
        }
    }

    ShrinkResult {
        original_bytes: original.len(),
        reduced_bytes: current.len(),
        evals: evals.min(max_evals),
        source: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "int helper(int x) { return x + 1; }\n\
        int unused(int y) { char s[4]; s[0] = '{'; return y; }\n\
        /* a { comment } */\n\
        int main() { return helper(41); }\n";

    #[test]
    fn chunker_covers_the_whole_text() {
        let chunks = top_level_chunks(PROG);
        assert_eq!(chunks.concat(), PROG, "chunks partition the input");
        assert!(
            chunks.len() >= 3,
            "one chunk per top-level item: {chunks:?}"
        );
    }

    #[test]
    fn chunker_ignores_braces_in_literals_and_comments() {
        let chunks = top_level_chunks(PROG);
        // `unused` ends at its real closing brace despite '{' in a char
        // literal; the comment is glued to the following chunk or its own.
        assert!(chunks.iter().any(|c| c.contains("unused")));
        let unused = chunks.iter().find(|c| c.contains("unused")).unwrap();
        assert!(unused.trim_end().ends_with('}'));
    }

    #[test]
    fn shrink_drops_everything_the_predicate_allows() {
        // Failure "signature": source still defines main.
        let mut check = |s: &str| s.contains("int main");
        let r = shrink(PROG, &mut check, 100);
        assert!(r.source.contains("int main"));
        assert!(!r.source.contains("unused"), "{}", r.source);
        assert!(!r.source.contains("helper(int"), "{}", r.source);
        assert!(r.reduced_bytes < r.original_bytes);
        assert!(r.evals > 0);
    }

    #[test]
    fn shrink_respects_the_eval_budget() {
        let mut calls = 0usize;
        let mut check = |_: &str| {
            calls += 1;
            false
        };
        let r = shrink(PROG, &mut check, 3);
        assert!(calls <= 3);
        assert_eq!(r.evals, 3);
        // Nothing could be dropped except blank lines; text survives.
        assert!(r.source.contains("unused"));
    }

    #[test]
    fn shrink_keeps_semantically_required_lines() {
        // The predicate requires both main and helper to survive.
        let mut check = |s: &str| s.contains("main") && s.contains("helper(41)");
        let r = shrink(PROG, &mut check, 200);
        assert!(r.source.contains("helper(41)"));
        assert!(!r.source.contains("unused"));
    }
}
