//! Work-stealing compile pool for parallel campaigns.
//!
//! The pool runs a fixed set of tasks (identified by index) across `workers`
//! threads. Each worker owns a deque seeded round-robin with its share of
//! the tasks; an idle worker steals from the *back* of a victim's deque so
//! owners and thieves contend on opposite ends. The pool is deliberately
//! simple — a `Mutex<VecDeque>` per worker, not a lock-free deque — because
//! compile units run for milliseconds to seconds and queue operations are
//! noise by comparison.
//!
//! Robustness properties the rest of the driver relies on:
//!
//! - **Events are delivered on the caller's thread.** Workers send
//!   [`PoolEvent`]s over a channel and the caller's `on_event` closure runs
//!   them single-threaded. The batch supervisor uses this to keep the
//!   journal a single-writer structure: appends happen only inside
//!   `on_event`, so concurrent unit completion can never interleave torn
//!   records.
//! - **Per-task ordering.** An mpsc channel preserves per-sender order, so
//!   `Started(i)` always arrives before `Done(i, _)` for the same task.
//! - **Worker panics cannot take down the pool.** The task closure runs
//!   under `catch_unwind`; a panic becomes `Done(i, Err(message))` and the
//!   remaining tasks still run.
//! - **Every task produces exactly one `Done` event.** The caller can count
//!   completions to know the pool has drained.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// Thread-name prefix for pool workers. It extends
/// [`crate::supervise::WORKER_THREAD`] so the shared panic hook silences
/// expected worker panics in pool runs too.
pub const POOL_THREAD: &str = "supervise-worker-pool";

/// Progress events delivered to the caller's `on_event` closure, on the
/// caller's thread.
#[derive(Debug)]
pub enum PoolEvent<R> {
    /// Task `i` was claimed by a worker and is about to run.
    Started(usize),
    /// Task `i` finished. `Err` carries the panic message if the task
    /// closure panicked; the pool itself keeps running.
    Done(usize, Result<R, String>),
}

/// Runs `tasks` (a list of task indices) across `workers` threads and
/// delivers a [`PoolEvent`] stream to `on_event` on the calling thread.
///
/// Returns the number of successful steals (tasks executed by a worker
/// other than the one whose deque they were seeded into).
///
/// If `on_event` returns an error, the remaining events are still drained
/// (workers are never left blocked on a full channel) and the first error
/// is returned after the pool joins.
///
/// # Errors
///
/// Returns the first error produced by `on_event`.
pub fn run<R, F, E>(tasks: &[usize], workers: usize, f: F, mut on_event: E) -> Result<u64, String>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    E: FnMut(PoolEvent<R>) -> Result<(), String>,
{
    let workers = workers.clamp(1, tasks.len().max(1));
    // Round-robin seeding: task k goes to deque k % workers. The steal
    // counter below counts tasks that ran elsewhere.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                tasks
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| k % workers == w)
                    .map(|(_, &t)| t)
                    .collect(),
            )
        })
        .collect();
    let steals = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<PoolEvent<R>>();
    let total = tasks.len();
    let mut first_err: Option<String> = None;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let steals = &steals;
            let f = &f;
            let builder = std::thread::Builder::new().name(format!("{POOL_THREAD}{w}"));
            builder
                .spawn_scoped(scope, move || loop {
                    // Own deque first (front), then steal from victims
                    // (back). `unwrap_or_else(into_inner)` keeps the pool
                    // alive even if a panic poisoned a deque lock.
                    let mut claimed = lock(&deques[w]).pop_front();
                    if claimed.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            if let Some(t) = lock(&deques[victim]).pop_back() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                claimed = Some(t);
                                break;
                            }
                        }
                    }
                    let Some(task) = claimed else { break };
                    if tx.send(PoolEvent::Started(task)).is_err() {
                        break;
                    }
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(task)))
                        .map_err(|p| {
                            format!(
                                "pool worker panicked: {}",
                                crate::supervise::panic_message(p)
                            )
                        });
                    if tx.send(PoolEvent::Done(task, result)).is_err() {
                        break;
                    }
                })
                .expect("spawn pool worker");
        }
        drop(tx);
        let mut done = 0usize;
        while done < total {
            let Ok(ev) = rx.recv() else { break };
            if matches!(ev, PoolEvent::Done(..)) {
                done += 1;
            }
            if let Err(e) = on_event(ev) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    });

    match first_err {
        Some(e) => Err(e),
        None => Ok(steals.load(Ordering::Relaxed)),
    }
}

/// Locks a deque, recovering from poison: a worker panic inside `f` is
/// already contained by `catch_unwind`, and deque contents (plain indices)
/// cannot be left in a broken state.
fn lock(m: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let tasks: Vec<usize> = (0..40).collect();
        let ran = AtomicUsize::new(0);
        let mut started = vec![false; 40];
        let mut done = vec![false; 40];
        let steals = run(
            &tasks,
            4,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i * 2
            },
            |ev| {
                match ev {
                    PoolEvent::Started(i) => {
                        assert!(!started[i], "task {i} started twice");
                        started[i] = true;
                    }
                    PoolEvent::Done(i, r) => {
                        assert!(started[i], "task {i} done before started");
                        assert!(!done[i], "task {i} done twice");
                        assert_eq!(r.unwrap(), i * 2);
                        done[i] = true;
                    }
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 40);
        assert!(done.iter().all(|&d| d), "all tasks completed");
        // With 4 workers over 40 fast tasks steals may or may not occur;
        // only the invariant that the count is bounded is checkable.
        assert!(steals <= 40);
    }

    #[test]
    fn single_worker_preserves_task_order() {
        let tasks: Vec<usize> = vec![3, 1, 4, 1, 5];
        let mut order = Vec::new();
        run(
            &tasks,
            1,
            |i| i,
            |ev| {
                if let PoolEvent::Done(_, Ok(v)) = ev {
                    order.push(v);
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(order, tasks);
    }

    #[test]
    fn panicking_task_yields_err_and_pool_survives() {
        let tasks: Vec<usize> = (0..8).collect();
        let mut results = vec![None; 8];
        run(
            &tasks,
            3,
            |i| {
                assert!(i != 5, "task five exploded");
                i
            },
            |ev| {
                if let PoolEvent::Done(i, r) = ev {
                    results[i] = Some(r);
                }
                Ok(())
            },
        )
        .unwrap();
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().expect("every task reports Done");
            if i == 5 {
                let msg = r.as_ref().unwrap_err();
                assert!(
                    msg.contains("task five exploded"),
                    "panic message propagated: {msg}"
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn on_event_error_is_returned_after_drain() {
        let tasks: Vec<usize> = (0..6).collect();
        let mut seen = 0;
        let err = run(
            &tasks,
            2,
            |i| i,
            |ev| {
                if matches!(ev, PoolEvent::Done(..)) {
                    seen += 1;
                    if seen == 2 {
                        return Err("journal full".to_string());
                    }
                }
                Ok(())
            },
        )
        .unwrap_err();
        assert_eq!(err, "journal full");
        // The pool drained every event even after the failure.
        assert_eq!(seen, 6);
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let tasks: Vec<usize> = vec![0, 1];
        let mut done = 0;
        run(
            &tasks,
            64,
            |i| i,
            |ev| {
                if matches!(ev, PoolEvent::Done(..)) {
                    done += 1;
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(done, 2);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let steals = run(&[], 4, |i| i, |_ev| Ok(())).unwrap();
        assert_eq!(steals, 0);
    }
}
