//! Structured failure classification and JSON crash reports.
//!
//! Batch supervision turns every quarantined unit into a small, replayable
//! artifact instead of a stack trace: a versioned JSON document carrying
//! the failure signature, the configuration and governor limits in force,
//! the per-attempt history, the incident chain the recovery layer
//! collected before the hard failure, and a delta-debugged reproducer
//! (also written next to the JSON as a plain `.repro.c` file so it can be
//! replayed directly with `impactc inline`).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::minimize::ShrinkResult;
use crate::Options;

/// Hidden staging subdirectory used by [`atomic_write_in`]: in-flight
/// bytes live here (as `<name>.tmp`) until the final rename, so a crash
/// can never leave a partially-written file among the observable reports.
pub const STAGING_DIR: &str = ".staging";

/// Atomically publishes `bytes` as `dir/name`: write to
/// `dir/.staging/name.tmp`, fsync, rename into place, fsync the
/// directory. Readers (and a post-crash scan of `dir`) either see the
/// complete file or no file — never a torn one. Re-emitting the same
/// report is idempotent: the rename replaces the old copy whole.
///
/// # Errors
///
/// Returns a message on filesystem errors.
pub fn atomic_write_in(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, String> {
    let staging = dir.join(STAGING_DIR);
    std::fs::create_dir_all(&staging)
        .map_err(|e| format!("cannot create staging dir `{}`: {e}", staging.display()))?;
    let tmp = staging.join(format!("{name}.tmp"));
    let dest = dir.join(name);
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| format!("cannot create `{}`: {e}", tmp.display()))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| format!("cannot write `{}`: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, &dest).map_err(|e| {
        format!(
            "cannot publish `{}` -> `{}`: {e}",
            tmp.display(),
            dest.display()
        )
    })?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(dest)
}

/// Atomic write for a caller-chosen file path outside a report directory
/// (e.g. `--profile-out`): write to a `<path>.tmp` sibling, fsync, rename.
///
/// # Errors
///
/// Returns a message on filesystem errors.
pub fn atomic_write_path(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| format!("cannot create `{}`: {e}", tmp.display()))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| format!("cannot write `{}`: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot publish `{}`: {e}", path.display()))
}

/// A hard pipeline failure, classified for retry/quarantine decisions and
/// for signature comparison during reproducer minimization.
///
/// The `stage`/`class` pair is the **failure signature**: it is stable
/// across source edits (no file names, line numbers, or addresses), which
/// is what lets the delta-debugging shrinker test "does the candidate
/// still fail the same way?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineFailure {
    /// Pipeline stage that failed: `io`, `config`, `compile`, `verify`,
    /// `inline`, `panic`, or `governor`.
    pub stage: String,
    /// Location-free failure class within the stage (e.g. the compile
    /// error message without its `file:line:col`, or `deadline-exceeded`).
    pub class: String,
    /// Full human-readable detail; may contain paths and line numbers.
    pub detail: String,
    /// Rendered incident chain the recovery layer collected before the
    /// failure (empty when the failure predates incident collection).
    pub incidents: Vec<String>,
}

impl PipelineFailure {
    /// Builds a failure with no incident chain.
    pub fn new(
        stage: impl Into<String>,
        class: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        PipelineFailure {
            stage: stage.into(),
            class: class.into(),
            detail: detail.into(),
            incidents: Vec::new(),
        }
    }

    /// The stable `stage:class` signature used for minimization and
    /// report matching.
    pub fn signature(&self) -> String {
        format!("{}:{}", self.stage, self.class)
    }

    /// Renders the failure as a single driver error message. The
    /// signature rides along in brackets so replays can be matched
    /// against a crash report by grepping stderr.
    pub fn render(&self) -> String {
        format!("{} [signature: {}]", self.detail, self.signature())
    }
}

/// One attempt of a supervised job, for the crash-report history.
#[derive(Clone, Debug)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Wall-clock duration of the attempt in milliseconds.
    pub wall_ms: u64,
    /// The attempt's failure signature (attempts recorded here all
    /// failed; a success ends the history).
    pub signature: String,
    /// Failure detail.
    pub detail: String,
    /// Backoff delay slept *after* this attempt (0 for the last).
    pub backoff_ms: u64,
}

/// Everything persisted for one quarantined unit.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// Unit name as shown in the batch summary.
    pub unit: String,
    /// `persistent` (deterministic, not retried) or
    /// `persistent-after-retries` (presumed transient, survived backoff).
    pub taxonomy: String,
    /// The final failure.
    pub failure: PipelineFailure,
    /// Per-attempt history.
    pub attempts: Vec<AttemptRecord>,
    /// Governor limits in force.
    pub time_limit_ms: u64,
    /// VM instruction fuel per run.
    pub fuel: u64,
    /// Heap quota in bytes, when set.
    pub mem_limit: Option<u64>,
    /// Minimized reproducer, when minimization ran.
    pub reproducer: Option<ShrinkResult>,
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

pub(crate) fn json_str_list(items: &[String]) -> String {
    let inner = items
        .iter()
        .map(|s| json_str(s))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{inner}]")
}

/// Renders the crash report as a JSON document (schema documented in
/// `DESIGN.md` §6; `version` is bumped on any incompatible change).
pub fn render_crash_report(r: &CrashReport, opts: &Options) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"unit\": {},", json_str(&r.unit));
    let _ = writeln!(s, "  \"status\": \"quarantined\",");
    let _ = writeln!(s, "  \"taxonomy\": {},", json_str(&r.taxonomy));
    let _ = writeln!(s, "  \"failure\": {{");
    let _ = writeln!(s, "    \"stage\": {},", json_str(&r.failure.stage));
    let _ = writeln!(s, "    \"class\": {},", json_str(&r.failure.class));
    let _ = writeln!(
        s,
        "    \"signature\": {},",
        json_str(&r.failure.signature())
    );
    let _ = writeln!(s, "    \"detail\": {}", json_str(&r.failure.detail));
    let _ = writeln!(s, "  }},");
    let _ = writeln!(
        s,
        "  \"incidents\": {},",
        json_str_list(&r.failure.incidents)
    );
    let _ = writeln!(s, "  \"config\": {{");
    let _ = writeln!(
        s,
        "    \"threshold\": {},",
        opts.threshold.map_or("null".into(), |v| v.to_string())
    );
    let _ = writeln!(
        s,
        "    \"budget\": {},",
        opts.budget.map_or("null".into(), |v| v.to_string())
    );
    let _ = writeln!(
        s,
        "    \"stack_bound\": {},",
        opts.stack_bound.map_or("null".into(), |v| v.to_string())
    );
    let _ = writeln!(
        s,
        "    \"linearize\": {},",
        opts.linearization
            .as_deref()
            .map_or("null".into(), json_str)
    );
    let _ = writeln!(s, "    \"opt\": {},", opts.opt);
    let _ = writeln!(s, "    \"promote_indirect\": {}", opts.promote_indirect);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"fault_plan\": {},", json_str_list(&opts.faults));
    let _ = writeln!(s, "  \"governor\": {{");
    let _ = writeln!(s, "    \"time_limit_ms\": {},", r.time_limit_ms);
    let _ = writeln!(s, "    \"fuel\": {},", r.fuel);
    let _ = writeln!(
        s,
        "    \"mem_limit\": {}",
        r.mem_limit.map_or("null".into(), |v| v.to_string())
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"attempts\": [");
    for (i, a) in r.attempts.iter().enumerate() {
        let comma = if i + 1 < r.attempts.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"attempt\": {}, \"wall_ms\": {}, \"signature\": {}, \
             \"detail\": {}, \"backoff_ms\": {} }}{comma}",
            a.attempt,
            a.wall_ms,
            json_str(&a.signature),
            json_str(&a.detail),
            a.backoff_ms
        );
    }
    let _ = writeln!(s, "  ],");
    match &r.reproducer {
        Some(rep) => {
            let _ = writeln!(s, "  \"reproducer\": {{");
            let _ = writeln!(s, "    \"original_bytes\": {},", rep.original_bytes);
            let _ = writeln!(s, "    \"reduced_bytes\": {},", rep.reduced_bytes);
            let _ = writeln!(s, "    \"candidates_tried\": {},", rep.evals);
            let _ = writeln!(s, "    \"source\": {}", json_str(&rep.source));
            let _ = writeln!(s, "  }}");
        }
        None => {
            let _ = writeln!(s, "  \"reproducer\": null");
        }
    }
    s.push_str("}\n");
    s
}

/// A filesystem-safe file stem for a unit name.
pub fn sanitize_unit_name(unit: &str) -> String {
    unit.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Writes the crash report (and, when a reproducer was minimized, a
/// sibling `<unit>.repro.c` replayable with `impactc inline`) into `dir`.
///
/// Both files are emitted through [`atomic_write_in`] under stable,
/// unit-keyed names, so emission is idempotent and a crash mid-write can
/// never leave a torn report among the observable files.
///
/// # Errors
///
/// Returns a message on filesystem errors.
pub fn write_crash_report(dir: &Path, r: &CrashReport, opts: &Options) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create report dir `{}`: {e}", dir.display()))?;
    let stem = sanitize_unit_name(&r.unit);
    let json_path = atomic_write_in(
        dir,
        &format!("{stem}.json"),
        render_crash_report(r, opts).as_bytes(),
    )?;
    if let Some(rep) = &r.reproducer {
        atomic_write_in(dir, &format!("{stem}.repro.c"), rep.source.as_bytes())?;
    }
    Ok(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_newlines_and_controls() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn signature_is_location_free_and_render_carries_it() {
        let f = PipelineFailure::new("compile", "expected `;`", "t.c:3:7: expected `;`");
        assert_eq!(f.signature(), "compile:expected `;`");
        assert!(f.render().contains("[signature: compile:expected `;`]"));
        assert!(f.render().contains("t.c:3:7"));
    }

    #[test]
    fn crash_report_renders_valid_shape() {
        let opts = Options::parse(&[
            "batch".to_string(),
            "u.c".to_string(),
            "--fault".to_string(),
            "inline:verify".to_string(),
        ])
        .unwrap();
        let r = CrashReport {
            unit: "u.c".into(),
            taxonomy: "persistent-after-retries".into(),
            failure: PipelineFailure {
                stage: "inline".into(),
                class: "verify-failed".into(),
                detail: "fault \"injection\"".into(),
                incidents: vec!["[expand] x: y (rolled back)".into()],
            },
            attempts: vec![AttemptRecord {
                attempt: 1,
                wall_ms: 12,
                signature: "inline:verify-failed".into(),
                detail: "d".into(),
                backoff_ms: 25,
            }],
            time_limit_ms: 10_000,
            fuel: 1_000_000,
            mem_limit: Some(65536),
            reproducer: Some(ShrinkResult {
                source: "int main() { return 0; }".into(),
                original_bytes: 100,
                reduced_bytes: 24,
                evals: 7,
            }),
        };
        let json = render_crash_report(&r, &opts);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"signature\": \"inline:verify-failed\""));
        assert!(json.contains("\"fault \\\"injection\\\"\""));
        assert!(json.contains("\"mem_limit\": 65536"));
        assert!(json.contains("\"reduced_bytes\": 24"));
        assert!(json.contains("\"fault_plan\": [\"inline:verify\"]"));
        // Every quote is escaped: the document never contains an unescaped
        // quote inside a string value.
        assert_eq!(json.matches("\\\"injection\\\"").count(), 1);
    }

    #[test]
    fn unit_names_sanitize_to_file_stems() {
        assert_eq!(sanitize_unit_name("bench:wc"), "bench_wc");
        assert_eq!(sanitize_unit_name("dir/unit-1.c"), "dir_unit_1_c");
    }

    #[test]
    fn atomic_write_publishes_whole_files_and_is_idempotent() {
        let dir = std::env::temp_dir().join("impactc-atomic-write");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = atomic_write_in(&dir, "r.json", b"{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"v\": 1}\n");
        // Re-emission replaces the file whole.
        let p2 = atomic_write_in(&dir, "r.json", b"{\"v\": 2}\n").unwrap();
        assert_eq!(p, p2);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"v\": 2}\n");
        // Nothing in-flight remains observable next to the report.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
    }
}
