//! `impactc serve` — a persistent compilation daemon on a Unix socket.
//!
//! The daemon accepts compile requests (a set of C sources framed by the
//! length-prefixed protocol below), runs each through the supervised
//! pipeline, and responds with the pipeline report. The design goals are
//! the batch supervisor's robustness guarantees, restated for a server:
//!
//! - **Bounded queue, explicit shedding.** Accepted connections go into a
//!   `sync_channel` bounded by `--queue-depth`. When the queue is full the
//!   accept thread responds `busy` immediately and closes — the daemon
//!   never buffers unbounded work, and clients learn about overload at
//!   once rather than timing out.
//! - **Crash-isolated request workers.** Each request is handled under
//!   `catch_unwind` (and the compile itself additionally runs on the
//!   supervised worker thread with the wall-clock deadline from
//!   `--time-limit-ms`). A panicking request produces a structured
//!   `error` response; the daemon keeps serving.
//! - **Graceful drain.** SIGTERM/SIGINT flip an atomic flag (the handler
//!   does nothing else); the accept loop notices within milliseconds,
//!   stops accepting, lets the workers finish the queue and in-flight
//!   requests, publishes telemetry artifacts, removes the socket, and
//!   exits 0.
//! - **Per-request deadlines.** Socket I/O carries read/write timeouts,
//!   and the compile runs under the same deadline machinery as a batch
//!   attempt, so a hung client or a pathological source cannot wedge a
//!   worker forever.
//!
//! With `--cache-dir`, requests are served from the content-addressed
//! artifact cache when the whole input set matches ([`crate::cache`]);
//! responses carry a `cached` flag so clients (and the serve smoke test)
//! can observe warm hits.
//!
//! Fault injection: `serve:stall` (worker sleeps before compiling, for
//! deterministic overload tests) and `serve:panic` (worker panics, for
//! isolation tests) arm on the daemon's own fault plan and are stripped
//! from per-request pipeline options.

use std::io::{BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use impact_cfront::Source;
use impact_obs::names;
use impact_vm::FaultPlan;

use crate::supervise::{panic_message, DEFAULT_TIME_LIMIT_MS};
use crate::{cache, journal, load_inputs, telemetry, usage, Options, RunSpec};

/// Protocol magic/version, the first token of every request and response.
pub const PROTOCOL: &str = "impact-serve v1";

/// Cap on sources per request — a framing sanity bound, not a compile
/// limit (the pipeline already has its own governors).
const MAX_SOURCES: usize = 64;

/// Cap on a single name or source text, in bytes.
const MAX_FIELD_BYTES: usize = 1 << 22;

/// Socket read/write timeout: a stalled peer cannot wedge a worker.
const IO_TIMEOUT_MS: u64 = 10_000;

/// Accept-loop poll interval while the listener has no pending
/// connection; bounds SIGTERM reaction latency.
const POLL_MS: u64 = 5;

/// Injected stall duration for `--fault serve:stall` (long enough that a
/// test can reliably fill the queue behind the stalled worker).
const STALL_MS: u64 = 1500;

/// A parsed compile request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The translation unit's sources, in order.
    pub sources: Vec<Source>,
}

/// A serve response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// `ok`, `error`, or `busy`.
    pub status: String,
    /// Pipeline exit code (`0` for `busy`, `1` for `error`).
    pub exit: i32,
    /// True when the payload came from the artifact cache.
    pub cached: bool,
    /// Report text (`ok`), error message (`error`/`busy`).
    pub payload: String,
}

impl Response {
    fn ok(exit: i32, cached: bool, payload: String) -> Response {
        Response {
            status: "ok".to_string(),
            exit,
            cached,
            payload,
        }
    }

    fn error(message: String) -> Response {
        Response {
            status: "error".to_string(),
            exit: 1,
            cached: false,
            payload: message,
        }
    }

    fn busy() -> Response {
        Response {
            status: "busy".to_string(),
            exit: 0,
            cached: false,
            payload: "request queue is full; retry later".to_string(),
        }
    }
}

// ----- wire protocol -------------------------------------------------------
//
// Request:   `impact-serve v1 compile <nsources>\n`
//            then per source: `<name_len> <text_len>\n<name><text>`
// Response:  `impact-serve v1 <status> <exit> <cached 0|1> <len>\n<payload>`
//
// Length-prefixed framing keeps parsing allocation-bounded and makes
// truncation detectable (read_exact fails instead of blocking forever,
// thanks to the socket timeouts).

/// Writes a compile request for `sources`.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_request<W: Write>(w: &mut W, sources: &[Source]) -> std::io::Result<()> {
    writeln!(w, "{PROTOCOL} compile {}", sources.len())?;
    for s in sources {
        writeln!(w, "{} {}", s.name.len(), s.text.len())?;
        w.write_all(s.name.as_bytes())?;
        w.write_all(s.text.as_bytes())?;
    }
    w.flush()
}

/// Reads and validates a compile request.
///
/// # Errors
///
/// Returns a human-readable framing/validation error.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, String> {
    let header = read_line(r)?;
    let rest = header
        .strip_prefix(PROTOCOL)
        .ok_or_else(|| format!("bad protocol header `{header}`"))?;
    let rest = rest
        .strip_prefix(" compile ")
        .ok_or_else(|| format!("unknown request verb in `{header}`"))?;
    let n: usize = rest
        .parse()
        .map_err(|_| format!("bad source count in `{header}`"))?;
    if n == 0 || n > MAX_SOURCES {
        return Err(format!("source count {n} outside 1..={MAX_SOURCES}"));
    }
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        let frame = read_line(r)?;
        let (name_len, text_len) = frame
            .split_once(' ')
            .ok_or_else(|| format!("bad source frame `{frame}`"))?;
        let name_len: usize = name_len
            .parse()
            .map_err(|_| format!("bad name length in `{frame}`"))?;
        let text_len: usize = text_len
            .parse()
            .map_err(|_| format!("bad text length in `{frame}`"))?;
        if name_len > MAX_FIELD_BYTES || text_len > MAX_FIELD_BYTES {
            return Err(format!(
                "source frame `{frame}` exceeds the {MAX_FIELD_BYTES}-byte field cap"
            ));
        }
        let name = read_exact_utf8(r, name_len, "source name")?;
        let text = read_exact_utf8(r, text_len, "source text")?;
        sources.push(Source::new(name, text));
    }
    Ok(Request { sources })
}

/// Writes a response.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    writeln!(
        w,
        "{PROTOCOL} {} {} {} {}",
        resp.status,
        resp.exit,
        u8::from(resp.cached),
        resp.payload.len()
    )?;
    w.write_all(resp.payload.as_bytes())?;
    w.flush()
}

/// Reads and validates a response.
///
/// # Errors
///
/// Returns a human-readable framing/validation error.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response, String> {
    let header = read_line(r)?;
    let rest = header
        .strip_prefix(PROTOCOL)
        .ok_or_else(|| format!("bad protocol header `{header}`"))?;
    let mut tok = rest.split_whitespace();
    let status = tok.next().ok_or("response missing status")?.to_string();
    if !matches!(status.as_str(), "ok" | "error" | "busy") {
        return Err(format!("unknown response status `{status}`"));
    }
    let exit: i32 = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("response missing exit code")?;
    let cached = match tok.next() {
        Some("0") => false,
        Some("1") => true,
        _ => return Err("response missing cached flag".to_string()),
    };
    let len: usize = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("response missing payload length")?;
    if len > MAX_FIELD_BYTES {
        return Err(format!(
            "response payload length {len} exceeds the {MAX_FIELD_BYTES}-byte cap"
        ));
    }
    let payload = read_exact_utf8(r, len, "response payload")?;
    Ok(Response {
        status,
        exit,
        cached,
        payload,
    })
}

fn read_line<R: BufRead>(r: &mut R) -> Result<String, String> {
    let mut buf = Vec::new();
    r.read_until(b'\n', &mut buf)
        .map_err(|e| format!("read failed: {e}"))?;
    if buf.last() != Some(&b'\n') {
        return Err("truncated line (peer closed or timed out)".to_string());
    }
    buf.pop();
    String::from_utf8(buf).map_err(|_| "non-UTF-8 header line".to_string())
}

fn read_exact_utf8<R: Read>(r: &mut R, len: usize, what: &str) -> Result<String, String> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|e| format!("truncated {what}: {e}"))?;
    String::from_utf8(buf).map_err(|_| format!("non-UTF-8 {what}"))
}

// ----- fault plumbing ------------------------------------------------------

/// True for fault specs that target the serve daemon itself; they arm on
/// the daemon's plan and are stripped from per-request pipeline options
/// (mirroring `journal:*` handling).
pub fn is_serve_fault(spec: &str) -> bool {
    spec.starts_with("serve:")
}

/// Builds the daemon's fault plan from the `serve:*` subset of `--fault`.
///
/// # Errors
///
/// Returns a message naming the malformed spec.
fn serve_fault_plan(opts: &Options) -> Result<FaultPlan, String> {
    let plan = FaultPlan::new();
    for spec in opts.faults.iter().filter(|s| is_serve_fault(s)) {
        plan.arm_spec(spec)
            .map_err(|e| format!("bad --fault `{spec}`: {e}"))?;
    }
    Ok(plan)
}

/// Per-request pipeline options: quiet, no artifact/telemetry output
/// flags (the daemon aggregates telemetry and writes artifacts once, at
/// drain), no journaling, and daemon-level fault specs stripped.
fn request_options(opts: &Options) -> Options {
    let mut o = opts.clone();
    o.quiet = true;
    o.positional.clear();
    o.profile_in = None;
    o.profile_out = None;
    o.explain = false;
    o.decisions_out = None;
    o.trace_out = None;
    o.metrics_out = None;
    o.journal = None;
    o.resume = false;
    o.force_resume = false;
    o.faults
        .retain(|f| !journal::is_journal_fault(f) && !is_serve_fault(f));
    o
}

// ----- the daemon ----------------------------------------------------------

#[cfg(unix)]
mod daemon {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::{self, TrySendError};
    use std::sync::{Arc, Mutex};

    /// Drain-visible request totals, independent of whether telemetry is
    /// enabled (the summary line must always be accurate).
    #[derive(Default)]
    struct Totals {
        requests: AtomicU64,
        ok: AtomicU64,
        errors: AtomicU64,
        shed: AtomicU64,
    }

    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs the daemon until SIGTERM/SIGINT, then drains and returns the
    /// serve summary with exit code 0.
    pub fn run_serve(opts: &Options) -> Result<(i32, String), String> {
        let service = opts.service_config()?;
        // Pipeline flags are validated once at startup so a bad config
        // fails the daemon immediately instead of every request.
        opts.validate_flags()?;
        let plan = serve_fault_plan(opts)?;
        if opts.positional.len() != 1 {
            return Err(format!(
                "serve needs exactly one socket path (got {})\n{}",
                opts.positional.len(),
                usage()
            ));
        }
        let socket = PathBuf::from(&opts.positional[0]);
        if socket.exists() {
            // A previous daemon's stale socket; binding requires the name
            // to be free.
            std::fs::remove_file(&socket)
                .map_err(|e| format!("cannot remove stale socket `{}`: {e}", socket.display()))?;
        }
        let obs = telemetry::handle_for(opts);
        let artifact_cache = match &service.cache_dir {
            Some(dir) => Some(cache::Cache::open(dir, &obs)?),
            None => None,
        };
        crate::supervise::silence_worker_panics();
        super::sig::install();
        let listener = UnixListener::bind(&socket)
            .map_err(|e| format!("cannot bind serve socket `{}`: {e}", socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure serve socket: {e}"))?;
        let (tx, rx) = mpsc::sync_channel::<UnixStream>(service.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let req_opts = request_options(opts);
        let deadline = opts.time_limit_ms.unwrap_or(DEFAULT_TIME_LIMIT_MS);
        let totals = Totals::default();

        std::thread::scope(|scope| {
            for w in 0..service.jobs {
                let rx = Arc::clone(&rx);
                let req_opts = &req_opts;
                let artifact_cache = artifact_cache.as_ref();
                let obs = &obs;
                let plan = &plan;
                let totals = &totals;
                std::thread::Builder::new()
                    .name(format!("{}-serve{w}", crate::supervise::WORKER_THREAD))
                    .spawn_scoped(scope, move || loop {
                        // Take the stream with the receiver lock scoped
                        // tightly: handling must not serialize workers.
                        let stream = {
                            let guard =
                                rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        let Ok(stream) = stream else { break };
                        handle_connection(
                            stream,
                            req_opts,
                            deadline,
                            artifact_cache,
                            obs,
                            plan,
                            totals,
                        );
                    })
                    .expect("spawn serve worker");
            }
            // Accept loop, on this thread. SIGTERM flips the flag; the
            // loop notices within POLL_MS and falls through to the drain.
            loop {
                if super::sig::requested() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        bump(&totals.requests);
                        obs.count(names::SERVE_REQUESTS, 1);
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(stream)) => {
                                // Explicit overload shedding: an immediate
                                // `busy` beats an unbounded queue.
                                bump(&totals.shed);
                                obs.count(names::SERVE_SHED, 1);
                                respond_busy(stream);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(POLL_MS));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure; back off briefly and
                        // keep serving.
                        std::thread::sleep(Duration::from_millis(POLL_MS));
                    }
                }
            }
            // Drain: closing the channel lets each worker finish its
            // in-flight request plus whatever is queued, then exit.
            drop(tx);
        });
        let _ = std::fs::remove_file(&socket);
        telemetry::write_artifacts(opts, &obs, None)?;
        let mut out = String::new();
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "; serve: drained after {} requests, {} ok, {} errors, {} shed\n",
                totals.requests.load(Ordering::Relaxed),
                totals.ok.load(Ordering::Relaxed),
                totals.errors.load(Ordering::Relaxed),
                totals.shed.load(Ordering::Relaxed),
            ),
        );
        Ok((0, out))
    }

    /// Best-effort `busy` response on the accept thread; a short write
    /// timeout keeps a stalled client from wedging the accept loop.
    fn respond_busy(stream: UnixStream) {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let mut stream = stream;
        let _ = write_response(&mut stream, &Response::busy());
    }

    /// Handles one connection end to end: read, compile (panic-isolated),
    /// respond. Never propagates errors — a broken peer only loses its
    /// own response.
    #[allow(clippy::too_many_arguments)]
    fn handle_connection(
        stream: UnixStream,
        opts: &Options,
        deadline: u64,
        artifact_cache: Option<&cache::Cache>,
        obs: &impact_obs::Telemetry,
        plan: &FaultPlan,
        totals: &Totals,
    ) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(IO_TIMEOUT_MS)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(IO_TIMEOUT_MS)));
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        };
        let response = match read_request(&mut BufReader::new(reader)) {
            Err(e) => {
                bump(&totals.errors);
                obs.count(names::SERVE_ERRORS, 1);
                Response::error(format!("bad request: {e}"))
            }
            Ok(req) => {
                // The compile additionally runs on the supervised worker
                // thread under the wall-clock deadline; this outer
                // catch_unwind isolates panics in the serve scaffolding
                // itself (and the injected `serve:panic`).
                match catch_unwind(AssertUnwindSafe(|| {
                    compile_request(&req, opts, deadline, artifact_cache, obs, plan)
                })) {
                    Ok(resp) => {
                        if resp.status == "ok" {
                            bump(&totals.ok);
                            obs.count(names::SERVE_OK, 1);
                        } else {
                            bump(&totals.errors);
                            obs.count(names::SERVE_ERRORS, 1);
                        }
                        resp
                    }
                    Err(payload) => {
                        bump(&totals.errors);
                        obs.count(names::SERVE_ERRORS, 1);
                        Response::error(format!(
                            "request worker panicked: {}",
                            panic_message(payload)
                        ))
                    }
                }
            }
        };
        let mut stream = stream;
        let _ = write_response(&mut stream, &response);
    }

    /// Compiles one request: fault points, cache probe, supervised
    /// attempt, cache store.
    fn compile_request(
        req: &Request,
        opts: &Options,
        deadline: u64,
        artifact_cache: Option<&cache::Cache>,
        obs: &impact_obs::Telemetry,
        plan: &FaultPlan,
    ) -> Response {
        if plan.should_fail("serve:stall") {
            std::thread::sleep(Duration::from_millis(STALL_MS));
        }
        assert!(
            !plan.should_fail("serve:panic"),
            "injected serve worker panic"
        );
        let inputs = match load_inputs(&opts.inputs) {
            Ok(i) => i,
            Err(e) => return Response::error(e),
        };
        let runs: Vec<RunSpec> = vec![(inputs, opts.args.clone())];
        let key = artifact_cache.map(|_| cache::unit_key(&req.sources, &runs, opts));
        if let (Some(c), Some(k)) = (artifact_cache, key) {
            if let cache::Lookup::Hit(hit) = c.load(k) {
                return Response::ok(hit.exit, true, hit.report);
            }
            // Miss and quarantine both fall through to a fresh compile;
            // a quarantined entry has already been renamed aside with an
            // incident report and is never served.
        }
        let (result, _wall) = crate::supervise::run_attempt(
            req.sources.clone(),
            runs,
            opts.clone(),
            deadline,
            obs.clone(),
        );
        match result {
            Ok((code, report)) => {
                if let (Some(c), Some(k)) = (artifact_cache, key) {
                    // Store failures degrade the cache, not the response.
                    let _ = c.store(k, code, &report);
                }
                Response::ok(code, false, report)
            }
            Err(f) => Response::error(f.render()),
        }
    }
}

// ----- signal handling -----------------------------------------------------

/// SIGTERM/SIGINT latch. The handler performs exactly one atomic store —
/// the only operation that is unconditionally async-signal-safe — and the
/// accept loop polls the flag.
///
/// This binds the C `signal` function directly rather than depending on a
/// bindings crate; it is the crate's sole `unsafe_code` exception (see
/// the crate attribute in `lib.rs`).
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers and clears any previously latched request.
    pub fn install() {
        SHUTDOWN.store(false, Ordering::SeqCst);
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// True once SIGTERM or SIGINT has been received.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

// ----- entry points --------------------------------------------------------

/// Runs the serve daemon (see the module docs).
///
/// # Errors
///
/// Returns a usage-style message for a malformed invocation or an
/// unbindable socket. A drained daemon returns `Ok((0, summary))`.
#[cfg(unix)]
pub fn run_serve(opts: &Options) -> Result<(i32, String), String> {
    daemon::run_serve(opts)
}

/// Serve is Unix-only (it is built on Unix domain sockets and POSIX
/// signals).
#[cfg(not(unix))]
pub fn run_serve(_opts: &Options) -> Result<(i32, String), String> {
    Err("serve requires a Unix platform (Unix sockets and signals)".to_string())
}

/// `impactc request <socket> <files.c...>` — the thin client: sends the
/// files to a running daemon and prints the pipeline report. A cached
/// response appends a `; cache: hit` marker line.
///
/// # Errors
///
/// Returns a connection/protocol error, the server's `error` payload, or
/// a `busy` notice when the daemon shed the request.
#[cfg(unix)]
pub fn run_request(opts: &Options) -> Result<(i32, String), String> {
    use std::os::unix::net::UnixStream;

    let Some((socket, files)) = opts.positional.split_first() else {
        return Err(format!(
            "request needs a socket path and at least one .c file\n{}",
            usage()
        ));
    };
    if files.is_empty() {
        return Err(format!(
            "request needs at least one .c file after the socket path\n{}",
            usage()
        ));
    }
    let mut sources = Vec::with_capacity(files.len());
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read `{f}`: {e}"))?;
        sources.push(Source::new(f.clone(), text));
    }
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to serve socket `{socket}`: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(IO_TIMEOUT_MS)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(IO_TIMEOUT_MS)));
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket stream: {e}"))?;
    write_request(&mut writer, &sources).map_err(|e| format!("cannot send request: {e}"))?;
    let resp = read_response(&mut BufReader::new(stream))?;
    match resp.status.as_str() {
        "ok" => {
            let mut out = resp.payload;
            if resp.cached {
                out.push_str("; cache: hit\n");
            }
            Ok((resp.exit, out))
        }
        "busy" => Err(format!("server busy: {}", resp.payload)),
        _ => Err(resp.payload),
    }
}

/// Request is Unix-only, like serve.
#[cfg(not(unix))]
pub fn run_request(_opts: &Options) -> Result<(i32, String), String> {
    Err("request requires a Unix platform (Unix sockets)".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let sources = vec![
            Source::new("a.c", "int main() { return 0; }\n"),
            Source::new("dir/b.c", "int helper() { return 1; }\n"),
        ];
        let mut wire = Vec::new();
        write_request(&mut wire, &sources).unwrap();
        let req = read_request(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(req.sources, sources);
    }

    #[test]
    fn response_round_trips_including_cached_flag() {
        for resp in [
            Response::ok(0, true, "; report\n".to_string()),
            Response::ok(3, false, String::new()),
            Response::error("compile failed: x.c:1:1".to_string()),
            Response::busy(),
        ] {
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).unwrap();
            let back = read_response(&mut std::io::Cursor::new(wire)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_not_trusted() {
        for (wire, needle) in [
            (&b"impact-serve v9 compile 1\n"[..], "bad protocol"),
            (
                &b"impact-serve v1 decompile 1\n"[..],
                "unknown request verb",
            ),
            (&b"impact-serve v1 compile 0\n"[..], "source count"),
            (&b"impact-serve v1 compile 999\n"[..], "source count"),
            (&b"impact-serve v1 compile 1\n5 99999999\n"[..], "field cap"),
            (&b"impact-serve v1 compile 1\n3 4\na.cint"[..], "truncated"),
            (&b"impact-serve v1 compile 1"[..], "truncated line"),
        ] {
            let err = read_request(&mut std::io::Cursor::new(wire.to_vec())).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn serve_faults_are_stripped_from_request_options() {
        let o = Options::parse(&strs(&[
            "serve",
            "s.sock",
            "--fault",
            "serve:panic=1",
            "--fault",
            "inline:verify",
        ]))
        .unwrap();
        let r = request_options(&o);
        assert_eq!(r.faults, strs(&["inline:verify"]));
        assert!(r.quiet);
        assert!(r.positional.is_empty());
        assert!(is_serve_fault("serve:stall"));
        assert!(!is_serve_fault("inline:verify"));
    }
}
