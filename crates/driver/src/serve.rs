//! `impactc serve` — a persistent compilation daemon on a Unix socket
//! and, with `--tcp HOST:PORT`, a TCP listener bound alongside it.
//!
//! The daemon accepts compile requests (a set of C sources framed by the
//! length-prefixed protocol below), runs each through the supervised
//! pipeline, and responds with the pipeline report. Both carriers run
//! the same accept loop, bounded queue, deadlines, and chaos points —
//! the carrier split lives in [`crate::transport`]. The design goals are
//! the batch supervisor's robustness guarantees, restated for a server:
//!
//! - **Bounded queue, explicit shedding.** Accepted connections go into a
//!   `sync_channel` bounded by `--queue-depth`. When the queue is full the
//!   accept thread responds `busy` immediately and closes — the daemon
//!   never buffers unbounded work, and clients learn about overload at
//!   once rather than timing out. The `busy` response carries a
//!   deterministic `retry-after-ms` hint sized to the queue.
//! - **Crash-isolated request workers.** Connection handling runs under
//!   `catch_unwind` end to end (and the compile itself additionally runs
//!   on the supervised worker thread with the wall-clock deadline from
//!   `--time-limit-ms`). A panicking request produces a structured
//!   `error` response — or, for a crash before the response could be
//!   written, a dropped connection the client treats as retryable; the
//!   daemon keeps serving either way.
//! - **Graceful drain.** SIGTERM/SIGINT flip an atomic flag (the handler
//!   does nothing else); the accept loop notices within milliseconds,
//!   stops accepting, lets the workers finish the queue and in-flight
//!   requests, publishes telemetry artifacts, removes the socket, and
//!   exits 0.
//! - **Per-request deadlines.** Socket I/O carries read/write timeouts —
//!   and configuring them is mandatory: a connection whose timeouts
//!   cannot be set is answered with a terminal protocol error, never
//!   served with unbounded I/O. The compile runs under the same deadline
//!   machinery as a batch attempt, so a hung client or a pathological
//!   source cannot wedge a worker forever.
//! - **Health checks.** A `ping` request runs the daemon's self-checks
//!   (queue headroom, cache-dir writability) through the normal queue
//!   path and reports `healthy`/`degraded` with the evidence, surfaced
//!   via `impactc request --ping` and the `serve:pings` counter.
//! - **TCP hardening.** A TCP peer is a network, not a local process, so
//!   the TCP carrier gets three extra defenses: `--max-conns N` caps
//!   accepted-but-unfinished connections at accept time (over the cap, an
//!   immediate `busy` — counted under `serve:conn-capped`); a slow-loris
//!   header deadline gives a TCP peer only [`TCP_HEADER_TIMEOUT_MS`] to
//!   deliver its complete request (a Unix peer keeps the ordinary
//!   [`IO_TIMEOUT_MS`]); and every compile request carries an
//!   **idempotency id** — the daemon remembers recently completed `ok`
//!   responses by id, so a retried request whose first response was lost
//!   on the wire is replayed verbatim (`serve:idempotent-replays`)
//!   instead of recompiled, and a fault-injected retry converges to the
//!   exact bytes of the fault-free run.
//!
//! With `--cache-dir`, requests are served from the content-addressed
//! artifact cache when the whole input set matches ([`crate::cache`]);
//! responses carry a `cached` flag so clients (and the serve smoke test)
//! can observe warm hits. `--cache-budget-bytes` bounds the cache with
//! LRU eviction (see the cache module docs for the pinning and restart
//! invariants).
//!
//! **Fault injection** (`--fault`, deterministic and replayable): the
//! service fault domains `serve:*`, `net:*`, and `cache:*` arm on the
//! daemon's own plan and are stripped from per-request pipeline options.
//! `serve:stall` (worker sleeps before compiling), `serve:panic` (worker
//! panics mid-compile), `serve:accept-crash` (handler panics before
//! reading the request — the client sees a dropped connection),
//! `net:torn-write` (response cut off mid-frame), `net:drop` (connection
//! closed without any response), `net:reset` (connection shut down right
//! after the request is read, before any work), `net:slow-read` (the
//! daemon dawdles before reading the request, holding the connection
//! open), `net:partial-frame` (only a prefix of the response *header
//! line* is written), `net:connect-refused[=N]` (the Nth accepted
//! connection is dropped on the floor before admission), `cache:bitflip`
//! and `cache:evict-read-race` (see [`crate::cache`]). Every injection
//! bumps `chaos:injected` plus a `chaos:<key>` counter, so a chaos run
//! can prove each armed fault actually fired.
//!
//! **The fleet-aware client.** `impactc request` (and `impactc batch
//! --remote`) accepts a comma-separated endpoint list — Unix socket
//! paths and `host:port` TCP addresses mixed freely — and fails over in
//! the listed (deterministic) order. Each endpoint carries its own
//! circuit breaker ([`crate::transport::Breaker`]): after
//! [`crate::transport::BREAKER_THRESHOLD`] consecutive retryable
//! failures the endpoint is skipped until its cooldown elapses, then a
//! single half-open `ping` probe decides between recovery and another
//! cooldown. A `busy` hint (`retry-after-ms`) defers only the endpoint
//! that sent it. When every endpoint is down, the terminal report names
//! each endpoint's last error. With a single endpoint the fleet
//! machinery degenerates to the PR 7 retry loop: retryable failures —
//! connect errors, truncated/torn responses, `busy`, presumed-transient
//! worker panics — retried with exponential backoff and deterministic
//! jitter, bounded by `--retries` and an overall `--deadline-ms` that
//! shrinks across attempts. Everything else — a protocol violation, a
//! server-side compile error, an unreadable local file — is terminal
//! and fails fast. Retry and failover notices go to stderr so stdout
//! stays byte-identical to a fault-free run.

use std::io::{BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use impact_cfront::Source;
use impact_obs::names;
use impact_vm::FaultPlan;

use crate::supervise::{
    jitter_ms, panic_message, DEFAULT_RETRIES, DEFAULT_RETRY_BASE_MS, DEFAULT_TIME_LIMIT_MS,
};
use crate::{cache, journal, load_inputs, telemetry, usage, Options, RunSpec};

/// Protocol magic/version, the first token of every request and response.
/// v2 added the `ping` verb and the `retry-after-ms` response field; v3
/// added the compile request's idempotency id; v4 added the per-request
/// trace id on compile/ping frames, the `stats` verb, and the response's
/// span/counter summary section.
pub const PROTOCOL: &str = "impact-serve v4";

/// Cap on sources per request — a framing sanity bound, not a compile
/// limit (the pipeline already has its own governors).
const MAX_SOURCES: usize = 64;

/// Cap on a single name or source text, in bytes.
const MAX_FIELD_BYTES: usize = 1 << 22;

/// Socket read/write timeout: a stalled peer cannot wedge a worker.
const IO_TIMEOUT_MS: u64 = 10_000;

/// Slow-loris defense: how long a **TCP** peer gets to deliver its
/// complete request. A legitimate client writes the whole frame in one
/// go, so two seconds is generous; a byte-at-a-time peer loses its
/// connection long before it can pin a worker for [`IO_TIMEOUT_MS`].
const TCP_HEADER_TIMEOUT_MS: u64 = 2_000;

/// Injected dawdle for `--fault net:slow-read` (the daemon sits on the
/// accepted connection before reading — long enough that a test can
/// observe the connection being held, short enough to stay under every
/// client deadline).
const SLOW_READ_MS: u64 = 300;

/// How many completed `ok` responses the idempotency table remembers.
/// Bounds daemon memory; old ids age out FIFO, degrading a very late
/// retry to an ordinary recompile (which the cache then absorbs).
const IDEMPOTENCY_CAPACITY: usize = 256;

/// Accept-loop poll interval while the listener has no pending
/// connection; bounds SIGTERM reaction latency.
const POLL_MS: u64 = 5;

/// Injected stall duration for `--fault serve:stall` (long enough that a
/// test can reliably fill the queue behind the stalled worker).
const STALL_MS: u64 = 1500;

/// Per-queue-slot component of the deterministic `retry-after-ms` hint a
/// `busy` response carries: a deeper queue implies a longer drain, so the
/// hint scales with `--queue-depth`.
const BUSY_RETRY_SLOT_MS: u64 = 25;

/// A parsed request: a compile job, a health-check ping, or a live
/// stats snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile the translation unit formed by these sources, in order.
    Compile {
        /// The unit's sources.
        sources: Vec<Source>,
        /// Idempotency id: constant across a client's retries of one
        /// logical request, distinct across logical requests. The daemon
        /// replays a completed `ok` response for a repeated id verbatim.
        id: u64,
        /// Trace id: like the idempotency id it is constant across one
        /// logical request's retries, but it rides on every span and
        /// counter delta the daemon records for this request, so the
        /// client can stitch daemon-side work under its own span.
        trace: u64,
    },
    /// Run the daemon self-checks and report health.
    Ping {
        /// Trace id for the health check's daemon-side spans.
        trace: u64,
    },
    /// Snapshot the daemon's live registry (counters, histograms, queue
    /// and table occupancy) without compiling anything.
    Stats {
        /// How the daemon should render the snapshot.
        format: StatsFormat,
    },
}

/// Rendering requested by a `stats` protocol op. The daemon renders (it
/// owns the registry); the client prints the payload verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable `; `-prefixed table.
    Table,
    /// Prometheus text exposition, suitable for scraping.
    Prom,
    /// Schema-versioned JSON.
    Json,
}

impl StatsFormat {
    /// The wire token naming this format.
    pub fn wire_name(self) -> &'static str {
        match self {
            StatsFormat::Table => "table",
            StatsFormat::Prom => "prom",
            StatsFormat::Json => "json",
        }
    }

    /// Parses a wire token.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown token.
    pub fn parse(s: &str) -> Result<StatsFormat, String> {
        match s {
            "table" => Ok(StatsFormat::Table),
            "prom" => Ok(StatsFormat::Prom),
            "json" => Ok(StatsFormat::Json),
            _ => Err(format!("unknown stats format `{s}`")),
        }
    }
}

/// A serve response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// `ok`, `error`, or `busy`.
    pub status: String,
    /// Pipeline exit code (`1` for `error`; `0` for `busy`).
    pub exit: i32,
    /// True when the payload came from the artifact cache.
    pub cached: bool,
    /// For `busy`: how long the server suggests waiting before a retry.
    /// `0` means no hint.
    pub retry_after_ms: u64,
    /// Report text (`ok`), error message (`error`/`busy`).
    pub payload: String,
    /// The daemon's span summary for this request, rebased onto the
    /// request's own timeline (`start_us` 0 = the connection was
    /// accepted) and tagged with the request's trace id. Empty for
    /// errors, `busy`, and pre-v4 semantics.
    pub spans: Vec<impact_obs::SpanEvent>,
    /// Counter deltas this request caused daemon-side (cache hit/miss,
    /// pipeline counters), for the client to absorb into its own
    /// telemetry.
    pub counters: Vec<(String, u64)>,
}

/// A parsed summary section: the daemon's spans plus its counter deltas.
type SummarySection = (Vec<impact_obs::SpanEvent>, Vec<(String, u64)>);

impl Response {
    fn ok(exit: i32, cached: bool, payload: String) -> Response {
        Response {
            status: "ok".to_string(),
            exit,
            cached,
            retry_after_ms: 0,
            payload,
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    fn error(message: String) -> Response {
        Response {
            status: "error".to_string(),
            exit: 1,
            cached: false,
            retry_after_ms: 0,
            payload: message,
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    fn busy(retry_after_ms: u64) -> Response {
        Response {
            status: "busy".to_string(),
            exit: 0,
            cached: false,
            retry_after_ms,
            payload: "request queue is full; retry later".to_string(),
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    fn with_summary(mut self, (spans, counters): SummarySection) -> Response {
        self.spans = spans;
        self.counters = counters;
        self
    }
}

// ----- wire protocol -------------------------------------------------------
//
// Request:   `impact-serve v4 compile <nsources> <id:016x> <trace:016x>\n`
//            then per source: `<name_len> <text_len>\n<name><text>`
//            or: `impact-serve v4 ping <trace:016x>\n`
//            or: `impact-serve v4 stats <table|prom|json>\n`
// Response:  `impact-serve v4 <status> <exit> <cached 0|1> <retry_after_ms>
//             <payload_len> <summary_len>\n<payload><summary>`
// Summary:   span records    `s <start_us> <dur_us> <trace:016x> <name_len>\n<name>`
//            counter records `c <value> <name_len>\n<name>`
//
// Length-prefixed framing keeps parsing allocation-bounded and makes
// truncation detectable (read_exact fails instead of blocking forever,
// thanks to the socket timeouts). Summary record names are themselves
// length-prefixed so span names with spaces or newlines survive the wire.

/// Writes a compile request for `sources` under idempotency id `id` and
/// trace id `trace`.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_request<W: Write>(
    w: &mut W,
    sources: &[Source],
    id: u64,
    trace: u64,
) -> std::io::Result<()> {
    writeln!(
        w,
        "{PROTOCOL} compile {} {id:016x} {trace:016x}",
        sources.len()
    )?;
    for s in sources {
        writeln!(w, "{} {}", s.name.len(), s.text.len())?;
        w.write_all(s.name.as_bytes())?;
        w.write_all(s.text.as_bytes())?;
    }
    w.flush()
}

/// Writes a health-check ping request under trace id `trace`.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_ping<W: Write>(w: &mut W, trace: u64) -> std::io::Result<()> {
    writeln!(w, "{PROTOCOL} ping {trace:016x}")?;
    w.flush()
}

/// Writes a live-stats request.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_stats<W: Write>(w: &mut W, format: StatsFormat) -> std::io::Result<()> {
    writeln!(w, "{PROTOCOL} stats {}", format.wire_name())?;
    w.flush()
}

/// Reads and validates a request.
///
/// # Errors
///
/// Returns a human-readable framing/validation error.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, String> {
    let header = read_line(r)?;
    let rest = header
        .strip_prefix(PROTOCOL)
        .ok_or_else(|| format!("bad protocol header `{header}`"))?;
    if let Some(trace_hex) = rest.strip_prefix(" ping ") {
        let trace = u64::from_str_radix(trace_hex, 16)
            .map_err(|_| format!("bad trace id in `{header}`"))?;
        return Ok(Request::Ping { trace });
    }
    if let Some(fmt) = rest.strip_prefix(" stats ") {
        return Ok(Request::Stats {
            format: StatsFormat::parse(fmt)?,
        });
    }
    let rest = rest
        .strip_prefix(" compile ")
        .ok_or_else(|| format!("unknown request verb in `{header}`"))?;
    let mut tok = rest.split(' ');
    let n: usize = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad source count in `{header}`"))?;
    if n == 0 || n > MAX_SOURCES {
        return Err(format!("source count {n} outside 1..={MAX_SOURCES}"));
    }
    let id_hex = tok
        .next()
        .ok_or_else(|| format!("missing request id in `{header}`"))?;
    let id =
        u64::from_str_radix(id_hex, 16).map_err(|_| format!("bad request id in `{header}`"))?;
    let trace_hex = tok
        .next()
        .ok_or_else(|| format!("missing trace id in `{header}`"))?;
    let trace =
        u64::from_str_radix(trace_hex, 16).map_err(|_| format!("bad trace id in `{header}`"))?;
    if tok.next().is_some() {
        return Err(format!("trailing fields in `{header}`"));
    }
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        let frame = read_line(r)?;
        let (name_len, text_len) = frame
            .split_once(' ')
            .ok_or_else(|| format!("bad source frame `{frame}`"))?;
        let name_len: usize = name_len
            .parse()
            .map_err(|_| format!("bad name length in `{frame}`"))?;
        let text_len: usize = text_len
            .parse()
            .map_err(|_| format!("bad text length in `{frame}`"))?;
        if name_len > MAX_FIELD_BYTES || text_len > MAX_FIELD_BYTES {
            return Err(format!(
                "source frame `{frame}` exceeds the {MAX_FIELD_BYTES}-byte field cap"
            ));
        }
        let name = read_exact_utf8(r, name_len, "source name")?;
        let text = read_exact_utf8(r, text_len, "source text")?;
        sources.push(Source::new(name, text));
    }
    Ok(Request::Compile { sources, id, trace })
}

/// Renders a response's span/counter summary section. Record names are
/// length-prefixed so arbitrary span names survive the wire.
fn render_summary(resp: &Response) -> String {
    let mut s = String::new();
    for sp in &resp.spans {
        s.push_str(&format!(
            "s {} {} {:016x} {}\n{}",
            sp.start_us,
            sp.dur_us,
            sp.trace,
            sp.name.len(),
            sp.name
        ));
    }
    for (name, v) in &resp.counters {
        s.push_str(&format!("c {} {}\n{}", v, name.len(), name));
    }
    s
}

/// Parses a summary section back into span and counter records.
fn parse_summary(s: &str) -> Result<SummarySection, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let mut spans = Vec::new();
    let mut counters = Vec::new();
    let take_name = |pos: &mut usize, len: usize| -> Result<String, String> {
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or("truncated response summary name")?;
        let name = std::str::from_utf8(&bytes[*pos..end])
            .map_err(|_| "non-UTF-8 response summary name")?
            .to_string();
        *pos = end;
        Ok(name)
    };
    while pos < bytes.len() {
        let nl = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("truncated response summary record")?;
        let line = std::str::from_utf8(&bytes[pos..pos + nl])
            .map_err(|_| "non-UTF-8 response summary record")?;
        pos += nl + 1;
        let mut tok = line.split(' ');
        match tok.next() {
            Some("s") => {
                let start_us: u64 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad summary span record `{line}`"))?;
                let dur_us: u64 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad summary span record `{line}`"))?;
                let trace = tok
                    .next()
                    .and_then(|t| u64::from_str_radix(t, 16).ok())
                    .ok_or_else(|| format!("bad summary span trace in `{line}`"))?;
                let name_len: usize = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad summary span record `{line}`"))?;
                let name = take_name(&mut pos, name_len)?;
                spans.push(impact_obs::SpanEvent {
                    name,
                    start_us,
                    dur_us,
                    trace,
                });
            }
            Some("c") => {
                let value: u64 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad summary counter record `{line}`"))?;
                let name_len: usize = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad summary counter record `{line}`"))?;
                let name = take_name(&mut pos, name_len)?;
                counters.push((name, value));
            }
            _ => return Err(format!("unknown summary record `{line}`")),
        }
    }
    Ok((spans, counters))
}

/// Writes a response.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    let summary = render_summary(resp);
    writeln!(
        w,
        "{PROTOCOL} {} {} {} {} {} {}",
        resp.status,
        resp.exit,
        u8::from(resp.cached),
        resp.retry_after_ms,
        resp.payload.len(),
        summary.len()
    )?;
    w.write_all(resp.payload.as_bytes())?;
    w.write_all(summary.as_bytes())?;
    w.flush()
}

/// Reads and validates a response.
///
/// # Errors
///
/// Returns a human-readable framing/validation error.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response, String> {
    let header = read_line(r)?;
    let rest = header
        .strip_prefix(PROTOCOL)
        .ok_or_else(|| format!("bad protocol header `{header}`"))?;
    let mut tok = rest.split_whitespace();
    let status = tok.next().ok_or("response missing status")?.to_string();
    if !matches!(status.as_str(), "ok" | "error" | "busy") {
        return Err(format!("unknown response status `{status}`"));
    }
    let exit: i32 = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("response missing exit code")?;
    let cached = match tok.next() {
        Some("0") => false,
        Some("1") => true,
        _ => return Err("response missing cached flag".to_string()),
    };
    let retry_after_ms: u64 = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("response missing retry-after field")?;
    let len: usize = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("response missing payload length")?;
    if len > MAX_FIELD_BYTES {
        return Err(format!(
            "response payload length {len} exceeds the {MAX_FIELD_BYTES}-byte cap"
        ));
    }
    let summary_len: usize = tok
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("response missing summary length")?;
    if summary_len > MAX_FIELD_BYTES {
        return Err(format!(
            "response summary length {summary_len} exceeds the {MAX_FIELD_BYTES}-byte cap"
        ));
    }
    let payload = read_exact_utf8(r, len, "response payload")?;
    let summary = read_exact_utf8(r, summary_len, "response summary")?;
    let (spans, counters) = parse_summary(&summary)?;
    Ok(Response {
        status,
        exit,
        cached,
        retry_after_ms,
        payload,
        spans,
        counters,
    })
}

fn read_line<R: BufRead>(r: &mut R) -> Result<String, String> {
    let mut buf = Vec::new();
    r.read_until(b'\n', &mut buf)
        .map_err(|e| format!("read failed: {e}"))?;
    if buf.last() != Some(&b'\n') {
        return Err("truncated line (peer closed or timed out)".to_string());
    }
    buf.pop();
    String::from_utf8(buf).map_err(|_| "non-UTF-8 header line".to_string())
}

fn read_exact_utf8<R: Read>(r: &mut R, len: usize, what: &str) -> Result<String, String> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|e| format!("truncated {what}: {e}"))?;
    String::from_utf8(buf).map_err(|_| format!("non-UTF-8 {what}"))
}

// ----- live stats ----------------------------------------------------------

/// A point-in-time view of the daemon's live registry, answered over the
/// `stats` protocol op. The snapshot is taken lock-light (one collector
/// lock for counters/histograms, one each for the idempotency table,
/// flight ring, and cache index) and rendered by the pure functions
/// below, so rendering is unit-testable without a daemon.
pub struct StatsSnapshot {
    /// Microseconds since the daemon's telemetry epoch.
    pub uptime_us: u64,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Configured queue depth (`--queue-depth`).
    pub queue_depth: usize,
    /// Connections accepted but not yet picked up by a worker.
    pub queued: u64,
    /// Connections admitted and not yet finished (queued or in a worker).
    pub open: u64,
    /// The `--max-conns` cap, when one is set.
    pub max_conns: Option<u64>,
    /// Entries currently in the idempotency replay table.
    pub idem_len: usize,
    /// The idempotency table's capacity.
    pub idem_capacity: usize,
    /// Events currently buffered in the flight recorder ring.
    pub flight_len: usize,
    /// The flight recorder's ring capacity.
    pub flight_capacity: usize,
    /// Flight events discarded because the ring was full.
    pub flight_dropped: u64,
    /// Cache occupancy `(live entries, quarantined entries, bytes)`;
    /// `None` when the daemon runs without `--cache-dir`.
    pub cache: Option<(usize, usize, u64)>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(String, impact_obs::Histogram)>,
}

impl StatsSnapshot {
    fn headroom(&self) -> u64 {
        (self.queue_depth as u64).saturating_sub(self.queued)
    }
}

/// Renders a stats snapshot as the `; `-prefixed human-readable table
/// shown by `impactc request --stats`.
pub fn render_stats_table(s: &StatsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("; serve stats\n");
    out.push_str(&format!("; uptime_us: {}\n", s.uptime_us));
    out.push_str(&format!("; workers: {}\n", s.workers));
    let cap = s
        .max_conns
        .map_or(String::new(), |c| format!(", {c} conn cap"));
    out.push_str(&format!(
        "; queue: {}/{} used, {} headroom, {} open{cap}\n",
        s.queued,
        s.queue_depth,
        s.headroom(),
        s.open
    ));
    out.push_str(&format!(
        "; idempotency: {}/{} entries\n",
        s.idem_len, s.idem_capacity
    ));
    out.push_str(&format!(
        "; flight: {}/{} buffered, {} dropped\n",
        s.flight_len, s.flight_capacity, s.flight_dropped
    ));
    match s.cache {
        None => out.push_str("; cache: disabled\n"),
        Some((live, quarantined, bytes)) => out.push_str(&format!(
            "; cache: {live} live, {quarantined} quarantined, {bytes} bytes\n"
        )),
    }
    out.push_str("; counters:\n");
    for (name, v) in &s.counters {
        out.push_str(&format!(";   {name} {v}\n"));
    }
    out.push_str("; histograms:\n");
    for (name, h) in &s.hists {
        out.push_str(&format!(
            ";   {name} count={} p50={} p90={} p99={}\n",
            h.count(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99)
        ));
    }
    out
}

/// Mangles a counter/histogram name into a valid Prometheus metric name:
/// `impact_` prefix, every non-alphanumeric byte replaced with `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("impact_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders a stats snapshot as Prometheus text exposition (gauges for
/// occupancy, counters for the counter registry, cumulative-bucket
/// histograms for the latency distributions).
pub fn render_stats_prom(s: &StatsSnapshot) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, v: u64| {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    };
    gauge("impact_uptime_us", s.uptime_us);
    gauge("impact_serve_workers", s.workers as u64);
    gauge("impact_serve_queue_depth", s.queue_depth as u64);
    gauge("impact_serve_queued", s.queued);
    gauge("impact_serve_queue_headroom", s.headroom());
    gauge("impact_serve_open_conns", s.open);
    gauge("impact_idempotency_entries", s.idem_len as u64);
    gauge("impact_flight_buffered", s.flight_len as u64);
    gauge("impact_flight_ring_dropped", s.flight_dropped);
    if let Some((live, quarantined, bytes)) = s.cache {
        gauge("impact_cache_live_entries", live as u64);
        gauge("impact_cache_quarantined_entries", quarantined as u64);
        gauge("impact_cache_bytes", bytes);
    }
    for (name, v) in &s.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, h) in &s.hists {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for (i, &c) in h.buckets().iter().enumerate() {
            cum += c;
            let le = if i == impact_obs::HISTOGRAM_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                impact_obs::Histogram::bucket_bound(i).to_string()
            };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n", h.sum()));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

/// Schema version of [`render_stats_json`] output.
pub const STATS_SCHEMA_VERSION: u32 = 1;

/// Renders a stats snapshot as schema-versioned JSON (the shape the CI
/// `obs-smoke` job validates with `jq`).
pub fn render_stats_json(s: &StatsSnapshot) -> String {
    use crate::report::json_str;
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"version\": {STATS_SCHEMA_VERSION},\n  \"kind\": \"impact-serve-stats\",\n"
    ));
    out.push_str(&format!("  \"uptime_us\": {},\n", s.uptime_us));
    out.push_str(&format!("  \"workers\": {},\n", s.workers));
    out.push_str(&format!(
        "  \"queue\": {{\"depth\": {}, \"queued\": {}, \"headroom\": {}, \"open\": {}, \"max_conns\": {}}},\n",
        s.queue_depth,
        s.queued,
        s.headroom(),
        s.open,
        s.max_conns.map_or("null".to_string(), |c| c.to_string())
    ));
    out.push_str(&format!(
        "  \"idempotency\": {{\"entries\": {}, \"capacity\": {}}},\n",
        s.idem_len, s.idem_capacity
    ));
    out.push_str(&format!(
        "  \"flight\": {{\"buffered\": {}, \"capacity\": {}, \"dropped\": {}}},\n",
        s.flight_len, s.flight_capacity, s.flight_dropped
    ));
    match s.cache {
        None => out.push_str("  \"cache\": null,\n"),
        Some((live, quarantined, bytes)) => out.push_str(&format!(
            "  \"cache\": {{\"live\": {live}, \"quarantined\": {quarantined}, \"bytes\": {bytes}}},\n"
        )),
    }
    out.push_str("  \"counters\": [");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"value\": {v}}}",
            json_str(name)
        ));
    }
    if !s.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"hists\": [");
    for (i, (name, h)) in s.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets = h
            .buckets()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"count\": {}, \"total_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"buckets_us\": [{buckets}]}}",
            json_str(name),
            h.count(),
            h.sum(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99)
        ));
    }
    if !s.hists.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders a flight-recorder dump as incident JSON (`kind` distinguishes
/// a crash incident from the drain's final ring).
fn flight_json(
    kind: &str,
    reason: &str,
    trace: u64,
    events: &[impact_obs::FlightEvent],
    dropped: u64,
) -> String {
    use crate::report::json_str;
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"kind\": {},\n", json_str(kind)));
    out.push_str(&format!("  \"reason\": {},\n", json_str(reason)));
    out.push_str(&format!("  \"trace\": \"{trace:016x}\",\n"));
    out.push_str(&format!("  \"dropped\": {dropped},\n"));
    out.push_str("  \"flight\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"seq\": {}, \"at_us\": {}, \"kind\": {}, \"detail\": {}, \"trace\": \"{:016x}\"}}",
            e.seq,
            e.at_us,
            json_str(&e.kind),
            json_str(&e.detail),
            e.trace
        ));
    }
    if !events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

// ----- fault plumbing ------------------------------------------------------

/// True for fault specs that target the service layer — the serve daemon
/// (`serve:*`), its socket I/O (`net:*`), or the artifact cache's
/// lifecycle (`cache:*`). They arm on the daemon's plan (and the cache's,
/// for `cache:*`) and are stripped from per-request pipeline options
/// (mirroring `journal:*` handling); they also never contribute to cache
/// keys, since they cannot change pipeline output.
pub fn is_service_fault(spec: &str) -> bool {
    spec.starts_with("serve:") || spec.starts_with("net:") || spec.starts_with("cache:")
}

/// Builds the service-layer fault plan from the `serve:*`/`net:*`/
/// `cache:*` subset of `--fault`. The same plan (a clone sharing its
/// counters) is handed to the artifact cache, so `:N`/`=N` occurrence
/// counts stay global across the daemon and the cache.
pub(crate) fn service_fault_plan(opts: &Options) -> Result<FaultPlan, String> {
    let plan = FaultPlan::new();
    for spec in opts.faults.iter().filter(|s| is_service_fault(s)) {
        plan.arm_spec(spec)
            .map_err(|e| format!("bad --fault `{spec}`: {e}"))?;
    }
    Ok(plan)
}

/// Per-request pipeline options: quiet, no artifact/telemetry output
/// flags (the daemon aggregates telemetry and writes artifacts once, at
/// drain), no journaling, and service-layer fault specs stripped.
fn request_options(opts: &Options) -> Options {
    let mut o = opts.clone();
    o.quiet = true;
    o.positional.clear();
    o.profile_in = None;
    o.profile_out = None;
    o.explain = false;
    o.decisions_out = None;
    o.trace_out = None;
    o.metrics_out = None;
    o.journal = None;
    o.resume = false;
    o.force_resume = false;
    o.faults
        .retain(|f| !journal::is_journal_fault(f) && !is_service_fault(f));
    o
}

// ----- the daemon ----------------------------------------------------------

#[cfg(unix)]
mod daemon {
    use super::*;
    use crate::transport::{Conn, Listener};
    use std::collections::{HashMap, VecDeque};
    use std::net::TcpListener;
    use std::os::unix::net::UnixListener;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::{self, TrySendError};
    use std::sync::{Arc, Mutex};

    /// Drain-visible request totals, independent of whether telemetry is
    /// enabled (the summary line must always be accurate).
    #[derive(Default)]
    struct Totals {
        requests: AtomicU64,
        ok: AtomicU64,
        errors: AtomicU64,
        shed: AtomicU64,
        pings: AtomicU64,
        stats: AtomicU64,
    }

    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Bounded memory of recently completed `ok` responses, keyed by the
    /// request's idempotency id. A retried request whose first response
    /// was lost on the wire is answered from here **verbatim** — same
    /// status, exit, `cached` flag, and payload bytes — so a fault-free
    /// run and a retried run produce identical client output, and the
    /// compile (plus its cache store) happens exactly once.
    #[derive(Default)]
    pub(super) struct Idempotency {
        state: Mutex<(VecDeque<u64>, HashMap<u64, Response>)>,
    }

    impl Idempotency {
        pub(super) fn lookup(&self, id: u64) -> Option<Response> {
            let st = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.1.get(&id).cloned()
        }

        /// Current occupancy, for the `stats` snapshot.
        pub(super) fn len(&self) -> usize {
            let st = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.1.len()
        }

        pub(super) fn insert(&self, id: u64, resp: Response) {
            let mut st = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (order, map) = &mut *st;
            // First answer wins: a duplicate id is by definition a retry
            // of the same logical request, so the stored response is
            // already the one its client must see.
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(id) {
                slot.insert(resp);
                order.push_back(id);
                if order.len() > IDEMPOTENCY_CAPACITY {
                    if let Some(old) = order.pop_front() {
                        map.remove(&old);
                    }
                }
            }
        }
    }

    /// Everything a worker needs to handle one connection; bundled so the
    /// handlers stay call-site readable.
    struct Ctx<'a> {
        opts: &'a Options,
        deadline: u64,
        cache: Option<&'a cache::Cache>,
        obs: &'a impact_obs::Telemetry,
        plan: &'a FaultPlan,
        totals: &'a Totals,
        jobs: usize,
        queue_depth: usize,
        /// Connections accepted but not yet picked up by a worker; the
        /// ping self-check reports queue headroom from this.
        queued: &'a AtomicU64,
        /// Connections admitted past the accept loop and not yet finished
        /// (queued or in a worker); `--max-conns` sheds against this.
        open: &'a AtomicU64,
        idem: &'a Idempotency,
        /// Bounded ring of recent structured events, dumped on crashes.
        flight: &'a impact_obs::FlightRecorder,
        /// Where incident/flight dumps land (`--report-dir`, else the
        /// cache dir, else nowhere).
        incident_dir: Option<&'a std::path::Path>,
        /// Sequence number for incident dump file names.
        incidents: &'a AtomicU64,
        /// The `--max-conns` cap, echoed into the `stats` snapshot.
        max_conns: Option<u64>,
    }

    /// Fires the named service fault if armed, making every injection
    /// visible in telemetry (`chaos:injected` + `chaos:<key>`).
    fn chaos(ctx: &Ctx, key: &str) -> bool {
        if ctx.plan.should_fail(key) {
            ctx.obs.count(names::CHAOS_INJECTED, 1);
            ctx.obs.count(&format!("chaos:{key}"), 1);
            true
        } else {
            false
        }
    }

    /// Records a flight-recorder event, surfacing ring evictions on the
    /// `flight:dropped` counter.
    fn flight(ctx: &Ctx, kind: &str, detail: &str, trace: u64) {
        if ctx.flight.record(kind, detail, trace) {
            ctx.obs.count(names::FLIGHT_DROPPED, 1);
        }
    }

    /// Dumps the flight ring into the incident path — the last moments
    /// before a worker panic, quarantine, or protocol violation. Dump
    /// failures are swallowed: the recorder must never take the daemon
    /// down with it.
    fn dump_incident(ctx: &Ctx, reason: &str, trace: u64) {
        let Some(dir) = ctx.incident_dir else { return };
        let n = ctx.incidents.fetch_add(1, Ordering::Relaxed);
        let (events, dropped) = ctx.flight.snapshot();
        let body = flight_json("serve-incident", reason, trace, &events, dropped);
        let _ = crate::report::atomic_write_in(
            dir,
            &format!("serve-incident-{n:04}.json"),
            body.as_bytes(),
        );
    }

    /// Builds the response's span/counter summary from a request's
    /// private collector: a queue-wait span at the origin, the request's
    /// own spans rebased past it (so `start_us` 0 = the connection was
    /// accepted), and the counter deltas plus the explicit cache
    /// hit/miss outcome (which the cache counted against the daemon's
    /// aggregate, not the request collector).
    fn summary_records(
        snap: &impact_obs::Metrics,
        trace: u64,
        wait_us: u64,
        cache_delta: Option<bool>,
    ) -> SummarySection {
        let mut spans = Vec::with_capacity(snap.spans.len() + 1);
        spans.push(impact_obs::SpanEvent {
            name: "serve:queue-wait".to_string(),
            start_us: 0,
            dur_us: wait_us,
            trace,
        });
        spans.extend(snap.spans.iter().map(|s| impact_obs::SpanEvent {
            name: s.name.clone(),
            start_us: s.start_us.saturating_add(wait_us),
            dur_us: s.dur_us,
            trace: s.trace,
        }));
        // The service span parents every request span in the stitched
        // trace: it starts where queue-wait ends and extends to the last
        // recorded span's end (the response write is not yet measurable
        // here).
        let service_end = spans
            .iter()
            .map(|s| s.start_us.saturating_add(s.dur_us))
            .max()
            .unwrap_or(wait_us);
        spans.insert(
            1,
            impact_obs::SpanEvent {
                name: "serve:request".to_string(),
                start_us: wait_us,
                dur_us: service_end.saturating_sub(wait_us),
                trace,
            },
        );
        let mut counters: Vec<(String, u64)> =
            snap.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        match cache_delta {
            Some(true) => counters.push((names::CACHE_HITS.to_string(), 1)),
            Some(false) => counters.push((names::CACHE_MISSES.to_string(), 1)),
            None => {}
        }
        (spans, counters)
    }

    /// Takes the live registry snapshot behind the `stats` op.
    fn stats_snapshot(ctx: &Ctx) -> StatsSnapshot {
        let m = ctx.obs.snapshot();
        let (flight_events, flight_dropped) = ctx.flight.snapshot();
        StatsSnapshot {
            uptime_us: ctx.obs.now_us(),
            workers: ctx.jobs,
            queue_depth: ctx.queue_depth,
            queued: ctx.queued.load(Ordering::Relaxed),
            open: ctx.open.load(Ordering::Relaxed),
            max_conns: ctx.max_conns,
            idem_len: ctx.idem.len(),
            idem_capacity: IDEMPOTENCY_CAPACITY,
            flight_len: flight_events.len(),
            flight_capacity: ctx.flight.capacity(),
            flight_dropped,
            cache: ctx.cache.map(cache::Cache::entry_stats),
            counters: m.counters.into_iter().collect(),
            hists: m.hists.into_iter().collect(),
        }
    }

    /// Answers a `stats` request from the registry snapshot, rendered
    /// daemon-side in the requested format.
    fn stats_response(ctx: &Ctx, format: StatsFormat) -> Response {
        let snap = stats_snapshot(ctx);
        let payload = match format {
            StatsFormat::Table => render_stats_table(&snap),
            StatsFormat::Prom => render_stats_prom(&snap),
            StatsFormat::Json => render_stats_json(&snap),
        };
        Response::ok(0, false, payload)
    }

    /// Runs the daemon until SIGTERM/SIGINT, then drains and returns the
    /// serve summary with exit code 0.
    pub fn run_serve(opts: &Options) -> Result<(i32, String), String> {
        let service = opts.service_config()?;
        // Pipeline flags are validated once at startup so a bad config
        // fails the daemon immediately instead of every request.
        opts.validate_flags()?;
        let plan = service_fault_plan(opts)?;
        if opts.positional.len() != 1 {
            return Err(format!(
                "serve needs exactly one socket path (got {})\n{}",
                opts.positional.len(),
                usage()
            ));
        }
        let socket = PathBuf::from(&opts.positional[0]);
        if socket.exists() {
            // A previous daemon's stale socket; binding requires the name
            // to be free.
            std::fs::remove_file(&socket)
                .map_err(|e| format!("cannot remove stale socket `{}`: {e}", socket.display()))?;
        }
        // The daemon's aggregate is always at least counters-only — the
        // `stats` op needs a live registry whether or not artifacts were
        // requested; full span retention only when artifacts will be
        // written at drain.
        let obs = if opts.trace_out.is_some() || opts.metrics_out.is_some() {
            impact_obs::Telemetry::enabled()
        } else {
            impact_obs::Telemetry::counters_only()
        };
        let artifact_cache = match &service.cache_dir {
            // The cache shares the daemon's fault plan (cloned plans
            // share counters) so `cache:*` chaos arms in one place.
            Some(dir) => Some(cache::Cache::open_with(
                dir,
                &obs,
                service.cache_budget_bytes,
                plan.clone(),
            )?),
            None => None,
        };
        crate::supervise::silence_worker_panics();
        super::sig::install();
        // Bind TCP (when asked) *before* the Unix socket: the socket
        // file's existence is the readiness signal tests and operators
        // poll, so by the time it appears, every carrier is accepting.
        let mut listeners: Vec<Listener> = Vec::new();
        if let Some(addr) = &service.tcp {
            let l = TcpListener::bind(addr.as_str())
                .map_err(|e| format!("cannot bind serve TCP address `{addr}`: {e}"))?;
            listeners.push(Listener::Tcp(l));
        }
        let unix = UnixListener::bind(&socket)
            .map_err(|e| format!("cannot bind serve socket `{}`: {e}", socket.display()))?;
        listeners.push(Listener::Unix(unix));
        for l in &listeners {
            l.set_nonblocking(true)
                .map_err(|e| format!("cannot configure serve listener: {e}"))?;
        }
        let (tx, rx) = mpsc::sync_channel::<(Conn, std::time::Instant)>(service.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let req_opts = request_options(opts);
        let deadline = opts.time_limit_ms.unwrap_or(DEFAULT_TIME_LIMIT_MS);
        let totals = Totals::default();
        let queued = AtomicU64::new(0);
        let open = AtomicU64::new(0);
        let idem = Idempotency::default();
        let flight_ring = impact_obs::FlightRecorder::new(service.flight_recorder);
        let incidents = AtomicU64::new(0);
        // Crash dumps land next to the other per-run artifacts: the
        // report dir when configured, else the cache dir, else nowhere.
        let incident_dir: Option<PathBuf> = opts
            .report_dir
            .as_ref()
            .map(PathBuf::from)
            .or_else(|| service.cache_dir.clone());
        if let Some(dir) = &incident_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create incident dir `{}`: {e}", dir.display()))?;
        }
        let busy_hint = service.queue_depth as u64 * BUSY_RETRY_SLOT_MS;
        let ctx = Ctx {
            opts: &req_opts,
            deadline,
            cache: artifact_cache.as_ref(),
            obs: &obs,
            plan: &plan,
            totals: &totals,
            jobs: service.jobs,
            queue_depth: service.queue_depth,
            queued: &queued,
            open: &open,
            idem: &idem,
            flight: &flight_ring,
            incident_dir: incident_dir.as_deref(),
            incidents: &incidents,
            max_conns: service.max_conns,
        };

        std::thread::scope(|scope| {
            for w in 0..service.jobs {
                let rx = Arc::clone(&rx);
                let ctx = &ctx;
                std::thread::Builder::new()
                    .name(format!("{}-serve{w}", crate::supervise::WORKER_THREAD))
                    .spawn_scoped(scope, move || loop {
                        // Take the stream with the receiver lock scoped
                        // tightly: handling must not serialize workers.
                        let stream = {
                            let guard =
                                rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        let Ok((stream, accepted_at)) = stream else {
                            break;
                        };
                        ctx.queued.fetch_sub(1, Ordering::Relaxed);
                        handle_connection(stream, accepted_at, ctx);
                        ctx.open.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn serve worker");
            }
            // Accept loop, on this thread, round-robin over the bound
            // carriers. SIGTERM flips the flag; the loop notices within
            // POLL_MS and falls through to the drain.
            'accept: loop {
                if super::sig::requested() {
                    break;
                }
                let mut any_ready = false;
                for listener in &listeners {
                    match listener.accept() {
                        Ok(stream) => {
                            any_ready = true;
                            // `net:connect-refused[=N]`: the Nth accepted
                            // connection is dropped before admission —
                            // the peer sees an abrupt close, exactly as
                            // if a dying daemon's backlog were flushed.
                            if chaos(&ctx, "net:connect-refused") {
                                flight(&ctx, "fault", "net:connect-refused", 0);
                                drop(stream);
                                continue;
                            }
                            bump(&totals.requests);
                            obs.count(names::SERVE_REQUESTS, 1);
                            flight(&ctx, "accept", "connection admitted", 0);
                            // Accept-time connection cap (TCP hardening,
                            // enforced on every carrier): over the cap,
                            // shed immediately rather than queue.
                            if let Some(cap) = service.max_conns {
                                if open.load(Ordering::Relaxed) >= cap {
                                    bump(&totals.shed);
                                    obs.count(names::SERVE_SHED, 1);
                                    obs.count(names::SERVE_CONN_CAPPED, 1);
                                    flight(&ctx, "shed", "max-conns cap", 0);
                                    respond_busy(stream, busy_hint);
                                    continue;
                                }
                            }
                            queued.fetch_add(1, Ordering::Relaxed);
                            open.fetch_add(1, Ordering::Relaxed);
                            match tx.try_send((stream, std::time::Instant::now())) {
                                Ok(()) => {}
                                Err(TrySendError::Full((stream, _))) => {
                                    // Explicit overload shedding: an
                                    // immediate `busy` beats an unbounded
                                    // queue.
                                    queued.fetch_sub(1, Ordering::Relaxed);
                                    open.fetch_sub(1, Ordering::Relaxed);
                                    bump(&totals.shed);
                                    obs.count(names::SERVE_SHED, 1);
                                    flight(&ctx, "shed", "queue full", 0);
                                    respond_busy(stream, busy_hint);
                                }
                                Err(TrySendError::Disconnected(_)) => break 'accept,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            // Transient accept failure; the poll sleep
                            // below is the backoff.
                        }
                    }
                }
                if !any_ready {
                    std::thread::sleep(Duration::from_millis(POLL_MS));
                }
            }
            // Drain: closing the channel lets each worker finish its
            // in-flight request plus whatever is queued, then exit.
            drop(tx);
        });
        let _ = std::fs::remove_file(&socket);
        telemetry::write_artifacts(opts, &obs, None)?;
        // The final ring rides alongside the telemetry artifacts, so the
        // daemon's last moments are captured even on a clean drain.
        if let Some(dir) = &incident_dir {
            let (events, dropped) = flight_ring.snapshot();
            let body = flight_json("serve-flight-final", "drain", 0, &events, dropped);
            let _ = crate::report::atomic_write_in(dir, "flight-final.json", body.as_bytes());
        }
        let mut out = String::new();
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "; serve: drained after {} requests, {} ok, {} errors, {} shed, {} pings, {} stats\n",
                totals.requests.load(Ordering::Relaxed),
                totals.ok.load(Ordering::Relaxed),
                totals.errors.load(Ordering::Relaxed),
                totals.shed.load(Ordering::Relaxed),
                totals.pings.load(Ordering::Relaxed),
                totals.stats.load(Ordering::Relaxed),
            ),
        );
        Ok((0, out))
    }

    /// Best-effort `busy` response on the accept thread; a short write
    /// timeout keeps a stalled client from wedging the accept loop. If
    /// the timeout cannot be configured, the write is skipped entirely —
    /// never attempted unbounded.
    fn respond_busy(stream: Conn, retry_after_ms: u64) {
        if stream
            .set_write_timeout(Some(Duration::from_millis(250)))
            .is_err()
        {
            return;
        }
        let mut stream = stream;
        let _ = write_response(&mut stream, &Response::busy(retry_after_ms));
    }

    /// Handles one connection end to end under `catch_unwind`: a panic
    /// anywhere in the handling (including the injected
    /// `serve:accept-crash`) costs that connection its response — the
    /// client sees a drop and retries — but never the daemon, which would
    /// otherwise die at scope join when the worker unwound.
    fn handle_connection(stream: Conn, accepted_at: std::time::Instant, ctx: &Ctx) {
        if catch_unwind(AssertUnwindSafe(|| {
            handle_connection_inner(stream, accepted_at, ctx);
        }))
        .is_err()
        {
            bump(&ctx.totals.errors);
            ctx.obs.count(names::SERVE_ERRORS, 1);
            flight(ctx, "panic", "connection handler panicked", 0);
            dump_incident(ctx, "handler-panic", 0);
        }
    }

    /// The connection body: configure timeouts (mandatory), read, handle
    /// (panic-isolated compile or ping self-check), respond. Never
    /// propagates errors — a broken peer only loses its own response.
    fn handle_connection_inner(stream: Conn, accepted_at: std::time::Instant, ctx: &Ctx) {
        let wait_us = accepted_at.elapsed().as_micros() as u64;
        let pickup = std::time::Instant::now();
        let pickup_us = ctx.obs.now_us();
        ctx.obs.record_value(names::HIST_QUEUE_WAIT, wait_us);
        if chaos(ctx, "serve:accept-crash") {
            flight(ctx, "fault", "serve:accept-crash", 0);
            panic!("injected accept-path crash");
        }
        // Unbounded I/O is never acceptable: a connection whose timeouts
        // cannot be configured gets a terminal protocol error (written
        // best-effort) instead of a compile. TCP peers get the tight
        // slow-loris deadline for delivering the request; a Unix peer is
        // a local process and keeps the ordinary IO timeout.
        let request_timeout = if stream.is_tcp() {
            TCP_HEADER_TIMEOUT_MS
        } else {
            IO_TIMEOUT_MS
        };
        if let Err(e) = stream
            .set_read_timeout(Some(Duration::from_millis(request_timeout)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_millis(IO_TIMEOUT_MS))))
        {
            bump(&ctx.totals.errors);
            ctx.obs.count(names::SERVE_ERRORS, 1);
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                &Response::error(format!("cannot configure socket timeouts: {e}")),
            );
            return;
        }
        // `net:slow-read`: the daemon dawdles before reading, holding
        // the admitted connection open — the fault a `--max-conns` cap
        // (and a patient client) must absorb.
        if chaos(ctx, "net:slow-read") {
            std::thread::sleep(Duration::from_millis(SLOW_READ_MS));
        }
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        };
        let request = read_request(&mut BufReader::new(reader));
        let trace = match &request {
            Ok(Request::Compile { trace, .. }) | Ok(Request::Ping { trace }) => *trace,
            _ => 0,
        };
        // `net:reset`: the connection dies right after the request is on
        // the wire, before any work — unlike `net:drop`, nothing was
        // compiled, so the retry must redo (or idempotently replay) it.
        if chaos(ctx, "net:reset") {
            bump(&ctx.totals.errors);
            ctx.obs.count(names::SERVE_ERRORS, 1);
            flight(ctx, "fault", "net:reset", trace);
            dump_incident(ctx, "net:reset", trace);
            let _ = stream.shutdown_both();
            return;
        }
        let response = match request {
            Err(e) => {
                bump(&ctx.totals.errors);
                ctx.obs.count(names::SERVE_ERRORS, 1);
                flight(ctx, "protocol-error", &e, 0);
                dump_incident(ctx, "protocol-violation", 0);
                Response::error(format!("bad request: {e}"))
            }
            Ok(Request::Ping { trace }) => {
                bump(&ctx.totals.pings);
                ctx.obs.count(names::SERVE_PINGS, 1);
                flight(ctx, "request", "ping", trace);
                health_response(ctx)
            }
            Ok(Request::Stats { format }) => {
                bump(&ctx.totals.stats);
                ctx.obs.count(names::STATS_REQUESTS, 1);
                flight(ctx, "request", "stats", 0);
                stats_response(ctx, format)
            }
            Ok(Request::Compile { sources, id, trace }) => {
                flight(ctx, "request", "compile", trace);
                // The compile additionally runs on the supervised worker
                // thread under the wall-clock deadline; this catch_unwind
                // isolates panics in the compile path (and the injected
                // `serve:panic`) into a structured error response.
                match catch_unwind(AssertUnwindSafe(|| {
                    compile_request(&sources, id, trace, wait_us, ctx)
                })) {
                    Ok(resp) => {
                        if resp.status == "ok" {
                            bump(&ctx.totals.ok);
                            ctx.obs.count(names::SERVE_OK, 1);
                        } else {
                            bump(&ctx.totals.errors);
                            ctx.obs.count(names::SERVE_ERRORS, 1);
                        }
                        resp
                    }
                    Err(payload) => {
                        bump(&ctx.totals.errors);
                        ctx.obs.count(names::SERVE_ERRORS, 1);
                        let msg = panic_message(payload);
                        flight(ctx, "panic", &msg, trace);
                        dump_incident(ctx, "worker-panic", trace);
                        Response::error(format!("request worker panicked: {msg}"))
                    }
                }
            }
        };
        // Daemon-side latency accounting, tagged with the request's
        // trace: the queue wait it endured and the pickup-to-done
        // service time.
        let service_us = pickup.elapsed().as_micros() as u64;
        ctx.obs.record_value(names::HIST_SERVICE, service_us);
        let traced = ctx.obs.with_trace(trace);
        traced.add_span(
            "serve:queue-wait",
            pickup_us.saturating_sub(wait_us),
            wait_us,
        );
        traced.add_span("serve:request", pickup_us, service_us);
        // Network chaos on the response path: the work above is done (and
        // cached, and remembered by id), so the retrying client converges
        // to the same bytes.
        if chaos(ctx, "net:drop") {
            return;
        }
        let mut stream = stream;
        if chaos(ctx, "net:torn-write") {
            let mut wire = Vec::new();
            let _ = write_response(&mut wire, &response);
            let _ = stream.write_all(&wire[..wire.len() / 2]);
            let _ = stream.flush();
            return;
        }
        // `net:partial-frame`: only a prefix of the response *header
        // line* makes it out — the client cannot even learn the payload
        // length (torn-write, by contrast, usually dies mid-payload).
        if chaos(ctx, "net:partial-frame") {
            let mut wire = Vec::new();
            let _ = write_response(&mut wire, &response);
            let header_end = wire
                .iter()
                .position(|&b| b == b'\n')
                .map_or(wire.len(), |i| i + 1);
            let _ = stream.write_all(&wire[..header_end / 2]);
            let _ = stream.flush();
            return;
        }
        let _ = write_response(&mut stream, &response);
    }

    /// The daemon self-checks behind `ping`: queue headroom (from the
    /// accepted-but-unclaimed connection count) and cache-dir
    /// writability (a real probe write). Degraded states answer `ok`
    /// with exit 1 so `impactc request --ping` can gate on it.
    fn health_response(ctx: &Ctx) -> Response {
        let queued = ctx.queued.load(Ordering::Relaxed);
        let depth = ctx.queue_depth as u64;
        let headroom = depth.saturating_sub(queued);
        let cache_state = match ctx.cache {
            None => "disabled",
            Some(c) => {
                // A daemon killed between this write and the remove
                // leaks the probe file; the cache's startup scan reaps
                // it (see `cache::HEALTH_PROBE`).
                let probe = c.dir().join(cache::HEALTH_PROBE);
                match std::fs::write(&probe, b"ok") {
                    Ok(()) => {
                        let _ = std::fs::remove_file(&probe);
                        "writable"
                    }
                    Err(_) => "read-only",
                }
            }
        };
        let healthy = headroom > 0 && cache_state != "read-only";
        let payload = format!(
            "; serve: {}\n; workers: {}\n; queue: {queued}/{depth} used, {headroom} headroom\n; cache: {cache_state}\n",
            if healthy { "healthy" } else { "degraded" },
            ctx.jobs,
        );
        Response::ok(i32::from(!healthy), false, payload)
    }

    /// Compiles one request: idempotent replay, fault points, cache
    /// probe, supervised attempt, cache store. All the work records into
    /// a per-request collector tagged with the request's trace id; the
    /// collector is absorbed into the daemon aggregate and summarized
    /// into the response so the client can stitch daemon spans under its
    /// own.
    fn compile_request(
        sources: &[Source],
        id: u64,
        trace: u64,
        wait_us: u64,
        ctx: &Ctx,
    ) -> Response {
        // A repeated id means this exact logical request already landed
        // and only its response was lost: replay the remembered bytes —
        // no recompile, no second cache store, no `; cache: hit` marker
        // the first response didn't have. The stored response carries
        // its summary, so the replayed client still stitches a trace.
        if let Some(resp) = ctx.idem.lookup(id) {
            ctx.obs.count(names::SERVE_IDEMPOTENT_REPLAYS, 1);
            return resp;
        }
        if chaos(ctx, "serve:stall") {
            std::thread::sleep(Duration::from_millis(STALL_MS));
        }
        if chaos(ctx, "serve:panic") {
            flight(ctx, "fault", "serve:panic", trace);
            panic!("injected serve worker panic");
        }
        let pickup_us = ctx.obs.now_us();
        // The request's private collector always keeps spans (for the
        // response summary) even when the daemon aggregate is
        // counters-only.
        let req_obs = impact_obs::Telemetry::enabled().with_trace(trace);
        let inputs = match load_inputs(&ctx.opts.inputs) {
            Ok(i) => i,
            Err(e) => return Response::error(e),
        };
        let runs: Vec<RunSpec> = vec![(inputs, ctx.opts.args.clone())];
        let key = ctx.cache.map(|_| cache::unit_key(sources, &runs, ctx.opts));
        let mut cache_delta = None;
        if let (Some(c), Some(k)) = (ctx.cache, key) {
            let looked = {
                let _probe = req_obs.span("serve:cache-probe");
                c.load(k)
            };
            match looked {
                cache::Lookup::Hit(hit) => {
                    let snap = req_obs.snapshot();
                    ctx.obs.absorb(&snap, pickup_us);
                    return Response::ok(hit.exit, true, hit.report).with_summary(summary_records(
                        &snap,
                        trace,
                        wait_us,
                        Some(true),
                    ));
                }
                cache::Lookup::Quarantined { entry, reason } => {
                    // The entry has already been renamed aside with a
                    // cache incident report; the flight ring captures
                    // the moment for the serve-side dump too.
                    cache_delta = Some(false);
                    flight(ctx, "quarantine", &format!("{entry}: {reason}"), trace);
                    dump_incident(ctx, "cache-quarantine", trace);
                }
                cache::Lookup::Miss => cache_delta = Some(false),
            }
        }
        let compile_t0 = std::time::Instant::now();
        let (result, _wall) = crate::supervise::run_attempt(
            sources.to_vec(),
            runs,
            ctx.opts.clone(),
            ctx.deadline,
            req_obs.clone(),
        );
        ctx.obs
            .record_value(names::HIST_COMPILE, compile_t0.elapsed().as_micros() as u64);
        let snap = req_obs.snapshot();
        // Per-stage latency distributions, one histogram per span name
        // (the dynamic-name precedent is the `chaos:<key>` counters).
        for st in snap.span_stats() {
            ctx.obs
                .record_value(&format!("hist:stage:{}-us", st.name), st.total_us);
        }
        ctx.obs.absorb(&snap, pickup_us);
        match result {
            Ok((code, report)) => {
                if let (Some(c), Some(k)) = (ctx.cache, key) {
                    // Store failures degrade the cache, not the response.
                    let _ = c.store(k, code, &report);
                }
                let resp = Response::ok(code, false, report).with_summary(summary_records(
                    &snap,
                    trace,
                    wait_us,
                    cache_delta,
                ));
                // Only completed `ok` responses are replayable: an error
                // (a worker panic, say) is exactly what a retry should
                // get a fresh chance at.
                ctx.idem.insert(id, resp.clone());
                resp
            }
            Err(f) => Response::error(f.render()),
        }
    }
}

// ----- signal handling -----------------------------------------------------

/// SIGTERM/SIGINT latch. The handler performs exactly one atomic store —
/// the only operation that is unconditionally async-signal-safe — and the
/// accept loop polls the flag.
///
/// This binds the C `signal` function directly rather than depending on a
/// bindings crate; it is the crate's sole `unsafe_code` exception (see
/// the crate attribute in `lib.rs`).
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers and clears any previously latched request.
    pub fn install() {
        SHUTDOWN.store(false, Ordering::SeqCst);
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// True once SIGTERM or SIGINT has been received.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

// ----- entry points --------------------------------------------------------

/// Runs the serve daemon (see the module docs).
///
/// # Errors
///
/// Returns a usage-style message for a malformed invocation or an
/// unbindable socket. A drained daemon returns `Ok((0, summary))`.
#[cfg(unix)]
pub fn run_serve(opts: &Options) -> Result<(i32, String), String> {
    daemon::run_serve(opts)
}

/// Serve is Unix-only (it is built on Unix domain sockets and POSIX
/// signals).
#[cfg(not(unix))]
pub fn run_serve(_opts: &Options) -> Result<(i32, String), String> {
    Err("serve requires a Unix platform (Unix sockets and signals)".to_string())
}

// ----- the client ----------------------------------------------------------

/// The outcome of one client attempt, classified by the retry taxonomy:
/// `Retry` failures are presumed transient (overload, a dropped or torn
/// connection, a panicked worker); `Fail` failures are deterministic
/// properties of the request or the server's answer, which retrying
/// cannot change.
#[cfg(unix)]
enum Outcome {
    Done(i32, String),
    Retry { why: String, after_ms: Option<u64> },
    Fail(String),
}

/// True for wire errors a retry can plausibly fix: a torn or dropped
/// response (truncation) or a failed/timed-out socket read. Protocol
/// violations (a well-formed but wrong header) stay terminal.
#[cfg(unix)]
fn wire_error_is_retryable(err: &str) -> bool {
    err.contains("truncated") || err.contains("read failed")
}

/// What one exchange sends: a health-check ping, a stats snapshot, or a
/// compile with its idempotency and trace ids.
#[cfg(unix)]
enum WirePayload<'a> {
    Ping {
        trace: u64,
    },
    Stats(StatsFormat),
    Compile {
        sources: &'a [Source],
        id: u64,
        trace: u64,
    },
}

/// Mixed into the invocation salt to derive a request's trace id as a
/// sibling of its idempotency id: both are stable across one logical
/// request's retries, but the two id spaces never collide.
#[cfg(unix)]
const TRACE_SALT: u64 = 0x7e4a_1c09_5b3d_f861;

/// A per-invocation salt for idempotency ids: the same invocation
/// retries under one id (so a lost response replays), while two separate
/// invocations of the same files get distinct ids (so each observes its
/// own fresh compile-or-cache decision).
#[cfg(unix)]
fn invocation_salt() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| (d.as_secs() << 30) ^ u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    (u64::from(std::process::id()) << 48) ^ nanos
}

/// FNV-1a over the salt and the request's sources: stable across the
/// retries of one logical request.
#[cfg(unix)]
fn request_id(sources: &[Source], salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&salt.to_le_bytes());
    for s in sources {
        eat(s.name.as_bytes());
        eat(&[0]);
        eat(s.text.as_bytes());
        eat(&[0]);
    }
    h
}

/// One endpoint's client-side state: its breaker, its `retry-after-ms`
/// hold, and the last error it produced (for the terminal fleet report).
#[cfg(unix)]
struct EndpointState {
    endpoint: crate::transport::Endpoint,
    breaker: crate::transport::Breaker,
    not_before: Option<std::time::Instant>,
    last_err: String,
}

/// The fleet client: an ordered endpoint list with per-endpoint circuit
/// breakers, shared across every exchange of one invocation (so a
/// `batch --remote` campaign's breakers carry state from unit to unit).
#[cfg(unix)]
struct Fleet<'a> {
    /// The original comma-separated argument, for jitter keying.
    arg: &'a str,
    states: Vec<EndpointState>,
    opts: &'a Options,
    obs: &'a impact_obs::Telemetry,
    /// Append the `; cache: hit` marker to cached responses. `request`
    /// keeps the PR 6 marker; `batch --remote` suppresses it so campaign
    /// stdout is byte-identical whether the fleet's caches were warm.
    note_cache_hits: bool,
}

#[cfg(unix)]
impl<'a> Fleet<'a> {
    fn new(
        endpoints: Vec<crate::transport::Endpoint>,
        arg: &'a str,
        opts: &'a Options,
        obs: &'a impact_obs::Telemetry,
        note_cache_hits: bool,
    ) -> Fleet<'a> {
        Fleet {
            arg,
            states: endpoints
                .into_iter()
                .map(|endpoint| EndpointState {
                    endpoint,
                    breaker: crate::transport::Breaker::new(),
                    not_before: None,
                    last_err: "not yet tried".to_string(),
                })
                .collect(),
            opts,
            obs,
            note_cache_hits,
        }
    }

    /// One wire attempt against one endpoint, classified by the retry
    /// taxonomy.
    fn attempt_endpoint(
        &self,
        ep: &crate::transport::Endpoint,
        wire: &WirePayload,
        remaining_ms: Option<u64>,
    ) -> Outcome {
        let stream = match ep.connect() {
            Ok(s) => s,
            Err(e) => {
                return Outcome::Retry {
                    why: format!("cannot connect to serve socket `{}`: {e}", ep.display()),
                    after_ms: None,
                }
            }
        };
        // Mandatory timeouts, shrunk to the remaining deadline: an
        // exchange must never outlive its budget.
        let io_ms = remaining_ms
            .map_or(IO_TIMEOUT_MS, |r| r.min(IO_TIMEOUT_MS))
            .max(1);
        if let Err(e) = stream
            .set_read_timeout(Some(Duration::from_millis(io_ms)))
            .and_then(|()| stream.set_write_timeout(Some(Duration::from_millis(io_ms))))
        {
            return Outcome::Fail(format!("cannot configure socket timeouts: {e}"));
        }
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(e) => return Outcome::Fail(format!("cannot clone socket stream: {e}")),
        };
        let t0 = self.obs.now_us();
        let wall = std::time::Instant::now();
        let sent = match wire {
            WirePayload::Ping { trace } => write_ping(&mut writer, *trace),
            WirePayload::Stats(format) => write_stats(&mut writer, *format),
            WirePayload::Compile { sources, id, trace } => {
                write_request(&mut writer, sources, *id, *trace)
            }
        };
        if let Err(e) = sent {
            return Outcome::Retry {
                why: format!("cannot send request: {e}"),
                after_ms: None,
            };
        }
        let resp = match read_response(&mut BufReader::new(stream)) {
            Ok(r) => r,
            Err(e) if wire_error_is_retryable(&e) => {
                return Outcome::Retry {
                    why: e,
                    after_ms: None,
                }
            }
            Err(e) => return Outcome::Fail(e),
        };
        let rtt_us = wall.elapsed().as_micros() as u64;
        self.obs.record_value(names::HIST_RTT, rtt_us);
        match resp.status.as_str() {
            "ok" => {
                if let WirePayload::Compile { trace, .. } = wire {
                    // Stitch the daemon's summary under this exchange's
                    // round-trip span: daemon spans are rebased onto the
                    // wire timeline and clamped inside [t0, t0+rtt], so
                    // the client span always encloses them.
                    let traced = self.obs.with_trace(*trace);
                    traced.add_span("client:request", t0, rtt_us);
                    let end = t0.saturating_add(rtt_us);
                    for s in &resp.spans {
                        let start = t0.saturating_add(s.start_us).min(end);
                        let dur = s.dur_us.min(end.saturating_sub(start));
                        self.obs.with_trace(s.trace).add_span(&s.name, start, dur);
                    }
                    for (name, v) in &resp.counters {
                        self.obs.count(name, *v);
                    }
                }
                let mut out = resp.payload;
                if resp.cached && self.note_cache_hits {
                    out.push_str("; cache: hit\n");
                }
                Outcome::Done(resp.exit, out)
            }
            "busy" => Outcome::Retry {
                why: format!("server busy: {}", resp.payload),
                after_ms: (resp.retry_after_ms > 0).then_some(resp.retry_after_ms),
            },
            _ => {
                // A worker panic is presumed transient, mirroring the
                // batch supervisor's taxonomy; any other server error is
                // a deterministic property of this request.
                if resp.payload.starts_with("request worker panicked") {
                    Outcome::Retry {
                        why: resp.payload,
                        after_ms: None,
                    }
                } else {
                    Outcome::Fail(resp.payload)
                }
            }
        }
    }

    /// Records a retryable failure against endpoint `i`, driving its
    /// breaker and emitting the `breaker:opened` edge.
    fn note_failure(
        &mut self,
        i: usize,
        now: std::time::Instant,
        why: String,
        after_ms: Option<u64>,
    ) {
        let multi = self.states.len() > 1;
        let st = &mut self.states[i];
        st.not_before = after_ms.map(|ms| now + Duration::from_millis(ms));
        st.last_err = why;
        // Breakers only engage on a real fleet: a fleet of one
        // degenerates to the plain retry loop (skipping the only
        // endpoint would help nobody).
        if multi && st.breaker.record_failure(now) {
            self.obs.count(names::BREAKER_OPENED, 1);
            eprintln!(
                "; request: circuit breaker opened for `{}` after {} consecutive failures",
                st.endpoint.display(),
                crate::transport::BREAKER_THRESHOLD
            );
        }
    }

    /// Runs one logical exchange to completion across the fleet: rounds
    /// of deterministic-order failover bounded by `--retries` and
    /// `--deadline-ms`. See the module docs for the taxonomy.
    fn exchange(&mut self, wire: &WirePayload) -> Result<(i32, String), String> {
        use std::time::Instant;

        let retries = self.opts.retries.unwrap_or(DEFAULT_RETRIES);
        let base = self.opts.retry_base_ms.unwrap_or(DEFAULT_RETRY_BASE_MS);
        let max_attempts = retries.saturating_add(1);
        let multi = self.states.len() > 1;
        let start = Instant::now();
        let mut last_err = String::new();
        for attempt in 1..=max_attempts {
            let remaining = match self.opts.deadline_ms {
                None => None,
                Some(budget) => {
                    let spent = start.elapsed().as_millis() as u64;
                    if spent >= budget {
                        return Err(format!(
                            "request deadline of {budget} ms exceeded after {} attempts: {last_err}",
                            attempt - 1
                        ));
                    }
                    Some(budget - spent)
                }
            };
            // One round: every admissible endpoint, in listed order.
            let mut round_hint: Option<u64> = None;
            for i in 0..self.states.len() {
                let now = Instant::now();
                if multi {
                    if let Some(nb) = self.states[i].not_before {
                        if now < nb {
                            // Honoring this endpoint's retry-after hint;
                            // the rest of the fleet is still in play.
                            continue;
                        }
                    }
                    match self.states[i].breaker.admit(now) {
                        crate::transport::Admission::Try => {}
                        crate::transport::Admission::Skip => continue,
                        crate::transport::Admission::Probe => {
                            // Half-open: one cheap ping decides between
                            // recovery and another cooldown before any
                            // real request is risked on this endpoint.
                            self.obs.count(names::BREAKER_PROBES, 1);
                            let ep = self.states[i].endpoint.clone();
                            eprintln!(
                                "; request: probing `{}` (circuit breaker half-open)",
                                ep.display()
                            );
                            match self.attempt_endpoint(
                                &ep,
                                &WirePayload::Ping { trace: 0 },
                                remaining,
                            ) {
                                Outcome::Done(..) => {
                                    if self.states[i].breaker.record_success() {
                                        self.obs.count(names::BREAKER_RECOVERED, 1);
                                        eprintln!(
                                            "; request: endpoint `{}` recovered",
                                            ep.display()
                                        );
                                    }
                                }
                                Outcome::Retry { why, after_ms } => {
                                    let why = format!("half-open probe failed: {why}");
                                    self.note_failure(i, Instant::now(), why, after_ms);
                                    last_err = self.states[i].last_err.clone();
                                    continue;
                                }
                                Outcome::Fail(why) => {
                                    let why = format!("half-open probe failed: {why}");
                                    self.note_failure(i, Instant::now(), why, None);
                                    last_err = self.states[i].last_err.clone();
                                    continue;
                                }
                            }
                        }
                    }
                }
                let ep = self.states[i].endpoint.clone();
                match self.attempt_endpoint(&ep, wire, remaining) {
                    Outcome::Done(exit, out) => {
                        if self.states[i].breaker.record_success() {
                            self.obs.count(names::BREAKER_RECOVERED, 1);
                        }
                        return Ok((exit, out));
                    }
                    Outcome::Fail(msg) => return Err(msg),
                    Outcome::Retry { why, after_ms } => {
                        round_hint = after_ms;
                        self.note_failure(i, Instant::now(), why, after_ms);
                        last_err = self.states[i].last_err.clone();
                        if multi {
                            self.obs.count(names::NET_FAILOVERS, 1);
                            eprintln!(
                                "; request: endpoint `{}` failed ({last_err}); failing over",
                                ep.display()
                            );
                        }
                    }
                }
            }
            if last_err.is_empty() {
                last_err =
                    "every endpoint is cooling down behind an open circuit breaker".to_string();
            }
            if attempt == max_attempts {
                break;
            }
            // Server hint when present (single-endpoint semantics; a
            // fleet holds hints per endpoint instead), else exponential
            // backoff; deterministic jitter either way, clipped to
            // whatever deadline remains.
            let mut delay = if multi { None } else { round_hint }
                .unwrap_or(base << (attempt - 1))
                .saturating_add(jitter_ms(self.arg, attempt, base));
            if let Some(r) = remaining {
                delay = delay.min(r);
            }
            if multi {
                eprintln!(
                    "; request: round {attempt}/{max_attempts} failed across {} endpoints ({last_err}); retrying in {delay}ms",
                    self.states.len()
                );
            } else {
                eprintln!(
                    "; request: attempt {attempt}/{max_attempts} failed ({last_err}); retrying in {delay}ms"
                );
            }
            std::thread::sleep(Duration::from_millis(delay));
        }
        if multi {
            let mut msg = format!("all endpoints down after {max_attempts} rounds:");
            for st in &self.states {
                msg.push_str(&format!("\n  {}: {}", st.endpoint.display(), st.last_err));
            }
            Err(msg)
        } else if max_attempts == 1 {
            Err(last_err)
        } else {
            Err(format!(
                "request failed after {max_attempts} attempts: {last_err}"
            ))
        }
    }
}

/// `impactc request <endpoints> <files.c...>` — the fleet-aware resilient
/// client: sends the files to a running daemon and prints the pipeline
/// report. The first positional is a comma-separated endpoint list (Unix
/// socket paths and/or `host:port` TCP endpoints); with more than one
/// endpoint the client fails over in listed order, holds a per-endpoint
/// circuit breaker, and reports a terminal "all endpoints down" summary
/// naming each endpoint's last error. A cached response appends a
/// `; cache: hit` marker line. With `--ping`, runs the daemon's health
/// self-checks instead (no files, single endpoint only) and exits 0 only
/// when the daemon reports healthy. With `--stats`/`--stats-prom`/
/// `--stats-json` (also no files, single endpoint), fetches the daemon's
/// live registry snapshot — counters, latency histograms, queue and
/// table occupancy — rendered daemon-side as a table, Prometheus text
/// exposition, or schema-versioned JSON; the table additionally appends
/// the client's own per-endpoint circuit-breaker states.
///
/// Retryable failures (connect errors, truncated/torn responses, `busy`,
/// presumed-transient worker panics) are retried up to `--retries` times
/// with exponential backoff and deterministic jitter, honoring the
/// server's `retry-after-ms` hint per endpoint; `--deadline-ms` bounds
/// the whole exchange, shrinking the per-attempt socket timeouts as it
/// runs down. Retry/failover notices go to stderr so stdout stays
/// byte-identical to a fault-free run.
///
/// # Errors
///
/// Returns a terminal failure immediately, or the last retryable failure
/// once the rounds (or the deadline) are exhausted.
#[cfg(unix)]
pub fn run_request(opts: &Options) -> Result<(i32, String), String> {
    // Client flags (--deadline-ms, endpoint shapes) validate through the
    // same call as the daemon's, so a bad value fails before any I/O.
    opts.service_config()?;
    let Some((endpoint_arg, files)) = opts.positional.split_first() else {
        return Err(format!(
            "request needs a socket path and at least one .c file\n{}",
            usage()
        ));
    };
    let stats_format = if opts.stats {
        Some(StatsFormat::Table)
    } else if opts.stats_prom {
        Some(StatsFormat::Prom)
    } else if opts.stats_json {
        Some(StatsFormat::Json)
    } else {
        None
    };
    if opts.ping || stats_format.is_some() {
        if !files.is_empty() {
            return Err(format!(
                "request {} takes only the socket path (got {} extra args)\n{}",
                if opts.ping { "--ping" } else { "--stats" },
                files.len(),
                usage()
            ));
        }
    } else if files.is_empty() {
        return Err(format!(
            "request needs at least one .c file after the socket path\n{}",
            usage()
        ));
    }
    let endpoints = crate::transport::parse_endpoints(endpoint_arg)?;
    let mut sources = Vec::with_capacity(files.len());
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read `{f}`: {e}"))?;
        sources.push(Source::new(f.clone(), text));
    }

    let obs = telemetry::handle_for(opts);
    let mut fleet = Fleet::new(endpoints, endpoint_arg, opts, &obs, true);
    let salt = invocation_salt();
    let wire = if opts.ping {
        WirePayload::Ping {
            trace: salt ^ TRACE_SALT,
        }
    } else if let Some(format) = stats_format {
        WirePayload::Stats(format)
    } else {
        WirePayload::Compile {
            sources: &sources,
            id: request_id(&sources, salt),
            trace: request_id(&sources, salt ^ TRACE_SALT),
        }
    };
    let mut result = fleet.exchange(&wire);
    if matches!(wire, WirePayload::Stats(StatsFormat::Table)) {
        // The daemon cannot see the client's breakers; the table is the
        // one place both sides of the wire are reported together.
        if let Ok((_, out)) = &mut result {
            let now = std::time::Instant::now();
            for st in &fleet.states {
                out.push_str(&format!(
                    "; breaker {}: {}\n",
                    st.endpoint.display(),
                    st.breaker.state_name(now)
                ));
            }
        }
    }
    telemetry::write_artifacts(opts, &obs, None)?;
    result
}

/// `impactc batch --remote <endpoints>` — ships each file unit of the
/// batch to the daemon fleet instead of compiling locally, sharing one
/// [`Fleet`] (so breaker state carries from unit to unit) and printing a
/// deterministic per-unit report plus a summary line. The daemons own the
/// pool and the cache, so the local supervision knobs (`--jobs`,
/// `--cache-dir`, `--journal`, `--report-dir`, `--fault*`) are rejected;
/// retried units are idempotent on the daemon side, so a campaign's
/// stdout is byte-identical whether or not faults forced retries.
///
/// Exit contract matches local batch: 0 all ok, 10 partial, 11 all
/// failed.
///
/// # Errors
///
/// Returns a usage-style message for a malformed invocation; per-unit
/// failures are folded into the summary and the exit code instead.
#[cfg(unix)]
pub fn run_batch_remote(opts: &Options) -> Result<(i32, String), String> {
    use crate::supervise::{EXIT_ALL_FAILED, EXIT_ALL_OK, EXIT_PARTIAL};

    let endpoint_arg = opts
        .remote
        .clone()
        .expect("run_batch_remote requires --remote");
    opts.service_config()?;
    if opts.jobs.is_some() || opts.cache_dir.is_some() || opts.cache_budget_bytes.is_some() {
        return Err(
            "--jobs/--cache-dir/--cache-budget-bytes configure the local pool and cache; \
             with --remote the daemons own both"
                .to_string(),
        );
    }
    if opts.journal.is_some() || opts.resume {
        return Err(
            "--journal/--resume supervise local units; a --remote campaign's durability \
             lives in the daemons' caches"
                .to_string(),
        );
    }
    if opts.report_dir.is_some() || !opts.faults.is_empty() || opts.fault_unit.is_some() {
        return Err(
            "--report-dir/--fault/--fault-unit apply to locally supervised units, not --remote \
             (arm faults on the daemon invocation instead)"
                .to_string(),
        );
    }
    let units = crate::supervise::enumerate_file_units(opts)?;
    if units.is_empty() {
        return Err(format!(
            "batch --remote needs at least one unit (a .c file or a directory of them)\n{}",
            usage()
        ));
    }
    let endpoints = crate::transport::parse_endpoints(&endpoint_arg)?;

    let obs = telemetry::handle_for(opts);
    // One fleet for the whole campaign — and no cache-hit markers, so
    // stdout is byte-identical whether the fleet's caches were warm.
    let mut fleet = Fleet::new(endpoints, &endpoint_arg, opts, &obs, false);
    let salt = invocation_salt();
    let mut out = String::new();
    let (mut ok, mut failed) = (0usize, 0usize);
    for (i, path) in units.iter().enumerate() {
        let resolved = match std::fs::read_to_string(path) {
            Ok(text) => {
                let sources = vec![Source::new(path.clone(), text)];
                // Mix the unit index into the salt so two listings of the
                // same file stay distinct logical requests.
                let unit_salt = salt ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                fleet.exchange(&WirePayload::Compile {
                    sources: &sources,
                    id: request_id(&sources, unit_salt),
                    trace: request_id(&sources, unit_salt ^ TRACE_SALT),
                })
            }
            Err(e) => Err(format!("cannot read `{path}`: {e}")),
        };
        match resolved {
            Ok((exit, payload)) => {
                ok += 1;
                out.push_str(&format!("; unit {path}: exit {exit}\n"));
                out.push_str(&payload);
            }
            Err(msg) => {
                failed += 1;
                out.push_str(&format!("; unit {path}: failed: {msg}\n"));
            }
        }
    }
    out.push_str(&format!(
        "; batch --remote: {} units, {ok} ok, {failed} failed\n",
        units.len()
    ));
    telemetry::write_artifacts(opts, &obs, None)?;
    let code = if failed == 0 {
        EXIT_ALL_OK
    } else if ok == 0 {
        EXIT_ALL_FAILED
    } else {
        EXIT_PARTIAL
    };
    Ok((code, out))
}

/// Request is Unix-only, like serve.
#[cfg(not(unix))]
pub fn run_request(_opts: &Options) -> Result<(i32, String), String> {
    Err("request requires a Unix platform (Unix sockets)".to_string())
}

/// Remote batch is Unix-only, like serve.
#[cfg(not(unix))]
pub fn run_batch_remote(_opts: &Options) -> Result<(i32, String), String> {
    Err("batch --remote requires a Unix platform".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let sources = vec![
            Source::new("a.c", "int main() { return 0; }\n"),
            Source::new("dir/b.c", "int helper() { return 1; }\n"),
        ];
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &sources,
            0xdead_beef_0042_1234,
            0x0123_4567_89ab_cdef,
        )
        .unwrap();
        let req = read_request(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(
            req,
            Request::Compile {
                sources,
                id: 0xdead_beef_0042_1234,
                trace: 0x0123_4567_89ab_cdef
            }
        );
    }

    #[test]
    fn ping_round_trips_through_the_wire_format() {
        let mut wire = Vec::new();
        write_ping(&mut wire, 0xfeed_f00d).unwrap();
        let req = read_request(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(req, Request::Ping { trace: 0xfeed_f00d });
    }

    #[test]
    fn stats_round_trips_through_the_wire_format() {
        for format in [StatsFormat::Table, StatsFormat::Prom, StatsFormat::Json] {
            let mut wire = Vec::new();
            write_stats(&mut wire, format).unwrap();
            let req = read_request(&mut std::io::Cursor::new(wire)).unwrap();
            assert_eq!(req, Request::Stats { format });
        }
        let err = read_request(&mut std::io::Cursor::new(
            b"impact-serve v4 stats yaml\n".to_vec(),
        ))
        .unwrap_err();
        assert!(err.contains("unknown stats format"), "{err}");
    }

    #[test]
    fn response_round_trips_including_cached_and_retry_after() {
        for resp in [
            Response::ok(0, true, "; report\n".to_string()),
            Response::ok(3, false, String::new()),
            Response::error("compile failed: x.c:1:1".to_string()),
            Response::busy(200),
            Response::busy(0),
        ] {
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).unwrap();
            let back = read_response(&mut std::io::Cursor::new(wire)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn response_summary_round_trips_spans_and_counters() {
        // Names with spaces and newlines must survive: summary record
        // names are length-prefixed, not line-delimited.
        let resp = Response::ok(0, false, "; report\n".to_string()).with_summary((
            vec![
                impact_obs::SpanEvent {
                    name: "serve:queue-wait".to_string(),
                    start_us: 0,
                    dur_us: 42,
                    trace: 0xabc,
                },
                impact_obs::SpanEvent {
                    name: "odd name\nwith newline".to_string(),
                    start_us: 42,
                    dur_us: 7,
                    trace: 0,
                },
            ],
            vec![("cache:misses".to_string(), 1), ("c x".to_string(), 9)],
        ));
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let back = read_response(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn torn_summary_reads_as_truncated_and_is_retryable() {
        let resp = Response::ok(0, false, "r".to_string()).with_summary((
            vec![impact_obs::SpanEvent {
                name: "inline:plan".to_string(),
                start_us: 1,
                dur_us: 2,
                trace: 3,
            }],
            Vec::new(),
        ));
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        // Cut the frame mid-summary: the client must classify this as a
        // truncation (retryable), never hang or trust a partial record.
        wire.truncate(wire.len() - 4);
        let err = read_response(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(wire_error_is_retryable(&err));
    }

    #[test]
    fn malformed_requests_are_rejected_not_trusted() {
        let id = "0000000000000001";
        let tr = "0000000000000002";
        for (wire, needle) in [
            (
                format!("impact-serve v9 compile 1 {id} {tr}\n").into_bytes(),
                "bad protocol",
            ),
            (
                format!("impact-serve v4 decompile 1 {id} {tr}\n").into_bytes(),
                "unknown request verb",
            ),
            (
                format!("impact-serve v4 compile 0 {id} {tr}\n").into_bytes(),
                "source count",
            ),
            (
                format!("impact-serve v4 compile 999 {id} {tr}\n").into_bytes(),
                "source count",
            ),
            (
                // A compile header without the idempotency id is a
                // protocol violation, not a silent default.
                b"impact-serve v4 compile 1\n".to_vec(),
                "missing request id",
            ),
            (
                // Likewise a v4 header without the trace id.
                format!("impact-serve v4 compile 1 {id}\n").into_bytes(),
                "missing trace id",
            ),
            (
                format!("impact-serve v4 compile 1 zz {tr}\n").into_bytes(),
                "bad request id",
            ),
            (
                format!("impact-serve v4 compile 1 {id} zz\n").into_bytes(),
                "bad trace id",
            ),
            (
                format!("impact-serve v4 compile 1 {id} {tr} extra\n").into_bytes(),
                "trailing fields",
            ),
            (
                format!("impact-serve v4 compile 1 {id} {tr}\n5 99999999\n").into_bytes(),
                "field cap",
            ),
            (
                format!("impact-serve v4 compile 1 {id} {tr}\n3 4\na.cint").into_bytes(),
                "truncated",
            ),
            (b"impact-serve v4 compile 1".to_vec(), "truncated line"),
            // v1/v2/v3 clients are rejected at the header, not
            // half-parsed: a v3 frame against a v4 daemon is a clean
            // protocol-version error.
            (b"impact-serve v1 compile 1\n".to_vec(), "bad protocol"),
            (
                format!("impact-serve v2 compile 1 {id}\n").into_bytes(),
                "bad protocol",
            ),
            (
                format!("impact-serve v3 compile 1 {id}\n").into_bytes(),
                "bad protocol",
            ),
            (b"impact-serve v3 ping\n".to_vec(), "bad protocol"),
        ] {
            let err = read_request(&mut std::io::Cursor::new(wire)).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn malformed_responses_name_the_missing_field() {
        for (wire, needle) in [
            (&b"impact-serve v4 ok 0\n"[..], "cached flag"),
            (&b"impact-serve v4 ok 0 1\n"[..], "retry-after"),
            (&b"impact-serve v4 ok 0 1 5\n"[..], "payload length"),
            (&b"impact-serve v4 ok 0 1 5 0\n"[..], "summary length"),
            (
                &b"impact-serve v4 maybe 0 1 0 0 0\n"[..],
                "unknown response",
            ),
            (&b"impact-serve v3 ok 0 1 0 5\n"[..], "bad protocol"),
            (&b"impact-serve v2 ok 0 1 0\n"[..], "bad protocol"),
        ] {
            let err = read_response(&mut std::io::Cursor::new(wire.to_vec())).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[cfg(unix)]
    #[test]
    fn request_ids_are_stable_per_invocation_and_distinct_across_salts() {
        let sources = vec![Source::new("a.c", "int main() { return 0; }\n")];
        let again = vec![Source::new("a.c", "int main() { return 0; }\n")];
        assert_eq!(request_id(&sources, 7), request_id(&again, 7));
        assert_ne!(request_id(&sources, 7), request_id(&sources, 8));
        let other = vec![Source::new("a.c", "int main() { return 1; }\n")];
        assert_ne!(request_id(&sources, 7), request_id(&other, 7));
    }

    #[cfg(unix)]
    #[test]
    fn idempotency_table_replays_and_evicts_fifo() {
        let idem = super::daemon::Idempotency::default();
        assert!(idem.lookup(1).is_none());
        idem.insert(1, Response::ok(0, false, "one\n".to_string()));
        // Re-inserting under the same id keeps the first answer.
        idem.insert(1, Response::ok(0, false, "other\n".to_string()));
        assert_eq!(idem.lookup(1).unwrap().payload, "one\n");
        for id in 2..=(IDEMPOTENCY_CAPACITY as u64 + 1) {
            idem.insert(id, Response::ok(0, false, format!("{id}\n")));
        }
        // Capacity inserts later evicted the oldest entry, and only it.
        assert!(idem.lookup(1).is_none());
        assert_eq!(idem.lookup(2).unwrap().payload, "2\n");
        assert_eq!(
            idem.lookup(IDEMPOTENCY_CAPACITY as u64 + 1)
                .unwrap()
                .payload,
            format!("{}\n", IDEMPOTENCY_CAPACITY as u64 + 1)
        );
    }

    #[test]
    fn wire_retryability_separates_truncation_from_protocol_violations() {
        assert!(wire_error_is_retryable(
            "truncated line (peer closed or timed out)"
        ));
        assert!(wire_error_is_retryable("truncated response payload: eof"));
        assert!(wire_error_is_retryable("read failed: timed out"));
        assert!(!wire_error_is_retryable("bad protocol header `x`"));
        assert!(!wire_error_is_retryable("unknown response status `maybe`"));
    }

    #[test]
    fn service_faults_are_stripped_from_request_options() {
        let o = Options::parse(&strs(&[
            "serve",
            "s.sock",
            "--fault",
            "serve:panic=1",
            "--fault",
            "net:torn-write",
            "--fault",
            "cache:bitflip=2",
            "--fault",
            "inline:verify",
        ]))
        .unwrap();
        let r = request_options(&o);
        assert_eq!(r.faults, strs(&["inline:verify"]));
        assert!(r.quiet);
        assert!(r.positional.is_empty());
        for spec in ["serve:stall", "net:drop", "cache:evict-read-race"] {
            assert!(is_service_fault(spec), "{spec}");
        }
        assert!(!is_service_fault("inline:verify"));
        assert!(!is_service_fault("journal:torn-write"));
    }

    #[test]
    fn service_fault_plan_arms_only_service_specs() {
        let o = Options::parse(&strs(&[
            "serve",
            "s.sock",
            "--fault",
            "serve:stall=1",
            "--fault",
            "inline:verify",
        ]))
        .unwrap();
        let plan = service_fault_plan(&o).unwrap();
        assert!(plan.should_fail("serve:stall"));
        assert!(!plan.should_fail("inline:verify"));
        let bad = Options::parse(&strs(&["serve", "s.sock", "--fault", "serve:stall=x"])).unwrap();
        assert!(service_fault_plan(&bad).is_err());
    }

    fn sample_snapshot() -> StatsSnapshot {
        let mut h = impact_obs::Histogram::default();
        h.record(100);
        h.record(3000);
        h.record(3000);
        StatsSnapshot {
            uptime_us: 123_456,
            workers: 4,
            queue_depth: 8,
            queued: 2,
            open: 3,
            max_conns: Some(16),
            idem_len: 5,
            idem_capacity: IDEMPOTENCY_CAPACITY,
            flight_len: 7,
            flight_capacity: 256,
            flight_dropped: 1,
            cache: Some((10, 1, 4096)),
            counters: vec![
                ("serve:ok".to_string(), 9),
                ("serve:requests".to_string(), 12),
            ],
            hists: vec![("hist:queue-wait-us".to_string(), h)],
        }
    }

    #[test]
    fn stats_table_reports_every_registry_section() {
        let out = render_stats_table(&sample_snapshot());
        assert!(out.contains("; serve stats\n"));
        assert!(out.contains("; workers: 4\n"));
        assert!(out.contains("; queue: 2/8 used, 6 headroom, 3 open, 16 conn cap\n"));
        assert!(out.contains(&format!(
            "; idempotency: 5/{IDEMPOTENCY_CAPACITY} entries\n"
        )));
        assert!(out.contains("; flight: 7/256 buffered, 1 dropped\n"));
        assert!(out.contains("; cache: 10 live, 1 quarantined, 4096 bytes\n"));
        assert!(out.contains(";   serve:ok 9\n"));
        assert!(out.contains(";   hist:queue-wait-us count=3"));
        // Every line is a `; ` comment so the table can never be
        // mistaken for a pipeline report.
        assert!(out.lines().all(|l| l.starts_with(';')));
    }

    #[test]
    fn stats_prom_is_valid_text_exposition_with_cumulative_buckets() {
        let out = render_stats_prom(&sample_snapshot());
        assert!(out.contains("# TYPE impact_serve_queued gauge\nimpact_serve_queued 2\n"));
        assert!(out.contains("# TYPE impact_serve_ok counter\nimpact_serve_ok 9\n"));
        assert!(out.contains("# TYPE impact_hist_queue_wait_us histogram\n"));
        assert!(out.contains("impact_hist_queue_wait_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("impact_hist_queue_wait_us_sum 6100\n"));
        assert!(out.contains("impact_hist_queue_wait_us_count 3\n"));
        // Strict shape: every line is `# TYPE name kind` or `name[{le}] value`,
        // names start with impact_ and contain no unmangled separators.
        let mut cum_prev = 0u64;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut f = rest.split(' ');
                let name = f.next().unwrap();
                assert!(name.starts_with("impact_"), "{line}");
                assert!(matches!(f.next(), Some("gauge" | "counter" | "histogram")));
                assert_eq!(f.next(), None);
                cum_prev = 0;
            } else {
                let (name, value) = line.rsplit_once(' ').expect(line);
                assert!(name.starts_with("impact_"), "{line}");
                assert!(!name.contains(':') && !name.contains('-'), "{line}");
                let v: u64 = value.parse().expect(line);
                // Histogram buckets are cumulative, so monotone.
                if name.contains("_bucket{") {
                    assert!(v >= cum_prev, "non-monotone bucket in {line}");
                    cum_prev = v;
                }
            }
        }
    }

    #[test]
    fn stats_json_schema_includes_occupancy_and_buckets() {
        let out = render_stats_json(&sample_snapshot());
        assert!(out.contains("\"version\": 1"));
        assert!(out.contains("\"kind\": \"impact-serve-stats\""));
        assert!(out.contains(
            "\"queue\": {\"depth\": 8, \"queued\": 2, \"headroom\": 6, \"open\": 3, \"max_conns\": 16}"
        ));
        assert!(out.contains("\"flight\": {\"buffered\": 7, \"capacity\": 256, \"dropped\": 1}"));
        assert!(out.contains("\"cache\": {\"live\": 10, \"quarantined\": 1, \"bytes\": 4096}"));
        assert!(out.contains("\"name\": \"hist:queue-wait-us\""));
        assert!(out.contains("\"buckets_us\": ["));
        // No cache / no cap render as null, not as absent keys.
        let mut bare = sample_snapshot();
        bare.cache = None;
        bare.max_conns = None;
        let out = render_stats_json(&bare);
        assert!(out.contains("\"cache\": null"));
        assert!(out.contains("\"max_conns\": null"));
    }

    #[test]
    fn flight_json_escapes_details_and_names_the_trace() {
        let events = vec![impact_obs::FlightEvent {
            seq: 41,
            at_us: 99,
            kind: "panic".to_string(),
            detail: "worker said \"boom\"\nand died".to_string(),
            trace: 0xabc,
        }];
        let out = flight_json("serve-incident", "worker-panic", 0xabc, &events, 2);
        assert!(out.contains("\"kind\": \"serve-incident\""));
        assert!(out.contains("\"reason\": \"worker-panic\""));
        assert!(out.contains("\"trace\": \"0000000000000abc\""));
        assert!(out.contains("\"dropped\": 2"));
        assert!(out.contains("\\\"boom\\\"\\nand died"));
        assert!(!out.contains("\"boom\"\nand"), "raw quote/newline leaked");
        assert!(out.contains("\"seq\": 41"));
    }

    #[test]
    fn summary_rejects_unknown_record_tags() {
        let err = parse_summary("x 1 2\nab").unwrap_err();
        assert!(err.contains("unknown summary record"), "{err}");
    }
}
