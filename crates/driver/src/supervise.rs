//! Supervised batch compilation: resource governance, retry/quarantine,
//! and minimized crash reports.
//!
//! `impactc batch` runs a set of translation units (loose `.c` files,
//! directories of them, and bundled `bench:<name>` workloads) through the
//! full inline-expansion pipeline — serially by default, or concurrently
//! on the [`crate::pool`] work-stealing pool with `--jobs N`. Each
//! attempt is isolated on a worker thread under the resource governor:
//!
//! - **wall clock** — `--time-limit-ms` bounds every attempt; a worker
//!   that misses the deadline is abandoned (it keeps running detached but
//!   stays bounded by the VM's instruction fuel and the optimizer's
//!   fixpoint cap, so it cannot run forever) and the attempt is recorded
//!   as `governor:deadline-exceeded`;
//! - **instruction fuel** — `--fuel` caps VM steps per program run;
//! - **heap quota** — `--mem-limit` caps `__malloc`'d bytes;
//! - **panic isolation** — a panicking pipeline is caught with
//!   `catch_unwind` and classified as `panic:pipeline-panicked`.
//!
//! Failures are triaged by the taxonomy in [`is_persistent`]: persistent
//! classes quarantine immediately; presumed-transient classes are retried
//! with exponential backoff plus deterministic jitter before quarantine.
//! A quarantined unit never stops the batch — the remaining units still
//! compile and the process exits with the partial-success contract
//! ([`EXIT_ALL_OK`] / [`EXIT_PARTIAL`] / [`EXIT_ALL_FAILED`]).
//!
//! With `--report-dir`, every quarantined unit is persisted as a
//! structured JSON crash report (see [`crate::report`]) carrying a
//! delta-debugged reproducer (see [`crate::minimize`]) that replays the
//! same failure signature under `impactc inline`.
//!
//! **Parallel determinism.** Under `--jobs N` units complete in an
//! arbitrary order, but the summary renders in canonical unit order from
//! an index-addressed record table, and the journal stays a
//! single-writer structure: workers return results over the pool's event
//! channel and only the supervising thread appends. A parallel campaign
//! therefore produces the same stdout and journal-replayable record set
//! as a serial one, and crash→`--resume` keeps its byte-identical
//! contract regardless of worker count.
//!
//! With `--cache-dir`, each unit is probed against the content-addressed
//! artifact cache ([`crate::cache`]) before compiling, and successful
//! compilations are stored back through the atomic publish path.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Once;
use std::time::{Duration, Instant};

use impact_cfront::Source;
use impact_obs::names;

use crate::journal::{
    campaign_fingerprint, is_journal_fault, open_for, prepare_report_dir, Event, UnitRecord,
};
use crate::minimize::{shrink, ShrinkResult};
use crate::pool::{self, PoolEvent};
use crate::report::{write_crash_report, AttemptRecord, CrashReport, PipelineFailure};
use crate::{cache, inline_pipeline_observed, load_inputs, telemetry, usage, Options, RunSpec};

/// Exit code when every unit compiled.
pub const EXIT_ALL_OK: i32 = 0;
/// Exit code when some units were quarantined but at least one succeeded.
pub const EXIT_PARTIAL: i32 = 10;
/// Exit code when no unit succeeded.
pub const EXIT_ALL_FAILED: i32 = 11;

/// Default per-attempt wall-clock deadline (`--time-limit-ms`).
pub const DEFAULT_TIME_LIMIT_MS: u64 = 10_000;
/// Default retry count for presumed-transient failures (`--retries`).
pub const DEFAULT_RETRIES: u32 = 2;
/// Default backoff base delay (`--retry-base-ms`).
pub const DEFAULT_RETRY_BASE_MS: u64 = 25;

/// Cap on minimization candidate evaluations per quarantined unit.
const SHRINK_EVAL_BUDGET: usize = 96;

/// Name (prefix) given to pipeline worker threads, used by the
/// process-wide panic hook to keep expected worker panics off stderr.
/// Pool workers (`supervise-worker-pool<i>`) and serve workers
/// (`supervise-worker-serve<i>`) extend it so the same hook covers them.
pub(crate) const WORKER_THREAD: &str = "supervise-worker";

/// Persistent failure classes are deterministic properties of the unit
/// (bad source, bad flags, missing files): retrying cannot help, so they
/// quarantine immediately. Everything else — inline verification
/// failures, panics, governor trips — is *presumed* transient and earns
/// the retry/backoff treatment before quarantine.
fn is_persistent(stage: &str) -> bool {
    matches!(stage, "io" | "config" | "compile" | "verify")
}

/// One batch unit: a loose source file or a bundled benchmark.
#[derive(Clone, Debug)]
enum UnitKind {
    File(String),
    Bench(impact_workloads::Benchmark),
}

/// A unit with its display name (the name `--fault-unit` matches).
#[derive(Clone, Debug)]
struct Unit {
    name: String,
    kind: UnitKind,
}

/// Expands the positional arguments (plus `--workloads`) into the unit
/// list: directories contribute their `*.c` files in sorted order, plain
/// paths contribute themselves, and `bench:<name>` contributes a bundled
/// benchmark.
///
/// # Errors
///
/// Returns a usage-style message for unknown benchmarks or unreadable
/// directories (a malformed *batch* is an operator error, unlike a
/// malformed *unit*, which is quarantined).
fn enumerate_units(opts: &Options) -> Result<Vec<Unit>, String> {
    let mut units = Vec::new();
    for p in &opts.positional {
        if let Some(name) = p.strip_prefix("bench:") {
            let b = impact_workloads::benchmark(name)
                .ok_or_else(|| format!("unknown benchmark `{name}` in unit `{p}`"))?;
            units.push(Unit {
                name: p.clone(),
                kind: UnitKind::Bench(b),
            });
            continue;
        }
        let path = Path::new(p);
        if path.is_dir() {
            let mut files: Vec<String> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory `{p}`: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|f| f.extension().is_some_and(|x| x == "c"))
                .filter_map(|f| f.to_str().map(str::to_string))
                .collect();
            files.sort();
            for f in files {
                units.push(Unit {
                    name: f.clone(),
                    kind: UnitKind::File(f),
                });
            }
        } else {
            units.push(Unit {
                name: p.clone(),
                kind: UnitKind::File(p.clone()),
            });
        }
    }
    if opts.workloads {
        for name in impact_workloads::benchmark_names() {
            units.push(Unit {
                name: format!("bench:{name}"),
                kind: UnitKind::Bench(
                    impact_workloads::benchmark(name).expect("bundled benchmark exists"),
                ),
            });
        }
    }
    Ok(units)
}

/// The unit list restricted to loose source files, for `batch --remote`:
/// the fleet protocol ships source text, so bundled benchmarks (which
/// carry inputs and program arguments) must run locally.
///
/// # Errors
///
/// Returns a usage-style message for a malformed batch or a bench unit.
pub(crate) fn enumerate_file_units(opts: &Options) -> Result<Vec<String>, String> {
    enumerate_units(opts)?
        .into_iter()
        .map(|u| match u.kind {
            UnitKind::File(path) => Ok(path),
            UnitKind::Bench(_) => Err(format!(
                "remote batch ships source files to the daemons; `{}` is a bundled \
                 benchmark — run bench units locally",
                u.name
            )),
        })
        .collect()
}

/// The per-unit options: IL dumps off, per-unit profile I/O off (units
/// would clobber each other's files), telemetry output flags off (the
/// campaign aggregates unit telemetry into one collector and writes the
/// artifacts once, at the end), `journal:*` and service-layer
/// (`serve:*`/`net:*`/`cache:*`) fault specs stripped (they belong to
/// the campaign journal and the service machinery, not the pipeline),
/// and the remaining `--fault` specs cleared unless `--fault-unit`
/// matches this unit (or no target was named, in which case faults arm
/// everywhere, matching single-unit semantics).
fn unit_options(opts: &Options, unit_name: &str) -> Options {
    let mut o = opts.clone();
    o.quiet = true;
    o.profile_out = None;
    o.profile_in = None;
    o.explain = false;
    o.decisions_out = None;
    o.trace_out = None;
    o.metrics_out = None;
    o.faults
        .retain(|f| !is_journal_fault(f) && !crate::serve::is_service_fault(f));
    if let Some(target) = &opts.fault_unit {
        if target != unit_name {
            o.faults.clear();
        }
    }
    o
}

/// Loads a unit's sources and run set, classifying read failures as
/// persistent `io` errors (which quarantine the unit without retries).
fn materialize(
    unit: &Unit,
    opts: &Options,
) -> Result<(Vec<Source>, Vec<RunSpec>), PipelineFailure> {
    match &unit.kind {
        UnitKind::File(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                PipelineFailure::new(
                    "io",
                    "source-read-failed",
                    format!("cannot read `{path}`: {e}"),
                )
            })?;
            let inputs = load_inputs(&opts.inputs)
                .map_err(|e| PipelineFailure::new("io", "input-read-failed", e))?;
            Ok((
                vec![Source::new(path.clone(), text)],
                vec![(inputs, opts.args.clone())],
            ))
        }
        UnitKind::Bench(b) => Ok((b.sources(), b.profile_run_set(2))),
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// backtrace spew for supervised worker threads — their panics are
/// *expected*, caught, and classified — while delegating every other
/// thread's panics to the previously installed hook.
pub(crate) fn silence_worker_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Prefix match: pool and serve workers extend the base name.
            let supervised = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD));
            if !supervised {
                prev(info);
            }
        }));
    });
}

/// Runs one pipeline attempt on a worker thread under the wall-clock
/// deadline, recording into `obs` (the campaign's shared collector).
/// Returns the classified result and the attempt's wall time.
pub(crate) fn run_attempt(
    sources: Vec<Source>,
    runs: Vec<RunSpec>,
    opts: Options,
    deadline_ms: u64,
    obs: impact_obs::Telemetry,
) -> (Result<(i32, String), PipelineFailure>, u64) {
    silence_worker_panics();
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(WORKER_THREAD.to_string())
        .spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(|| {
                inline_pipeline_observed(&sources, &runs, &opts, &obs)
                    .map(|(code, out, _)| (code, out))
            }))
            .unwrap_or_else(|payload| {
                Err(PipelineFailure::new(
                    "panic",
                    "pipeline-panicked",
                    format!("pipeline panicked: {}", panic_message(payload)),
                ))
            });
            let _ = tx.send(r);
        });
    let result = match spawned {
        Err(e) => Err(PipelineFailure::new(
            "panic",
            "spawn-failed",
            format!("cannot spawn worker thread: {e}"),
        )),
        // The JoinHandle is deliberately dropped: on deadline the worker
        // is abandoned, not joined (threads cannot be killed), and the
        // channel send to the disconnected receiver is simply discarded.
        Ok(_handle) => match rx.recv_timeout(Duration::from_millis(deadline_ms)) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(PipelineFailure::new(
                "governor",
                "deadline-exceeded",
                format!("attempt exceeded the {deadline_ms} ms wall-clock deadline"),
            )),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(PipelineFailure::new(
                "panic",
                "worker-died",
                "worker thread exited without reporting a result".to_string(),
            )),
        },
    };
    (result, start.elapsed().as_millis() as u64)
}

/// Deterministic backoff jitter in `[0, base)`, derived from the unit
/// name and attempt number so reruns of the same batch sleep identically.
/// Shared with the serve client, which jitters on the socket path.
pub(crate) fn jitter_ms(unit: &str, attempt: u32, base: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let mut h = DefaultHasher::new();
    unit.hash(&mut h);
    attempt.hash(&mut h);
    h.finish() % base
}

/// The outcome of one supervised unit.
struct UnitOutcome {
    attempts: Vec<AttemptRecord>,
    /// Total wall time across every attempt, including the successful
    /// one (backoff sleeps excluded).
    elapsed_ms: u64,
    /// `Ok((exit code, pipeline report))` or
    /// `Err((taxonomy, final failure))`.
    result: Result<(i32, String), (String, PipelineFailure)>,
}

/// Runs one unit to completion: attempt, triage, back off, retry,
/// quarantine. Telemetry records into `obs`, the campaign's shared
/// collector.
fn run_unit(unit: &Unit, opts: &Options, obs: &impact_obs::Telemetry) -> UnitOutcome {
    let unit_opts = unit_options(opts, &unit.name);
    let retries = opts.retries.unwrap_or(DEFAULT_RETRIES);
    let base = opts.retry_base_ms.unwrap_or(DEFAULT_RETRY_BASE_MS);
    let deadline = opts.time_limit_ms.unwrap_or(DEFAULT_TIME_LIMIT_MS);
    let max_attempts = retries.saturating_add(1);
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    let mut elapsed_ms: u64 = 0;
    for attempt in 1..=max_attempts {
        let staged = match materialize(unit, &unit_opts) {
            Ok((sources, runs)) => {
                let (r, wall) =
                    run_attempt(sources, runs, unit_opts.clone(), deadline, obs.clone());
                elapsed_ms += wall;
                r.map_err(|f| (f, wall))
            }
            // materialize() failed before an attempt could start.
            Err(f) => Err((f, 0)),
        };
        let (failure, wall_ms) = match staged {
            Ok(out) => {
                return UnitOutcome {
                    attempts,
                    elapsed_ms,
                    result: Ok(out),
                }
            }
            Err(t) => t,
        };
        let persistent = is_persistent(&failure.stage);
        let last = persistent || attempt == max_attempts;
        let backoff_ms = if last {
            0
        } else {
            (base << (attempt - 1)).saturating_add(jitter_ms(&unit.name, attempt, base))
        };
        attempts.push(AttemptRecord {
            attempt,
            wall_ms,
            signature: failure.signature(),
            detail: failure.detail.clone(),
            backoff_ms,
        });
        if last {
            let taxonomy = if persistent {
                "persistent"
            } else {
                "persistent-after-retries"
            };
            return UnitOutcome {
                attempts,
                elapsed_ms,
                result: Err((taxonomy.to_string(), failure)),
            };
        }
        std::thread::sleep(Duration::from_millis(backoff_ms));
    }
    unreachable!("the loop returns on success and on the last attempt")
}

/// Delta-debugs the unit's source down to a minimal reproducer of the
/// recorded failure signature. Multi-source units (benchmarks) are
/// flattened into one translation unit first; if the flat form does not
/// reproduce, minimization is skipped rather than shipping a reproducer
/// that fails differently. `governor` failures are never minimized: every
/// still-reproducing candidate would cost a full deadline to confirm.
fn minimize_failure(
    unit: &Unit,
    opts: &Options,
    failure: &PipelineFailure,
) -> Option<ShrinkResult> {
    if failure.stage == "governor" {
        return None;
    }
    let unit_opts = unit_options(opts, &unit.name);
    let (sources, runs) = materialize(unit, &unit_opts).ok()?;
    let flat = sources
        .iter()
        .map(|s| s.text.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let deadline = opts.time_limit_ms.unwrap_or(DEFAULT_TIME_LIMIT_MS);
    let signature = failure.signature();
    let mut check = |candidate: &str| {
        let candidate_sources = vec![Source::new("repro.c".to_string(), candidate.to_string())];
        let (r, _) = run_attempt(
            candidate_sources,
            runs.clone(),
            unit_opts.clone(),
            deadline,
            impact_obs::Telemetry::disabled(),
        );
        matches!(r, Err(f) if f.signature() == signature)
    };
    if !check(&flat) {
        return None;
    }
    Some(shrink(&flat, &mut check, SHRINK_EVAL_BUDGET))
}

/// Runs one unit end to end — cache probe, supervised compile with
/// retry/quarantine, crash-report persistence, cache store — and returns
/// its completion record plus any side-channel note lines (`; warning:`,
/// `; cache:`). Everything here is safe to run concurrently for distinct
/// units: artifacts are published atomically under unit-derived names,
/// and nothing touches the journal (the supervising thread appends
/// records after this returns).
fn process_unit(
    unit: &Unit,
    opts: &Options,
    obs: &impact_obs::Telemetry,
    cache: Option<&cache::Cache>,
    report_dir: Option<&Path>,
) -> (UnitRecord, Vec<String>) {
    let mut notes: Vec<String> = Vec::new();
    let unit_opts = unit_options(opts, &unit.name);
    // Cache probe, keyed by the fully-materialized inputs. A hit records
    // zero elapsed time (deterministically — no clock was read); a
    // quarantined entry degrades to a miss and leaves an audit note.
    let mut key = None;
    if let Some(c) = cache {
        if let Ok((sources, runs)) = materialize(unit, &unit_opts) {
            let k = cache::unit_key(&sources, &runs, &unit_opts);
            match c.load(k) {
                cache::Lookup::Hit(_) => {
                    return (
                        UnitRecord {
                            unit: unit.name.clone(),
                            status: "ok".to_string(),
                            attempts: 1,
                            signature: "-".to_string(),
                            report: "-".to_string(),
                            counts: vec![0, 0],
                        },
                        notes,
                    );
                }
                cache::Lookup::Quarantined { entry, reason } => {
                    notes.push(format!(
                        "; cache: quarantined {entry} ({reason}); recompiling"
                    ));
                }
                cache::Lookup::Miss => {}
            }
            key = Some(k);
        }
    }
    let outcome = run_unit(unit, opts, obs);
    let rec = match outcome.result {
        Ok((code, report)) => {
            if let (Some(c), Some(k)) = (cache, key) {
                if let Err(e) = c.store(k, code, &report) {
                    notes.push(format!("; warning: {e}"));
                }
            }
            UnitRecord {
                unit: unit.name.clone(),
                status: "ok".to_string(),
                attempts: outcome.attempts.len() as u64 + 1,
                signature: "-".to_string(),
                report: "-".to_string(),
                counts: vec![outcome.elapsed_ms, outcome.attempts.len() as u64],
            }
        }
        Err((taxonomy, failure)) => {
            let mut report_path = "-".to_string();
            let signature = failure.signature();
            if let Some(dir) = report_dir {
                let governor = unit_opts.validate_flags().map(|f| f.vm).unwrap_or_default();
                let report = CrashReport {
                    unit: unit.name.clone(),
                    taxonomy,
                    reproducer: minimize_failure(unit, opts, &failure),
                    failure,
                    attempts: outcome.attempts.clone(),
                    time_limit_ms: opts.time_limit_ms.unwrap_or(DEFAULT_TIME_LIMIT_MS),
                    fuel: governor.max_steps,
                    mem_limit: governor.mem_limit,
                };
                match write_crash_report(dir, &report, &unit_opts) {
                    Ok(path) => report_path = path.display().to_string(),
                    Err(e) => {
                        notes.push(format!("; warning: {e}"));
                    }
                }
            }
            UnitRecord {
                unit: unit.name.clone(),
                status: "quarantined".to_string(),
                attempts: outcome.attempts.len() as u64,
                signature,
                report: report_path,
                counts: vec![
                    outcome.elapsed_ms,
                    (outcome.attempts.len() as u64).saturating_sub(1),
                ],
            }
        }
    };
    (rec, notes)
}

/// Runs the batch described by `opts`.
///
/// # Errors
///
/// Returns a usage-style message when the batch itself is malformed
/// (no units, unknown benchmark name, unreadable directory). Unit
/// failures never surface here — they quarantine and the batch goes on.
pub fn run_batch(opts: &Options) -> Result<(i32, String), String> {
    if opts.remote.is_some() {
        // `--remote` ships units to a daemon fleet; everything below
        // (pool, journal, local cache) belongs to local supervision.
        return crate::serve::run_batch_remote(opts);
    }
    let units = enumerate_units(opts)?;
    if units.is_empty() {
        return Err(format!(
            "batch needs at least one unit (a directory, .c files, bench:<name>, or --workloads)\n{}",
            usage()
        ));
    }
    let service = opts.service_config()?;
    let unit_names: Vec<String> = units.iter().map(|u| u.name.clone()).collect();
    let fingerprint = campaign_fingerprint("batch", opts, &unit_names);
    let mut out = String::new();
    let journal = open_for(opts, "batch", fingerprint, &mut out)?;
    let (mut journal, completed) = match journal {
        Some((j, c)) => (Some(j), c),
        None => (None, std::collections::HashMap::new()),
    };
    let report_dir = opts.report_dir.as_ref().map(std::path::PathBuf::from);
    if let Some(dir) = &report_dir {
        prepare_report_dir(dir, "batch", fingerprint, opts.force_resume)?;
    }
    let obs = telemetry::handle_for(opts);
    let artifact_cache = match &service.cache_dir {
        // The batch cache honors the same budget and `cache:*` chaos
        // points as the serve daemon's.
        Some(dir) => Some(cache::Cache::open_with(
            dir,
            &obs,
            service.cache_budget_bytes,
            crate::serve::service_fault_plan(opts)?,
        )?),
        None => None,
    };
    // Completion records and note lines, indexed by canonical unit
    // position. Filled from the journal (replays), the serial loop, or
    // the pool's event stream — the rendering below never depends on
    // completion order.
    let mut records: Vec<Option<UnitRecord>> = vec![None; units.len()];
    let mut notes: Vec<Vec<String>> = vec![Vec::new(); units.len()];
    let mut pending: Vec<usize> = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        match completed.get(&unit.name) {
            Some(rec) => records[i] = Some(rec.clone()),
            None => pending.push(i),
        }
    }
    let jobs = service.jobs.min(pending.len().max(1));
    if jobs <= 1 {
        for &i in &pending {
            if let Some(j) = journal.as_mut() {
                j.append(&Event::UnitStart {
                    unit: units[i].name.clone(),
                })?;
            }
            let (rec, unit_notes) = process_unit(
                &units[i],
                opts,
                &obs,
                artifact_cache.as_ref(),
                report_dir.as_deref(),
            );
            // The unit's artifacts are durable before its completion
            // record — a `unit-done` in the journal therefore implies
            // nothing of this unit needs redoing on resume.
            if let Some(j) = journal.as_mut() {
                j.append(&Event::UnitDone(rec.clone()))?;
            }
            records[i] = Some(rec);
            notes[i] = unit_notes;
        }
    } else {
        obs.count(names::POOL_WORKERS, jobs as u64);
        // The pool delivers events on this thread, so the journal keeps
        // exactly one writer: `unit-start` on claim, `unit-done` only
        // after `process_unit` made the unit's artifacts durable.
        // Appends for different units may interleave, which replay
        // handles (`unit-start` is an in-flight marker, not a bracket).
        let steals = pool::run(
            &pending,
            jobs,
            |i| {
                process_unit(
                    &units[i],
                    opts,
                    &obs,
                    artifact_cache.as_ref(),
                    report_dir.as_deref(),
                )
            },
            |ev| {
                match ev {
                    PoolEvent::Started(i) => {
                        if let Some(j) = journal.as_mut() {
                            j.append(&Event::UnitStart {
                                unit: units[i].name.clone(),
                            })?;
                        }
                    }
                    PoolEvent::Done(i, r) => {
                        let (rec, unit_notes) = match r {
                            Ok(t) => t,
                            // The compile itself is already panic-isolated
                            // inside run_attempt; this catches a panic in
                            // the supervision scaffolding and degrades it
                            // to a quarantined unit.
                            Err(msg) => (
                                UnitRecord {
                                    unit: units[i].name.clone(),
                                    status: "quarantined".to_string(),
                                    attempts: 0,
                                    signature: "panic:pool-worker".to_string(),
                                    report: "-".to_string(),
                                    counts: vec![0, 0],
                                },
                                vec![format!("; warning: {msg}")],
                            ),
                        };
                        if let Some(j) = journal.as_mut() {
                            j.append(&Event::UnitDone(rec.clone()))?;
                        }
                        records[i] = Some(rec);
                        notes[i] = unit_notes;
                    }
                }
                Ok(())
            },
        )?;
        obs.count(names::POOL_STEALS, steals);
    }
    // Render in canonical unit order — the one code path shared by
    // freshly-run units and units replayed from the journal, so parallel,
    // serial, and resumed campaigns all produce identical output.
    // Elapsed time and retry counts come from the completion record,
    // never a fresh clock, so replayed units keep their recorded timings.
    let mut rows: Vec<(String, String, u64, u64, u64, String)> = Vec::new();
    let mut ok = 0usize;
    let mut quarantined = 0usize;
    for (i, rec) in records.iter().enumerate() {
        let rec = rec
            .as_ref()
            .expect("every unit has a record once the pool drains");
        for line in &notes[i] {
            let _ = writeln!(out, "{line}");
        }
        if rec.status == "ok" {
            ok += 1;
        } else {
            quarantined += 1;
        }
        let elapsed_ms = rec.counts.first().copied().unwrap_or(0);
        let retries = rec.counts.get(1).copied().unwrap_or(0);
        rows.push((
            rec.unit.clone(),
            rec.status.clone(),
            rec.attempts,
            retries,
            elapsed_ms,
            rec.signature.clone(),
        ));
        if rec.report != "-" {
            let _ = writeln!(out, "; crash report: {}", rec.report);
        }
    }
    // Summary table.
    let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4).max(4);
    let time_w = rows
        .iter()
        .map(|r| format!("{}ms", r.4).len())
        .max()
        .unwrap_or(4)
        .max(4);
    out.push_str(&format!(
        "{:name_w$}  {:11}  {:8}  {:7}  {:>time_w$}  {}\n",
        "unit", "status", "attempts", "retries", "time", "signature"
    ));
    for (name, status, attempts, retries, elapsed_ms, signature) in &rows {
        let time = format!("{elapsed_ms}ms");
        out.push_str(&format!(
            "{name:name_w$}  {status:11}  {attempts:<8}  {retries:<7}  {time:>time_w$}  {signature}\n"
        ));
    }
    // Total elapsed is the sum of journaled per-unit timings, so a
    // resumed campaign reports the same total as an uninterrupted one.
    let total_ms: u64 = rows.iter().map(|r| r.4).sum();
    out.push_str(&format!(
        "; batch: {} units, {ok} ok, {quarantined} quarantined in {total_ms}ms\n",
        units.len()
    ));
    obs.count("batch:units", units.len() as u64);
    obs.count("batch:ok", ok as u64);
    obs.count("batch:quarantined", quarantined as u64);
    telemetry::write_artifacts(opts, &obs, None)?;
    if let Some(j) = journal.as_mut() {
        j.append(&Event::CampaignEnd {
            ok: ok as u64,
            failed: quarantined as u64,
        })?;
    }
    let code = if quarantined == 0 {
        EXIT_ALL_OK
    } else if ok == 0 {
        EXIT_ALL_FAILED
    } else {
        EXIT_PARTIAL
    };
    Ok((code, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn taxonomy_splits_deterministic_from_presumed_transient() {
        for s in ["io", "config", "compile", "verify"] {
            assert!(is_persistent(s), "{s} should be persistent");
        }
        for s in ["inline", "panic", "governor"] {
            assert!(!is_persistent(s), "{s} should be presumed transient");
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = jitter_ms("unit.c", 1, 25);
        let b = jitter_ms("unit.c", 1, 25);
        assert_eq!(a, b);
        assert!(a < 25);
        assert_eq!(jitter_ms("unit.c", 1, 0), 0);
    }

    #[test]
    fn fault_unit_gates_fault_specs() {
        let o = Options::parse(&strs(&[
            "batch",
            "a.c",
            "--fault",
            "inline:verify",
            "--fault-unit",
            "b.c",
        ]))
        .unwrap();
        assert!(unit_options(&o, "a.c").faults.is_empty());
        assert_eq!(unit_options(&o, "b.c").faults, strs(&["inline:verify"]));
        // No --fault-unit: faults arm everywhere.
        let o = Options::parse(&strs(&["batch", "a.c", "--fault", "inline:verify"])).unwrap();
        assert_eq!(unit_options(&o, "a.c").faults, strs(&["inline:verify"]));
    }

    #[test]
    fn enumerates_bench_units_and_rejects_unknown() {
        let o = Options::parse(&strs(&["batch", "bench:wc"])).unwrap();
        let units = enumerate_units(&o).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].name, "bench:wc");
        let o = Options::parse(&strs(&["batch", "bench:nope"])).unwrap();
        assert!(enumerate_units(&o).unwrap_err().contains("nope"));
    }

    #[test]
    fn deadline_classifies_as_governor() {
        let sources = vec![Source::new(
            "spin.c".to_string(),
            // An infinite loop: only the deadline can stop this attempt
            // (the worker itself stays fuel-bounded afterwards).
            "int main() { int i; i = 0; while (1) i = i + 1; return i; }".to_string(),
        )];
        let opts = Options::parse(&strs(&["batch", "spin.c", "--fuel", "100000000"])).unwrap();
        let (r, _) = run_attempt(
            sources,
            vec![(vec![], vec![])],
            opts,
            300,
            impact_obs::Telemetry::disabled(),
        );
        let f = r.unwrap_err();
        assert_eq!(f.signature(), "governor:deadline-exceeded");
    }

    #[test]
    fn missing_file_quarantines_as_persistent_io() {
        let unit = Unit {
            name: "no-such-file.c".to_string(),
            kind: UnitKind::File("no-such-file.c".to_string()),
        };
        let opts = Options::parse(&strs(&["batch", "no-such-file.c"])).unwrap();
        let outcome = run_unit(&unit, &opts, &impact_obs::Telemetry::disabled());
        let (taxonomy, failure) = outcome.result.unwrap_err();
        assert_eq!(taxonomy, "persistent");
        assert_eq!(failure.signature(), "io:source-read-failed");
        assert_eq!(outcome.attempts.len(), 1, "io errors are not retried");
    }
}
