//! CLI plumbing for the pipeline telemetry core (`impact-obs`): flag
//! handling, the inline-decision audit renderers, the Chrome-trace and
//! metrics exporters, and the paper-style `BENCH_inline.json` suite
//! report.
//!
//! The `--explain` table and the `--decisions-out` JSON are two views
//! over the *same* [`SiteDecision`] list the expander recorded, so they
//! agree record for record by construction. Artifact writing goes
//! through the staging + fsync + rename path crash reports use
//! ([`crate::report::atomic_write_path`] /
//! [`crate::report::atomic_write_in`]), so a crash mid-write never
//! leaves a torn telemetry file. Telemetry flags are deliberately absent
//! from [`crate::journal::campaign_fingerprint`]: an instrumented resume
//! must replay an uninstrumented campaign byte-identically.

use std::fmt::Write as _;
use std::path::Path;

use impact_inline::{SiteDecision, UnsafeReason};
use impact_obs::Telemetry;

use crate::report::{atomic_write_in, atomic_write_path, json_str};
use crate::Options;

/// Schema version of the `--decisions-out` document.
pub const DECISIONS_SCHEMA_VERSION: u32 = 1;
/// Schema version of the `BENCH_inline.json` suite report.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Builds the telemetry handle the flags ask for: enabled only when an
/// exporter will consume it. With no telemetry flag set the pipeline
/// carries a disabled handle that neither allocates nor reads the clock.
pub fn handle_for(opts: &Options) -> Telemetry {
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    }
}

/// Whether the flags ask for the inline-decision audit trail.
pub fn audit_requested(opts: &Options) -> bool {
    opts.explain || opts.decisions_out.is_some()
}

fn unsafe_reason_str(d: &SiteDecision) -> Option<&'static str> {
    d.unsafe_reason.as_ref().map(|r| match r {
        UnsafeReason::LowWeight => "low-weight",
        UnsafeReason::SelfRecursive => "self-recursive",
        UnsafeReason::RecursiveStack => "recursive-stack",
    })
}

fn call_column(d: &SiteDecision) -> String {
    format!("{} -> {}", d.caller, d.callee.as_deref().unwrap_or("?"))
}

/// Renders the human audit table for `--explain`: one row per call site,
/// in site order, derived from exactly the records [`decisions_json`]
/// serializes.
pub fn explain_table(decisions: &[SiteDecision]) -> String {
    let expanded = decisions.iter().filter(|d| d.accepted).count();
    let mut out = format!(
        "; inline decisions: {} sites, {expanded} expanded\n",
        decisions.len()
    );
    let call_w = decisions
        .iter()
        .map(|d| call_column(d).len())
        .max()
        .unwrap_or(4)
        .max(4);
    let _ = writeln!(
        out,
        ";  {:>4}  {:<8}  {:>8}  {:>8}  {:>6}  {:>8}  {:<call_w$}  decision",
        "site", "class", "weight", "size", "growth", "budget", "call"
    );
    for d in decisions {
        let _ = writeln!(
            out,
            ";  {:>4}  {:<8}  {:>8}  {:>8}  {:>6}  {:>8}  {:<call_w$}  {}",
            d.site.index(),
            d.class_str(),
            d.weight,
            d.size_at_decision,
            d.growth,
            d.budget,
            call_column(d),
            d.reason()
        );
    }
    out
}

/// Renders the schema-versioned `--decisions-out` document: one object
/// per call site, same records and same order as [`explain_table`].
pub fn decisions_json(decisions: &[SiteDecision]) -> String {
    let expanded = decisions.iter().filter(|d| d.accepted).count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"version\": {DECISIONS_SCHEMA_VERSION},\n  \
         \"kind\": \"impact-inline-decisions\",\n  \
         \"sites\": {},\n  \"expanded\": {expanded},\n  \"decisions\": [",
        decisions.len()
    );
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"site\": {}, \"caller\": {}, \"callee\": {}, \"class\": {}, \
             \"unsafe_reason\": {}, \"weight\": {}, \"accepted\": {}, \"reason\": {}, \
             \"size_at_decision\": {}, \"growth\": {}, \"budget\": {}, \"stack_bound\": {}}}",
            d.site.index(),
            json_str(&d.caller),
            d.callee.as_deref().map_or("null".to_string(), json_str),
            json_str(d.class_str()),
            unsafe_reason_str(d).map_or("null".to_string(), json_str),
            d.weight,
            d.accepted,
            json_str(d.reason()),
            d.size_at_decision,
            d.growth,
            d.budget,
            d.stack_bound
        );
    }
    if !decisions.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Writes whichever telemetry artifacts the flags ask for, atomically.
/// With no telemetry flag set this writes nothing and snapshots nothing.
///
/// # Errors
///
/// Returns a message on filesystem errors.
pub fn write_artifacts(
    opts: &Options,
    obs: &Telemetry,
    decisions: Option<&[SiteDecision]>,
) -> Result<(), String> {
    if let (Some(path), Some(d)) = (opts.decisions_out.as_deref(), decisions) {
        atomic_write_path(Path::new(path), decisions_json(d).as_bytes())?;
    }
    if opts.trace_out.is_none() && opts.metrics_out.is_none() {
        return Ok(());
    }
    let m = obs.snapshot();
    if let Some(path) = opts.trace_out.as_deref() {
        atomic_write_path(
            Path::new(path),
            impact_obs::chrome_trace_json(&m).as_bytes(),
        )?;
    }
    if let Some(path) = opts.metrics_out.as_deref() {
        atomic_write_path(Path::new(path), impact_obs::metrics_json(&m).as_bytes())?;
    }
    Ok(())
}

/// `impactc bench` with no benchmark name: rerun the paper's evaluation
/// over every bundled workload and publish the Table 1–4 metrics as
/// `BENCH_inline.json` (into `--report-dir`, or the working directory).
///
/// # Errors
///
/// Returns flag-validation and filesystem errors; per-workload failures
/// are supervised (reported in the text and the JSON, never fatal).
pub fn run_bench_suite(opts: &Options, obs: &Telemetry) -> Result<(i32, String), String> {
    let flags = opts.validate_flags()?;
    let mut cfg = impact_bench::HarnessConfig {
        inline: flags.inline,
        vm: flags.vm,
        // Two representative runs per workload keep the suite
        // interactive; the numbers stay within the paper's shape.
        max_runs: 2,
    };
    if opts.budget.is_none() {
        // The harness default (1.2x) is the paper's Table 4 operating
        // point; an explicit --budget overrides it.
        cfg.inline.code_growth_limit = 1.2;
    }
    cfg.inline.obs = obs.clone();
    cfg.vm.obs = obs.clone();
    let suite_span = obs.span("bench:suite");
    let (evals, failures) = impact_bench::evaluate_all_supervised(&cfg);
    drop(suite_span);
    obs.count("bench:workloads", evals.len() as u64);
    obs.count("bench:failures", failures.len() as u64);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "; bench suite: {} workloads evaluated, {} failed (budget {:.1}, threshold {})",
        evals.len(),
        failures.len(),
        cfg.inline.code_growth_limit,
        cfg.inline.weight_threshold
    );
    let name_w = evals.iter().map(|e| e.name.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>6}  {:>9}  {:>8}  {:>7}  {:>8}  static e/p/u/s",
        "name", "lines", "ILs/run", "expanded", "code%", "calldec%"
    );
    for e in &evals {
        let st = &e.static_totals;
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>6}  {:>9}  {:>8}  {:>7.1}  {:>8.1}  {}/{}/{}/{}",
            e.name,
            e.c_lines,
            e.avg_ils,
            e.report.expanded.len(),
            e.code_inc_percent,
            e.call_dec_percent,
            st.external,
            st.pointer,
            st.r#unsafe,
            st.safe
        );
    }
    for (name, err) in &failures {
        let _ = writeln!(out, "; warning: `{name}` failed: {err}");
    }
    let dir = std::path::PathBuf::from(opts.report_dir.as_deref().unwrap_or("."));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    let path = atomic_write_in(
        &dir,
        "BENCH_inline.json",
        bench_json(&cfg, &evals, &failures).as_bytes(),
    )?;
    let _ = writeln!(out, "; wrote {}", path.display());
    Ok((0, out))
}

/// Renders the suite report: per-workload static/dynamic class totals,
/// code growth, and call elimination — the machine-readable counterpart
/// of the paper's Tables 1–4.
fn bench_json(
    cfg: &impact_bench::HarnessConfig,
    evals: &[impact_bench::Evaluation],
    failures: &[(String, String)],
) -> String {
    let totals = |t: &impact_inline::ClassTotals| -> String {
        format!(
            "{{\"external\": {}, \"pointer\": {}, \"unsafe\": {}, \"safe\": {}}}",
            t.external, t.pointer, t.r#unsafe, t.safe
        )
    };
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"version\": {BENCH_SCHEMA_VERSION},\n  \"kind\": \"impact-bench-inline\",\n  \
         \"budget\": {}, \"threshold\": {},\n  \"benchmarks\": [",
        cfg.inline.code_growth_limit, cfg.inline.weight_threshold
    );
    for (i, e) in evals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": {}, \"c_lines\": {}, \"runs\": {}, \"avg_ils\": {}, \
             \"avg_control\": {}, \"static_sites\": {}, \"dynamic_calls\": {}, \
             \"expanded_sites\": {}, \"code_inc_percent\": {:.2}, \
             \"call_dec_percent\": {:.2}, \"ils_per_call\": {}, \"cts_per_call\": {}}}",
            json_str(&e.name),
            e.c_lines,
            e.runs,
            e.avg_ils,
            e.avg_control,
            totals(&e.static_totals),
            totals(&e.dynamic_totals),
            e.report.expanded.len(),
            e.code_inc_percent,
            e.call_dec_percent,
            e.ils_per_call,
            e.cts_per_call
        );
    }
    if !evals.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"failures\": [");
    for (i, (name, err)) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": {}, \"error\": {}}}",
            json_str(name),
            json_str(err)
        );
    }
    if !failures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn handle_is_disabled_without_telemetry_flags() {
        let o = Options::parse(&strs(&["inline", "x.c", "--explain"])).unwrap();
        assert!(!handle_for(&o).is_enabled());
        assert!(audit_requested(&o));
        let o = Options::parse(&strs(&["inline", "x.c", "--trace-out", "t.json"])).unwrap();
        assert!(handle_for(&o).is_enabled());
        assert!(!audit_requested(&o));
        let o = Options::parse(&strs(&["inline", "x.c"])).unwrap();
        assert!(!handle_for(&o).is_enabled());
        assert!(!audit_requested(&o));
    }

    #[test]
    fn empty_decision_list_renders_empty_documents() {
        let json = decisions_json(&[]);
        assert!(json.contains("\"decisions\": []"), "{json}");
        assert!(json.contains("\"sites\": 0"), "{json}");
        let table = explain_table(&[]);
        assert!(table.contains("0 sites, 0 expanded"), "{table}");
    }

    #[test]
    fn table_and_json_render_the_same_records() {
        let d = SiteDecision {
            site: impact_il::CallSiteId::from_index(3),
            caller: "main".to_string(),
            callee: None,
            class: impact_inline::SiteClass::Pointer,
            unsafe_reason: None,
            weight: 7,
            accepted: false,
            reject: Some(impact_inline::RejectReason::NotSafe(
                impact_inline::SiteClass::Pointer,
            )),
            size_at_decision: 20,
            growth: 0,
            budget: 40,
            stack_bound: 4096,
        };
        let table = explain_table(std::slice::from_ref(&d));
        let json = decisions_json(std::slice::from_ref(&d));
        for needle in ["pointer", "main -> ?", d.reason()] {
            assert!(table.contains(needle), "table missing {needle}: {table}");
        }
        assert!(json.contains("\"site\": 3"), "{json}");
        assert!(json.contains("\"callee\": null"), "{json}");
        assert!(
            json.contains(&format!("\"reason\": \"{}\"", d.reason())),
            "{json}"
        );
    }
}
