//! Transport abstraction for the compile service: one daemon, two wire
//! carriers.
//!
//! PR 6/7 built `impactc serve` directly on `UnixStream`. This module
//! factors the carrier out so the same daemon loop, bounded queue, IO
//! deadlines, and chaos points serve both a Unix domain socket and a TCP
//! listener (`--tcp HOST:PORT`), and the same client exchange runs
//! against either — the wire protocol in [`crate::serve`] never sees the
//! difference.
//!
//! Three pieces live here:
//!
//! * [`Listener`] / [`Conn`] — the daemon- and stream-side carrier
//!   enums. Every capability the serve loop relies on (nonblocking
//!   accept, mandatory read/write timeouts, `try_clone` for the
//!   buffered reader, shutdown) is forwarded verbatim to the underlying
//!   socket type.
//! * [`Endpoint`] — a client-side address. The textual form
//!   disambiguates by shape: an argument with no `/` whose final
//!   `:`-suffix parses as a port is TCP (`127.0.0.1:7070`,
//!   `build-host:9000`); anything else is a Unix socket path, which
//!   keeps every PR 6/7 invocation (`/tmp/d.sock`, `./cache.sock`)
//!   meaning what it always meant. [`parse_endpoints`] accepts the
//!   comma-separated fleet form.
//! * [`Breaker`] — the per-endpoint circuit breaker for the fleet
//!   client. Closed → Open after [`BREAKER_THRESHOLD`] *consecutive*
//!   retryable failures; Open admits nothing until
//!   [`BREAKER_COOLDOWN_MS`] has passed, then admits exactly one
//!   half-open probe (the existing `ping` verb); a successful probe
//!   closes the breaker, a failed one re-arms the cooldown. The state
//!   machine is pure (time is passed in), so the transitions are unit
//!   tested without sockets or sleeps.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

/// Consecutive retryable failures that trip a breaker open.
pub(crate) const BREAKER_THRESHOLD: u32 = 3;

/// How long an open breaker blocks an endpoint before admitting a
/// half-open probe.
pub(crate) const BREAKER_COOLDOWN_MS: u64 = 500;

// ----- endpoints -----------------------------------------------------------

/// A client-side service address: a Unix socket path or a TCP
/// `host:port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// Unix domain socket path.
    Unix(String),
    /// TCP `host:port`.
    Tcp(String),
}

/// True when `spec` is shaped like `host:port` rather than a filesystem
/// path: no `/`, a nonempty host, and a valid nonzero port after the
/// last `:`.
pub(crate) fn looks_like_tcp(spec: &str) -> bool {
    if spec.contains('/') {
        return false;
    }
    let Some((host, port)) = spec.rsplit_once(':') else {
        return false;
    };
    !host.is_empty() && port.parse::<u16>().is_ok_and(|p| p != 0)
}

impl Endpoint {
    /// Classifies one endpoint spec (see [`looks_like_tcp`]).
    pub(crate) fn parse(spec: &str) -> Endpoint {
        if looks_like_tcp(spec) {
            Endpoint::Tcp(spec.to_string())
        } else {
            Endpoint::Unix(spec.to_string())
        }
    }

    /// The original textual form, for error reports and jitter keying.
    pub(crate) fn display(&self) -> &str {
        match self {
            Endpoint::Unix(s) | Endpoint::Tcp(s) => s,
        }
    }

    /// Connects, yielding a carrier-agnostic stream.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub(crate) fn connect(&self) -> std::io::Result<Conn> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path.as_str()).map(Conn::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
        }
    }
}

/// Splits a comma-separated endpoint list, rejecting empty elements (a
/// stray comma silently shrinking the fleet is an operator error worth
/// failing loudly on).
///
/// # Errors
///
/// Returns an actionable message naming the empty position.
pub(crate) fn parse_endpoints(arg: &str) -> Result<Vec<Endpoint>, String> {
    if arg.is_empty() {
        return Err("endpoint list is empty; give a socket path or host:port".to_string());
    }
    let mut endpoints = Vec::new();
    for (i, spec) in arg.split(',').enumerate() {
        if spec.is_empty() {
            return Err(format!(
                "endpoint list `{arg}` has an empty element at position {}",
                i + 1
            ));
        }
        endpoints.push(Endpoint::parse(spec));
    }
    Ok(endpoints)
}

// ----- daemon-side carriers ------------------------------------------------

/// A bound server socket of either carrier.
pub(crate) enum Listener {
    /// Unix domain socket listener.
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Accepts one pending connection. With the listener nonblocking,
    /// returns `WouldBlock` when none is pending — the serve loop's poll
    /// contract.
    pub(crate) fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    /// Switches the listener to nonblocking accepts.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }
}

/// One accepted or connected stream of either carrier. Implements
/// `Read`/`Write` by delegation so the wire functions in [`crate::serve`]
/// are carrier-blind.
pub(crate) enum Conn {
    /// Unix domain socket stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// True for TCP streams — the carrier that gets the tighter
    /// slow-loris header deadline (a Unix peer is a local process, not a
    /// hostile network).
    pub(crate) fn is_tcp(&self) -> bool {
        matches!(self, Conn::Tcp(_))
    }

    /// Sets the read timeout (mandatory on every serve path).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(dur),
            Conn::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Sets the write timeout (mandatory on every serve path).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_write_timeout(dur),
            Conn::Tcp(s) => s.set_write_timeout(dur),
        }
    }

    /// Clones the stream handle (the serve/request code reads through a
    /// `BufReader` over one clone while writing through the other).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    /// Shuts down both directions — the `net:reset` chaos point's
    /// implementation of an abrupt peer.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub(crate) fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.shutdown(Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

// ----- circuit breaker -----------------------------------------------------

/// What the breaker admits for an endpoint right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Closed: send the real request.
    Try,
    /// Open, cooldown elapsed: send one half-open `ping` probe first.
    Probe,
    /// Open, still cooling down: skip this endpoint.
    Skip,
}

/// Per-endpoint circuit breaker (see the module docs for the state
/// machine). Time is an explicit parameter so transitions are testable
/// without sleeping.
#[derive(Debug)]
pub(crate) struct Breaker {
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl Breaker {
    /// A fresh, closed breaker.
    pub(crate) fn new() -> Breaker {
        Breaker {
            consecutive_failures: 0,
            opened_at: None,
        }
    }

    /// True while the breaker is open (cooling down or probe-eligible).
    #[cfg(test)]
    pub(crate) fn is_open(&self) -> bool {
        self.opened_at.is_some()
    }

    /// What to do with this endpoint at `now`.
    pub(crate) fn admit(&self, now: Instant) -> Admission {
        match self.opened_at {
            None => Admission::Try,
            Some(at) => {
                if now.duration_since(at) >= Duration::from_millis(BREAKER_COOLDOWN_MS) {
                    Admission::Probe
                } else {
                    Admission::Skip
                }
            }
        }
    }

    /// Records a retryable failure at `now`. Returns `true` exactly when
    /// this failure tripped a closed breaker open (the `breaker:opened`
    /// edge); a failed half-open probe re-arms the cooldown without
    /// re-counting as a trip.
    pub(crate) fn record_failure(&mut self, now: Instant) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.opened_at.is_some() {
            // Probe failed: stay open, restart the cooldown.
            self.opened_at = Some(now);
            return false;
        }
        if self.consecutive_failures >= BREAKER_THRESHOLD {
            self.opened_at = Some(now);
            return true;
        }
        false
    }

    /// Records a successful exchange (or probe). Returns `true` exactly
    /// when this closed an open breaker (the `breaker:recovered` edge).
    pub(crate) fn record_success(&mut self) -> bool {
        let recovered = self.opened_at.is_some();
        self.consecutive_failures = 0;
        self.opened_at = None;
        recovered
    }

    /// Human-readable state at `now`, for the `--stats` table.
    pub(crate) fn state_name(&self, now: Instant) -> &'static str {
        match self.opened_at {
            None => "closed",
            Some(_) => match self.admit(now) {
                Admission::Probe => "half-open",
                _ => "open",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_specs_classify_by_shape() {
        for spec in ["127.0.0.1:7070", "localhost:1", "build-host:65535"] {
            assert_eq!(
                Endpoint::parse(spec),
                Endpoint::Tcp(spec.to_string()),
                "{spec}"
            );
        }
        for spec in [
            "/tmp/d.sock",
            "./serve.sock",
            "d.sock",
            "dir/with:colon.sock",
            "host:0",     // port 0 is not a connectable endpoint
            "host:99999", // not a u16
            ":7070",      // empty host
            "host:port",  // non-numeric
        ] {
            assert_eq!(
                Endpoint::parse(spec),
                Endpoint::Unix(spec.to_string()),
                "{spec}"
            );
        }
    }

    #[test]
    fn endpoint_lists_split_and_reject_empty_elements() {
        let eps = parse_endpoints("127.0.0.1:7070,/tmp/d.sock,host:9000").unwrap();
        assert_eq!(
            eps,
            vec![
                Endpoint::Tcp("127.0.0.1:7070".to_string()),
                Endpoint::Unix("/tmp/d.sock".to_string()),
                Endpoint::Tcp("host:9000".to_string()),
            ]
        );
        for bad in ["", ",", "a.sock,", ",a.sock", "a.sock,,b.sock"] {
            let err = parse_endpoints(bad).unwrap_err();
            assert!(err.contains("empty"), "`{bad}` -> {err}");
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_only() {
        let t0 = Instant::now();
        let mut b = Breaker::new();
        assert_eq!(b.admit(t0), Admission::Try);
        assert!(!b.record_failure(t0));
        assert!(!b.record_failure(t0));
        // A success resets the consecutive count: two more failures do
        // not trip it...
        assert!(!b.record_success());
        assert!(!b.record_failure(t0));
        assert!(!b.record_failure(t0));
        assert_eq!(b.admit(t0), Admission::Try);
        // ...the third consecutive one does, exactly once.
        assert!(b.record_failure(t0));
        assert!(b.is_open());
        assert_eq!(b.admit(t0), Admission::Skip);
    }

    #[test]
    fn open_breaker_cools_down_then_probes_then_recovers() {
        let t0 = Instant::now();
        let mut b = Breaker::new();
        for _ in 0..BREAKER_THRESHOLD {
            b.record_failure(t0);
        }
        let cooldown = Duration::from_millis(BREAKER_COOLDOWN_MS);
        assert_eq!(
            b.admit(t0 + cooldown - Duration::from_millis(1)),
            Admission::Skip
        );
        assert_eq!(b.admit(t0 + cooldown), Admission::Probe);
        // Failed probe: no second `opened` edge, cooldown restarts from
        // the probe.
        let t1 = t0 + cooldown;
        assert!(!b.record_failure(t1));
        assert_eq!(b.admit(t1 + Duration::from_millis(1)), Admission::Skip);
        assert_eq!(b.admit(t1 + cooldown), Admission::Probe);
        // Successful probe: exactly one `recovered` edge, fully closed.
        assert!(b.record_success());
        assert!(!b.is_open());
        assert_eq!(b.admit(t1 + cooldown), Admission::Try);
        assert!(!b.record_success());
    }
}
