//! End-to-end batch supervision tests: the partial-success exit
//! contract, quarantine isolation, crash-report persistence, and
//! reproducer minimization + replay.

use impact_driver::supervise::{EXIT_ALL_FAILED, EXIT_ALL_OK, EXIT_PARTIAL};
use impact_driver::{execute, Options};

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// A fresh temp directory of compilable units.
fn unit_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("impactc-batch-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("alpha.c"),
        "int twice(int x) { return x + x; }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += twice(i); return s & 0xff; }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("beta.c"),
        "int inc(int x) { return x + 1; }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 30; i++) s = inc(s); return s; }\n",
    )
    .unwrap();
    std::fs::write(dir.join("gamma.c"), "int main() { return 7; }\n").unwrap();
    dir
}

#[test]
fn all_units_succeed_exits_zero() {
    let dir = unit_dir("ok");
    let o = Options::parse(&strs(&["batch", dir.to_str().unwrap()])).unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, EXIT_ALL_OK, "{out}");
    assert!(out.contains("3 units, 3 ok, 0 quarantined"), "{out}");
}

#[test]
fn faulted_unit_quarantines_alone_and_leaves_a_minimized_replayable_report() {
    let dir = unit_dir("fault");
    let report_dir = dir.join("reports");
    let beta = dir.join("beta.c");
    let o = Options::parse(&strs(&[
        "batch",
        dir.to_str().unwrap(),
        "--fault",
        "inline:verify",
        "--fault-unit",
        beta.to_str().unwrap(),
        "--retries",
        "1",
        "--retry-base-ms",
        "1",
        "--report-dir",
        report_dir.to_str().unwrap(),
    ]))
    .unwrap();
    let (code, out) = execute(&o).unwrap();

    // Exactly one unit quarantined; the others still compiled.
    assert_eq!(code, EXIT_PARTIAL, "{out}");
    assert!(out.contains("3 units, 2 ok, 1 quarantined"), "{out}");
    assert!(out.contains("inline:verify-failed"), "{out}");

    // Exactly one crash report, for beta.
    let jsons: Vec<_> = std::fs::read_dir(&report_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(jsons.len(), 1, "one crash report expected: {jsons:?}");
    let json = std::fs::read_to_string(&jsons[0]).unwrap();
    assert!(
        json.contains("\"signature\": \"inline:verify-failed\""),
        "{json}"
    );
    assert!(
        json.contains("\"taxonomy\": \"persistent-after-retries\""),
        "{json}"
    );
    // Retried once before quarantine: two attempts in the history.
    assert_eq!(json.matches("\"attempt\":").count(), 2, "{json}");

    // The reproducer is strictly smaller than the original unit...
    let repro: Vec<_> = std::fs::read_dir(&report_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_str().is_some_and(|s| s.ends_with(".repro.c")))
        .collect();
    assert_eq!(repro.len(), 1, "one reproducer expected");
    let repro_src = std::fs::read_to_string(&repro[0]).unwrap();
    let original = std::fs::read_to_string(&beta).unwrap();
    assert!(
        repro_src.len() < original.len(),
        "reproducer ({} bytes) must be strictly smaller than the unit ({} bytes)",
        repro_src.len(),
        original.len()
    );

    // ...and replays the same failure signature under `impactc inline`.
    let o = Options::parse(&strs(&[
        "inline",
        repro[0].to_str().unwrap(),
        "--quiet",
        "--fault",
        "inline:verify",
    ]))
    .unwrap();
    let err = execute(&o).unwrap_err();
    assert!(
        err.contains("[signature: inline:verify-failed]"),
        "replay must hit the recorded signature: {err}"
    );
}

#[test]
fn every_unit_failing_exits_all_failed() {
    let dir = unit_dir("allfail");
    // Arm the fault for every unit (no --fault-unit gate).
    let o = Options::parse(&strs(&[
        "batch",
        dir.to_str().unwrap(),
        "--fault",
        "inline:verify",
        "--retries",
        "0",
    ]))
    .unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, EXIT_ALL_FAILED, "{out}");
    assert!(out.contains("3 units, 0 ok, 3 quarantined"), "{out}");
}

#[test]
fn compile_errors_are_persistent_and_not_retried() {
    let dir = unit_dir("syntax");
    std::fs::write(dir.join("broken.c"), "int main( { return; }\n").unwrap();
    let report_dir = dir.join("reports");
    let o = Options::parse(&strs(&[
        "batch",
        dir.to_str().unwrap(),
        "--retries",
        "3",
        "--retry-base-ms",
        "1",
        "--report-dir",
        report_dir.to_str().unwrap(),
    ]))
    .unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, EXIT_PARTIAL, "{out}");
    assert!(out.contains("4 units, 3 ok, 1 quarantined"), "{out}");
    let json_path = std::fs::read_dir(&report_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("crash report written");
    let json = std::fs::read_to_string(json_path).unwrap();
    assert!(json.contains("\"taxonomy\": \"persistent\""), "{json}");
    assert!(json.contains("\"stage\": \"compile\""), "{json}");
    // Deterministic failure: one attempt despite --retries 3.
    assert_eq!(json.matches("\"attempt\":").count(), 1, "{json}");
}

#[test]
fn bench_units_run_alongside_files() {
    let dir = unit_dir("mixed");
    let o = Options::parse(&strs(&[
        "batch",
        dir.join("gamma.c").to_str().unwrap(),
        "bench:wc",
    ]))
    .unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, EXIT_ALL_OK, "{out}");
    assert!(out.contains("2 units, 2 ok, 0 quarantined"), "{out}");
    assert!(out.contains("bench:wc"), "{out}");
}

#[test]
fn batch_with_no_units_is_a_usage_error() {
    let o = Options::parse(&strs(&["batch"])).unwrap();
    let err = execute(&o).unwrap_err();
    assert!(err.contains("batch needs at least one unit"), "{err}");
}

#[test]
fn reusing_a_report_dir_for_a_different_campaign_is_refused() {
    let dir = unit_dir("collision");
    let report_dir = dir.join("reports");
    let report = report_dir.to_str().unwrap();
    let alpha = dir.join("alpha.c");
    let alpha = alpha.to_str().unwrap();

    // First campaign claims the directory via its manifest fingerprint.
    let o = Options::parse(&strs(&["batch", alpha, "--report-dir", report])).unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, EXIT_ALL_OK, "{out}");

    // Re-running the *same* campaign into the same directory is fine —
    // report emission is idempotent.
    let (code, _) = execute(&o).unwrap();
    assert_eq!(code, EXIT_ALL_OK);

    // A campaign with different flags must not silently mix its
    // artifacts into the directory.
    let o2 = Options::parse(&strs(&[
        "batch",
        alpha,
        "--threshold",
        "5",
        "--report-dir",
        report,
    ]))
    .unwrap();
    let err = execute(&o2).unwrap_err();
    assert!(err.contains("different campaign"), "{err}");
    assert!(err.contains("fingerprint"), "{err}");
    assert!(err.contains("--force-resume"), "{err}");

    // --force-resume takes the directory over and rewrites the manifest,
    // so the takeover campaign re-runs cleanly afterwards...
    let forced = Options::parse(&strs(&[
        "batch",
        alpha,
        "--threshold",
        "5",
        "--report-dir",
        report,
        "--force-resume",
    ]))
    .unwrap();
    let (code, _) = execute(&forced).unwrap();
    assert_eq!(code, EXIT_ALL_OK);
    let (code, _) = execute(&o2).unwrap();
    assert_eq!(code, EXIT_ALL_OK);

    // ...and the *original* campaign is now the refused one.
    assert!(execute(&o).is_err());
}
