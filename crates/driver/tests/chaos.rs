//! Chaos matrix for the serve path: every service fault point is
//! injected against a live daemon, once with the resilient client's
//! retries and once without. With retries, every scenario must converge
//! to the byte-identical report of a fault-free run with a daemon that
//! never crashes; without retries, response-path faults must fail as
//! structured errors, never hangs. The second half covers the cache
//! lifecycle across hard kills: entries and quarantine decisions must
//! survive a `kill -9` and a restart.
//!
//! Every test drives the real binary, like `tests/serve.rs`.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_impactc");

struct RunResult {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn impactc<S: AsRef<std::ffi::OsStr>>(args: &[S]) -> RunResult {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn impactc");
    RunResult {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("impactc-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_hot_c(dir: &Path) -> String {
    let p = dir.join("hot.c");
    std::fs::write(
        &p,
        "int add(int x) { return x + 1; }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 8; i++) s += add(i); return s & 0; }",
    )
    .unwrap();
    p.to_str().unwrap().to_string()
}

fn spawn_daemon(sock: &Path, extra: &[&str]) -> Child {
    let child = Command::new(BIN)
        .arg("serve")
        .arg(sock)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve daemon");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !sock.exists() {
        assert!(
            Instant::now() < deadline,
            "daemon never bound {}",
            sock.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

fn sig(child: &Child, sig: &str) {
    let ok = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill {sig} failed");
}

fn stop_and_collect(mut child: Child) -> (Option<i32>, String) {
    sig(&child, "-TERM");
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("poll daemon").is_none() {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not drain within 30s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = child.wait_with_output().expect("collect daemon output");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Hard-kills the daemon (no drain, no cleanup) — the crash half of the
/// crash-safe cache lifecycle.
fn kill9_and_reap(mut child: Child, sock: &Path) {
    sig(&child, "-KILL");
    let _ = child.wait();
    // A killed daemon leaves its socket behind; remove it so the next
    // daemon's bind (and our bind-wait) starts clean.
    let _ = std::fs::remove_file(sock);
}

fn request(sock: &Path, file: &str, extra: &[&str]) -> RunResult {
    let mut args = vec!["request", sock.to_str().unwrap(), file];
    args.extend_from_slice(extra);
    impactc(&args)
}

/// The fault-free report for `hot.c`, computed once per daemon config
/// so every chaos scenario has its ground truth.
fn baseline(dir: &Path, tag: &str) -> String {
    let hot = write_hot_c(dir);
    let sock = dir.join(format!("base-{tag}.sock"));
    let daemon = spawn_daemon(&sock, &["--jobs", "1"]);
    let r = request(&sock, &hot, &[]);
    assert_eq!(r.code, Some(0), "fault-free baseline failed: {}", r.stderr);
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));
    r.stdout
}

/// The chaos matrix proper: each daemon-side fault point, with and
/// without client retries. With retries every run converges to the
/// fault-free bytes; without, response-path faults fail structured.
#[test]
fn chaos_matrix_converges_with_retries_and_fails_structured_without() {
    let dir = tmp_dir("matrix");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "matrix");

    // (fault spec, survives a single attempt without retries?)
    let matrix: &[(&str, bool)] = &[
        ("serve:stall=1", true),         // slow, not wrong
        ("serve:panic=1", false),        // structured error response
        ("serve:accept-crash=1", false), // connection dropped pre-read
        ("net:torn-write=1", false),     // half a response frame
        ("net:drop=1", false),           // response never written
    ];

    for (fault, survives_single) in matrix {
        let tag = fault.replace([':', '='], "-");
        let sock = dir.join(format!("{tag}.sock"));
        let metrics = dir.join(format!("{tag}.metrics.json"));

        let daemon = spawn_daemon(
            &sock,
            &[
                "--jobs",
                "1",
                "--fault",
                fault,
                "--metrics-out",
                metrics.to_str().unwrap(),
            ],
        );

        // Without retries: the injected fault costs this attempt, and
        // the failure must be a structured error, never a hang.
        let bare = request(&sock, &hot, &["--retries", "0"]);
        if *survives_single {
            assert_eq!(bare.code, Some(0), "{fault} bare: {}", bare.stderr);
            assert_eq!(bare.stdout, expected, "{fault} bare bytes diverged");
        } else {
            assert_eq!(
                bare.code,
                Some(2),
                "{fault} bare must fail structured: {}",
                bare.stdout
            );
            assert!(
                !bare.stderr.is_empty(),
                "{fault} bare failed without naming a reason"
            );
        }

        // With retries (the default): the client must converge to the
        // fault-free bytes. The fault is one-shot, so for faults that
        // consumed their shot on the bare attempt the retry run is
        // fault-free; for `serve:stall` it already converged above.
        let resilient = request(&sock, &hot, &[]);
        assert_eq!(
            resilient.code,
            Some(0),
            "{fault} with retries must converge: {}",
            resilient.stderr
        );
        assert_eq!(
            resilient.stdout, expected,
            "{fault} with retries diverged from the fault-free bytes"
        );

        // The daemon never crashed: it still drains gracefully, and the
        // injected fault is visible in the chaos telemetry.
        let (code, stdout) = stop_and_collect(daemon);
        assert_eq!(code, Some(0), "{fault}: daemon must survive: {stdout}");
        let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written on drain");
        let key = fault.split('=').next().unwrap();
        assert!(
            metrics_text.contains("\"name\": \"chaos:injected\""),
            "{fault}: chaos counter missing: {metrics_text}"
        );
        assert!(
            metrics_text.contains(&format!("\"name\": \"chaos:{key}\"")),
            "{fault}: per-point chaos counter missing: {metrics_text}"
        );
    }
}

/// `cache:bitflip` corrupts a stored entry; the next lookup must
/// quarantine it (incident report and all) and recompile to the same
/// bytes — the client never sees the corruption.
#[test]
fn cache_bitflip_quarantines_and_recompiles_identically() {
    let dir = tmp_dir("bitflip");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "bitflip");
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");
    let metrics = dir.join("metrics.json");
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--fault",
            "cache:bitflip=1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    // Store (corrupted on disk by the fault), then look up: the entry
    // is quarantined and the request recompiles to the same bytes with
    // no hit marker.
    let r1 = request(&sock, &hot, &[]);
    assert_eq!(r1.code, Some(0), "store request: {}", r1.stderr);
    assert_eq!(r1.stdout, expected, "store request bytes diverged");
    let r2 = request(&sock, &hot, &[]);
    assert_eq!(r2.code, Some(0), "recompile request: {}", r2.stderr);
    assert_eq!(
        r2.stdout, expected,
        "corrupt entry must recompile, not serve garbage"
    );

    // The third request hits the freshly re-stored entry.
    let r3 = request(&sock, &hot, &[]);
    assert_eq!(r3.code, Some(0), "post-quarantine request: {}", r3.stderr);
    assert_eq!(r3.stdout, format!("{expected}; cache: hit\n"));

    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive cache corruption");
    let quarantined: Vec<_> = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "exactly one quarantined entry");
    let incidents: Vec<_> = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".incident.json"))
        .collect();
    assert_eq!(incidents.len(), 1, "exactly one incident report");
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.contains("\"name\": \"chaos:cache:bitflip\""),
        "bitflip injection missing from telemetry: {metrics_text}"
    );
}

/// A hard kill (`kill -9`, no drain) must not cost the cache: a
/// restarted daemon rebuilds its index from the scan and serves the
/// prior entries as hits.
#[test]
fn cache_entries_survive_a_hard_kill_and_restart() {
    let dir = tmp_dir("restart");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "restart");
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");

    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "1", "--cache-dir", cache.to_str().unwrap()],
    );
    let r1 = request(&sock, &hot, &[]);
    assert_eq!(r1.code, Some(0), "store request: {}", r1.stderr);
    assert_eq!(r1.stdout, expected);
    kill9_and_reap(daemon, &sock);

    // Restart on the same cache dir: the entry stored before the kill
    // is served as a hit.
    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "1", "--cache-dir", cache.to_str().unwrap()],
    );
    let r2 = request(&sock, &hot, &[]);
    assert_eq!(r2.code, Some(0), "post-restart request: {}", r2.stderr);
    assert_eq!(
        r2.stdout,
        format!("{expected}; cache: hit\n"),
        "entry lost across kill -9"
    );
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));
}

/// Quarantine decisions are crash-safe too: an entry that goes corrupt
/// while the daemon is down is quarantined by the startup scan, and
/// stays quarantined across further restarts instead of being
/// resurrected into the live set.
#[test]
fn quarantine_decisions_survive_restarts() {
    let dir = tmp_dir("quarantine-restart");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "quarantine-restart");
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");

    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "1", "--cache-dir", cache.to_str().unwrap()],
    );
    let r1 = request(&sock, &hot, &[]);
    assert_eq!(r1.code, Some(0), "store request: {}", r1.stderr);
    kill9_and_reap(daemon, &sock);

    // Corrupt the stored entry on disk while the daemon is down.
    let entry = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".entry"))
        .expect("stored entry on disk")
        .path();
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&entry, &bytes).unwrap();

    // Restart: the scan quarantines the corrupt entry, and the request
    // recompiles to the same bytes (no hit, no garbage).
    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "1", "--cache-dir", cache.to_str().unwrap()],
    );
    let r2 = request(&sock, &hot, &[]);
    assert_eq!(r2.code, Some(0), "post-corruption request: {}", r2.stderr);
    assert_eq!(
        r2.stdout, expected,
        "corrupt entry must recompile after restart"
    );
    kill9_and_reap(daemon, &sock);

    let names: Vec<String> = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with(".quarantined")),
        "quarantine decision lost: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.ends_with(".incident.json")),
        "incident report missing: {names:?}"
    );

    // One more restart: the quarantined entry stays quarantined (the
    // recompiled entry from r2 is the hit; the old bytes are never
    // resurrected).
    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "1", "--cache-dir", cache.to_str().unwrap()],
    );
    let r3 = request(&sock, &hot, &[]);
    assert_eq!(r3.code, Some(0), "second restart request: {}", r3.stderr);
    assert_eq!(
        r3.stdout,
        format!("{expected}; cache: hit\n"),
        "re-stored entry must hit after the second restart"
    );
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));
}

/// The budget holds through the daemon: with room for only one entry,
/// the older of two entries is evicted, and every response still
/// carries the right bytes.
#[test]
fn eviction_under_budget_keeps_responses_correct() {
    let dir = tmp_dir("evict");
    let hot = write_hot_c(&dir);
    // Comparable in size to hot.c so its entry also exceeds half the
    // measured budget (the eviction has to be forced, not incidental).
    let cold = dir.join("cold.c");
    std::fs::write(
        &cold,
        "int mul(int x) { return x * 3; }\n\
         int main() { int i; int s; s = 1; for (i = 0; i < 9; i++) s += mul(i); return s & 0; }",
    )
    .unwrap();
    let cold = cold.to_str().unwrap().to_string();
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");

    // First, measure one entry: store hot.c with no budget, then size
    // the budget to fit one entry but not two.
    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "1", "--cache-dir", cache.to_str().unwrap()],
    );
    let r = request(&sock, &hot, &[]);
    assert_eq!(r.code, Some(0), "measure request: {}", r.stderr);
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));
    let entry_bytes = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".entry"))
        .expect("measured entry")
        .metadata()
        .unwrap()
        .len();
    let budget = (entry_bytes + entry_bytes / 2).to_string();

    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--cache-budget-bytes",
            &budget,
        ],
    );
    // hot is still cached from the measuring run; storing cold must
    // evict it (LRU) to stay under budget.
    let h1 = request(&sock, &hot, &[]);
    assert_eq!(h1.code, Some(0));
    assert!(h1.stdout.ends_with("; cache: hit\n"), "{}", h1.stdout);
    let c1 = request(&sock, &cold, &[]);
    assert_eq!(c1.code, Some(0), "cold store: {}", c1.stderr);
    let c2 = request(&sock, &cold, &[]);
    assert_eq!(c2.code, Some(0));
    assert!(
        c2.stdout.ends_with("; cache: hit\n"),
        "cold entry should have survived: {}",
        c2.stdout
    );
    let h2 = request(&sock, &hot, &[]);
    assert_eq!(h2.code, Some(0), "evicted recompile: {}", h2.stderr);
    assert!(
        !h2.stdout.contains("; cache: hit"),
        "hot entry should have been evicted: {}",
        h2.stdout
    );
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));
}

/// The busy path end to end: a full queue sheds with a deterministic
/// retry-after hint, the client surfaces each attempt on stderr, and
/// the daemon accounts every shed.
#[test]
fn busy_responses_carry_a_retry_hint_the_client_honors() {
    let dir = tmp_dir("busy");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    // One stalled worker + one queue slot: the third client only sees
    // `busy` until the stall clears.
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--queue-depth",
            "1",
            "--fault",
            "serve:stall=1",
        ],
    );

    let a = Command::new(BIN)
        .args(["request", sock.to_str().unwrap(), &hot])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn request A");
    std::thread::sleep(Duration::from_millis(500));
    let b = Command::new(BIN)
        .args(["request", sock.to_str().unwrap(), &hot])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn request B");
    std::thread::sleep(Duration::from_millis(300));

    // C retries against the busy daemon: each attempt is shed, each
    // retry notice names the busy reason, and the overall failure is
    // structured.
    let c = request(&sock, &hot, &["--retries", "2", "--retry-base-ms", "10"]);
    assert_eq!(c.code, Some(2), "busy must stay busy: {}", c.stdout);
    assert!(c.stderr.contains("server busy"), "{}", c.stderr);
    assert!(
        c.stderr.contains("retrying in"),
        "retry notices missing: {}",
        c.stderr
    );
    assert!(
        c.stderr.contains("request failed after 3 attempts"),
        "attempt accounting missing: {}",
        c.stderr
    );

    for (name, client) in [("A", a), ("B", b)] {
        let out = client.wait_with_output().expect("collect client");
        assert_eq!(
            out.status.code(),
            Some(0),
            "request {name} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("3 shed"),
        "every shed attempt must be accounted: {stdout}"
    );
}

// ----- TCP transport chaos -------------------------------------------------

/// Reserves a loopback port by binding port 0 and immediately releasing
/// it; the daemon rebinds it a moment later.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind loopback port 0")
        .local_addr()
        .unwrap()
        .port()
}

/// `request` against an endpoint *string* (TCP address or endpoint
/// list) rather than a socket path.
fn request_ep(ep: &str, file: &str, extra: &[&str]) -> RunResult {
    let mut args = vec!["request", ep, file];
    args.extend_from_slice(extra);
    impactc(&args)
}

/// Reads one counter value out of a `--metrics-out` JSON file; absent
/// counters read as zero (they were never bumped).
fn counter(metrics_text: &str, name: &str) -> u64 {
    let needle = format!("{{\"name\": \"{name}\", \"value\": ");
    let Some(at) = metrics_text.find(&needle) else {
        return 0;
    };
    let rest = &metrics_text[at + needle.len()..];
    let end = rest.find('}').expect("well-formed counter object");
    rest[..end].trim().parse().expect("integer counter value")
}

/// The TCP chaos matrix: every TCP-era network fault fires against a
/// daemon serving loopback TCP, once without retries (structured
/// failure or transparent survival, never a hang) and once with (always
/// byte-identical convergence). The daemon survives every row and
/// accounts the injection in `chaos:*` telemetry.
#[test]
fn tcp_chaos_matrix_converges_with_retries_and_fails_structured_without() {
    let dir = tmp_dir("tcp-matrix");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "tcp-matrix");

    // (fault spec, survives a single attempt without retries?)
    let matrix: &[(&str, bool)] = &[
        ("net:reset=1", false),           // connection shut right after the read
        ("net:slow-read=1", true),        // dawdling reader; slow, not wrong
        ("net:partial-frame=1", false),   // half a response header line
        ("net:connect-refused=1", false), // accepted then dropped pre-admission
    ];

    for (fault, survives_single) in matrix {
        let tag = fault.replace([':', '='], "-");
        let sock = dir.join(format!("{tag}.sock"));
        let metrics = dir.join(format!("{tag}.metrics.json"));
        let addr = format!("127.0.0.1:{}", free_port());

        let daemon = spawn_daemon(
            &sock,
            &[
                "--jobs",
                "1",
                "--tcp",
                &addr,
                "--fault",
                fault,
                "--metrics-out",
                metrics.to_str().unwrap(),
            ],
        );

        let bare = request_ep(&addr, &hot, &["--retries", "0"]);
        if *survives_single {
            assert_eq!(bare.code, Some(0), "{fault} bare: {}", bare.stderr);
            assert_eq!(bare.stdout, expected, "{fault} bare bytes diverged");
        } else {
            assert_eq!(
                bare.code,
                Some(2),
                "{fault} bare must fail structured: {}",
                bare.stdout
            );
            assert!(
                !bare.stderr.is_empty(),
                "{fault} bare failed without naming a reason"
            );
        }

        // With retries (the default): every row converges to the
        // fault-free bytes over TCP, exactly as over the Unix socket.
        let resilient = request_ep(&addr, &hot, &[]);
        assert_eq!(
            resilient.code,
            Some(0),
            "{fault} with retries must converge: {}",
            resilient.stderr
        );
        assert_eq!(
            resilient.stdout, expected,
            "{fault} with retries diverged from the fault-free bytes"
        );

        let (code, stdout) = stop_and_collect(daemon);
        assert_eq!(code, Some(0), "{fault}: daemon must survive: {stdout}");
        let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written on drain");
        let key = fault.split('=').next().unwrap();
        assert!(
            counter(&metrics_text, "chaos:injected") >= 1,
            "{fault}: chaos counter missing: {metrics_text}"
        );
        assert!(
            counter(&metrics_text, &format!("chaos:{key}")) >= 1,
            "{fault}: per-point chaos counter missing: {metrics_text}"
        );
    }
}

/// A retried compile whose first answer landed is *replayed* from the
/// idempotency table, never recompiled: after `net:drop` eats the first
/// response, the retry produces byte-identical output while the daemon
/// accounts one store, one replay, and zero cache hits.
#[test]
fn idempotent_replay_absorbs_a_dropped_response_without_recompiling() {
    let dir = tmp_dir("idem-replay");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "idem-replay");
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");
    let metrics = dir.join("metrics.json");
    let addr = format!("127.0.0.1:{}", free_port());

    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--tcp",
            &addr,
            "--cache-dir",
            cache.to_str().unwrap(),
            "--fault",
            "net:drop=1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    // Attempt 1 compiles and stores, then the response is dropped on
    // the floor; the retry carries the same request id and must be
    // answered from the idempotency table — same bytes, no `cache: hit`
    // marker, no second compile.
    let r = request_ep(&addr, &hot, &[]);
    assert_eq!(r.code, Some(0), "retried request: {}", r.stderr);
    assert_eq!(
        r.stdout, expected,
        "idempotent replay must be byte-identical to the fault-free run"
    );

    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive the drop");
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert_eq!(
        counter(&metrics_text, "serve:idempotent-replays"),
        1,
        "exactly one replay: {metrics_text}"
    );
    assert_eq!(
        counter(&metrics_text, "cache:stores"),
        1,
        "exactly one compile reached the cache: {metrics_text}"
    );
    assert_eq!(
        counter(&metrics_text, "cache:hits"),
        0,
        "a replay must not be served from the artifact cache: {metrics_text}"
    );
}

/// The accept-time connection cap: with `--max-conns 1` and the single
/// worker stalled, an overlapping client is shed immediately with a
/// `busy` hint (accounted as `serve:conn-capped`), then converges once
/// the stalled connection clears.
#[test]
fn conn_cap_sheds_overlap_with_busy_then_converges() {
    let dir = tmp_dir("conn-cap");
    let hot = write_hot_c(&dir);
    let expected = baseline(&dir, "conn-cap");
    let sock = dir.join("d.sock");
    let metrics = dir.join("metrics.json");
    let addr = format!("127.0.0.1:{}", free_port());

    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--tcp",
            &addr,
            "--max-conns",
            "1",
            "--fault",
            "serve:stall=1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    // A occupies the only connection slot (stalled ~1.5s in the
    // worker); B arrives while the slot is held, is shed with `busy`,
    // and retries until the slot frees.
    let a = Command::new(BIN)
        .args(["request", &addr, &hot])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn request A");
    std::thread::sleep(Duration::from_millis(400));
    let b = request_ep(&addr, &hot, &["--retries", "12", "--retry-base-ms", "25"]);
    assert_eq!(b.code, Some(0), "capped client must converge: {}", b.stderr);
    assert_eq!(b.stdout, expected, "capped client bytes diverged");
    assert!(
        b.stderr.contains("server busy"),
        "shed must surface as busy: {}",
        b.stderr
    );

    let out = a.wait_with_output().expect("collect request A");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stalled client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive the cap: {stdout}");
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        counter(&metrics_text, "serve:conn-capped") >= 1,
        "cap sheds must be accounted: {metrics_text}"
    );
}

/// The tentpole scenario: a `batch --remote` campaign against two TCP
/// daemons, one of which is `kill -9`ed mid-campaign and later
/// restarted. The multi-endpoint client must fail over, open the dead
/// endpoint's circuit breaker, recover it through a half-open probe
/// after the restart, and still produce a campaign report byte-identical
/// to a fault-free single-daemon run — with zero daemon crashes.
#[test]
fn two_daemon_failover_campaign_converges_byte_identically() {
    let dir = tmp_dir("failover");
    let units = dir.join("units");
    std::fs::create_dir_all(&units).unwrap();
    // Enough VM work per unit (~150ms on an unoptimized build) that the
    // campaign comfortably spans the kill, the breaker cooldown, and
    // the restart.
    for i in 0..24 {
        std::fs::write(
            units.join(format!("u{i:02}.c")),
            format!(
                "int spin(int n) {{ int i; int s; s = {i}; for (i = 0; i < n; i++) s += i & 7; return s; }}\n\
                 int main() {{ int r; int j; r = 0; for (j = 0; j < 10; j++) r += spin(20000); return r & 0; }}"
            ),
        )
        .unwrap();
    }
    let units = units.to_str().unwrap().to_string();

    // Ground truth: the same campaign against one fresh daemon.
    let base_sock = dir.join("base.sock");
    let base = spawn_daemon(&base_sock, &["--jobs", "1"]);
    let expected = impactc(&["batch", &units, "--remote", base_sock.to_str().unwrap()]);
    assert_eq!(
        expected.code,
        Some(0),
        "fault-free campaign failed: {}",
        expected.stderr
    );
    let (code, _) = stop_and_collect(base);
    assert_eq!(code, Some(0));
    let expected = expected.stdout;

    let sock_a = dir.join("a.sock");
    let sock_b = dir.join("b.sock");
    let addr_a = format!("127.0.0.1:{}", free_port());
    let addr_b = format!("127.0.0.1:{}", free_port());
    let daemon_a = spawn_daemon(&sock_a, &["--jobs", "1", "--tcp", &addr_a]);
    let daemon_b = spawn_daemon(&sock_b, &["--jobs", "1", "--tcp", &addr_b]);

    let endpoints = format!("{addr_a},{addr_b}");
    let metrics = dir.join("metrics.json");
    let client = Command::new(BIN)
        .args([
            "batch",
            &units,
            "--remote",
            &endpoints,
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn remote campaign");

    // Mid-campaign: hard-kill A. The next units fail over to B; after
    // three consecutive A failures the breaker opens and A is skipped
    // outright.
    std::thread::sleep(Duration::from_millis(500));
    kill9_and_reap(daemon_a, &sock_a);
    // Restart A on the same endpoint while the campaign is still
    // running: once the breaker's cooldown lapses, a half-open probe
    // finds it healthy and brings it back into rotation.
    std::thread::sleep(Duration::from_millis(900));
    let daemon_a = spawn_daemon(&sock_a, &["--jobs", "1", "--tcp", &addr_a]);

    let out = client.wait_with_output().expect("collect campaign");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "campaign must converge despite the kill: {stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "failover campaign diverged from the fault-free bytes"
    );
    assert!(
        stderr.contains("circuit breaker opened"),
        "breaker never opened for the dead endpoint: {stderr}"
    );
    assert!(
        stderr.contains("recovered"),
        "restarted endpoint never recovered: {stderr}"
    );

    // Client-side breaker lifecycle, from telemetry: opened at least
    // once, probed at least once, recovered at least once, and at least
    // one unit failed over.
    let metrics_text = std::fs::read_to_string(&metrics).expect("campaign metrics");
    for name in [
        "breaker:opened",
        "breaker:probes",
        "breaker:recovered",
        "net:failovers",
    ] {
        assert!(
            counter(&metrics_text, name) >= 1,
            "`{name}` must fire during the failover campaign: {metrics_text}"
        );
    }

    // Zero daemon crashes: B rode through the whole campaign, and the
    // restarted A drains cleanly.
    let (code, _) = stop_and_collect(daemon_b);
    assert_eq!(code, Some(0), "daemon B must survive the campaign");
    let (code, _) = stop_and_collect(daemon_a);
    assert_eq!(code, Some(0), "restarted daemon A must drain cleanly");
}

/// `--deadline-ms` is an overall budget: against a daemon that never
/// answers usefully (stall longer than the deadline), the client gives
/// up with a deadline error instead of burning all its retries.
#[test]
fn deadline_bounds_the_whole_retry_schedule() {
    let dir = tmp_dir("deadline");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    // The first request stalls 1500ms; a 600ms overall deadline must
    // expire during that stalled exchange.
    let daemon = spawn_daemon(&sock, &["--jobs", "1", "--fault", "serve:stall=1"]);

    let start = Instant::now();
    let r = request(&sock, &hot, &["--deadline-ms", "600"]);
    let elapsed = start.elapsed();
    assert_eq!(r.code, Some(2), "deadline run must fail: {}", r.stdout);
    assert!(
        r.stderr.contains("deadline"),
        "failure must name the deadline: {}",
        r.stderr
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "client overstayed its deadline: {elapsed:?}"
    );

    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive deadline clients");
}

// ----- Flight recorder under chaos ----------------------------------------

/// Reads the one `serve-incident-*.json` dump a scenario produced.
fn read_incident(reports: &Path) -> String {
    let incidents: Vec<_> = std::fs::read_dir(reports)
        .expect("report dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            n.starts_with("serve-incident-") && n.ends_with(".json")
        })
        .collect();
    assert_eq!(
        incidents.len(),
        1,
        "expected exactly one incident dump, got {incidents:?}"
    );
    std::fs::read_to_string(incidents[0].path()).unwrap()
}

/// Asserts an incident dump carries a non-empty flight ring whose last
/// events name the failing request's trace id (the dump's own `trace`
/// field), for the given armed fault.
fn assert_incident_names_the_trace(incident: &str, reason: &str, fault_detail: &str) {
    assert!(
        incident.contains(&format!("\"reason\": \"{reason}\"")),
        "wrong incident reason: {incident}"
    );
    let trace = incident
        .split("\"trace\": \"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("incident names a trace id")
        .to_string();
    assert_ne!(
        trace, "0000000000000000",
        "incident trace must be the failing request's, not untraced: {incident}"
    );
    assert!(
        incident.contains("\"seq\": "),
        "flight ring dump is empty: {incident}"
    );
    // The ring's recent events include the fault firing, tagged with the
    // same trace id as the dump header.
    let fault_event = incident
        .split(&format!("\"detail\": \"{fault_detail}\""))
        .nth(1)
        .unwrap_or_else(|| panic!("`{fault_detail}` event missing from the ring: {incident}"));
    assert!(
        fault_event.contains(&format!("\"trace\": \"{trace}\"")),
        "fault event not tagged with the failing trace {trace}: {incident}"
    );
}

/// Under `serve:panic`, the incident JSON must contain a non-empty
/// flight-recorder dump whose last events name the failing request's
/// trace id.
#[test]
fn serve_panic_incident_dumps_the_flight_ring_with_the_failing_trace() {
    let dir = tmp_dir("flight-panic");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let reports = dir.join("reports");
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--fault",
            "serve:panic=1",
            "--report-dir",
            reports.to_str().unwrap(),
        ],
    );

    let r = request(&sock, &hot, &["--retries", "0"]);
    assert_eq!(r.code, Some(2), "panicked request must error: {}", r.stdout);
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive the panic");

    let incident = read_incident(&reports);
    assert_incident_names_the_trace(&incident, "worker-panic", "serve:panic");
    assert!(
        incident.contains("\"kind\": \"panic\""),
        "the panic itself must be the ring's last event: {incident}"
    );
}

/// Same contract under `net:reset`: the connection dies right after the
/// request is read, and the dump still names the victim's trace id.
#[test]
fn net_reset_incident_dumps_the_flight_ring_with_the_failing_trace() {
    let dir = tmp_dir("flight-reset");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let reports = dir.join("reports");
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--fault",
            "net:reset=1",
            "--report-dir",
            reports.to_str().unwrap(),
        ],
    );

    let r = request(&sock, &hot, &["--retries", "0"]);
    assert_eq!(r.code, Some(2), "reset request must error: {}", r.stdout);
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive the reset");

    let incident = read_incident(&reports);
    assert_incident_names_the_trace(&incident, "net:reset", "net:reset");
}

/// A pre-v4 client must get a clean protocol-version error, never a
/// hang: the daemon answers a v3 header with a structured `bad protocol`
/// error response within the read timeout.
#[test]
fn v3_client_gets_a_clean_protocol_error_not_a_hang() {
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    let dir = tmp_dir("v3-client");
    let sock = dir.join("d.sock");
    let daemon = spawn_daemon(&sock, &["--jobs", "1"]);

    // A verbatim PR 9-era compile frame: v3 had no trace-id field.
    let mut stream = UnixStream::connect(&sock).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = "int main() { return 0; }\n";
    let frame = format!(
        "impact-serve v3 compile 1 00000000deadbeef\n{} {}\na.c{body}",
        "a.c".len(),
        body.len()
    );
    stream.write_all(frame.as_bytes()).expect("write v3 frame");
    stream.flush().unwrap();

    let mut reply = String::new();
    stream
        .read_to_string(&mut reply)
        .expect("v4 daemon must answer, not hang");
    assert!(
        reply.starts_with("impact-serve v4 error"),
        "expected a structured error response: {reply:?}"
    );
    assert!(
        reply.contains("bad protocol"),
        "error must name the protocol mismatch: {reply:?}"
    );

    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "daemon must survive a pre-v4 client");
}
