//! Crash→resume recovery matrix: kill `impactc batch`/`impactc fuzz` at
//! every campaign-journal event via the `journal:crash` / `journal:torn`
//! / `journal:crash-after` fault points, then prove that
//!
//! 1. no partially-written artifact is observable in `--report-dir`
//!    after the kill (no `*.tmp`, no truncated JSON), and
//! 2. `--resume` completes the campaign with a summary and report set
//!    **byte-identical** to an uninterrupted run (modulo the `; journal:`
//!    status lines and the one nondeterministic report field, `wall_ms`).
//!
//! The matrix walks the kill index upward per fault class until a run no
//! longer crashes — i.e. past the campaign's last journal append — so
//! every event class is covered without hard-coding the event count.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_impactc");

struct RunResult {
    /// `None` when the process died on a signal (SIGABRT from a kill
    /// point); `Some(code)` for a normal exit.
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn impactc<S: AsRef<std::ffi::OsStr>>(args: &[S]) -> RunResult {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn impactc");
    RunResult {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("impactc-crashrec-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drops the `; journal:` status lines — the one output difference the
/// resume contract allows — and rewrites the scenario's report dir to a
/// placeholder so summaries from different directories compare equal.
/// Elapsed-time tokens (`<digits>ms`) are nondeterministic between
/// processes, so they are normalized to `<N>ms`; because the batch table
/// pads its time column to the widest value, runs of spaces are then
/// collapsed so column alignment differences cancel out too.
fn canon(s: &str, report_dir: &Path) -> String {
    let kept = s
        .lines()
        .filter(|l| !l.starts_with("; journal:"))
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        .replace(report_dir.to_str().unwrap(), "<REPORT_DIR>");
    collapse_spaces(&normalize_ms(&kept))
}

/// Replaces every `<digits>ms` token with `<N>ms`.
fn normalize_ms(s: &str) -> String {
    let pieces: Vec<&str> = s.split("ms").collect();
    let mut out = String::with_capacity(s.len());
    for (i, piece) in pieces.iter().enumerate() {
        if i > 0 {
            out.push_str("ms");
        }
        let head = piece.trim_end_matches(|c: char| c.is_ascii_digit());
        if i + 1 < pieces.len() && head.len() < piece.len() {
            out.push_str(head);
            out.push_str("<N>");
        } else {
            out.push_str(piece);
        }
    }
    out
}

/// Collapses runs of spaces to a single space (padded columns shift when
/// `normalize_ms` replaces variable-width digits with a fixed token).
fn collapse_spaces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev_space = false;
    for c in s.chars() {
        if c == ' ' {
            if !prev_space {
                out.push(c);
            }
            prev_space = true;
        } else {
            prev_space = false;
            out.push(c);
        }
    }
    out
}

/// Zeroes every `"wall_ms": N` in a JSON report — wall time is the one
/// nondeterministic field a rerun cannot reproduce.
fn normalize_wall_ms(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("\"wall_ms\": ") {
        let tail = &rest[i + "\"wall_ms\": ".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..i]);
        out.push_str("\"wall_ms\": 0");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Snapshot of a report dir: file name → normalized content, excluding
/// the `.staging/` scratch area.
fn snapshot(dir: &Path) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    if !dir.is_dir() {
        return map;
    }
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        // The manifest fingerprints the campaign *including* its report
        // dir, so it legitimately differs across scenario directories.
        if entry.path().is_dir() || name == "campaign.manifest" {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).unwrap();
        map.insert(
            name,
            normalize_wall_ms(&text).replace(dir.to_str().unwrap(), "<REPORT_DIR>"),
        );
    }
    map
}

/// Post-kill invariant: nothing half-written is observable — no `*.tmp`
/// anywhere under the dir, and every JSON document parses as complete
/// (balanced braces, trailing newline).
fn assert_no_torn_artifacts(dir: &Path) {
    if !dir.is_dir() {
        return;
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
                continue;
            }
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "torn staging file visible after kill: {}",
                p.display()
            );
            if name.ends_with(".json") {
                let text = std::fs::read_to_string(&p).unwrap();
                let opens = text.matches('{').count();
                let closes = text.matches('}').count();
                assert!(
                    opens > 0 && opens == closes && text.ends_with('\n'),
                    "truncated JSON visible after kill: {} ({opens} open / {closes} close braces)",
                    p.display()
                );
            }
        }
    }
}

fn write_units(dir: &Path) -> Vec<String> {
    let units = [
        (
            "alpha.c",
            "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += sq(i); return s & 0xff; }",
        ),
        (
            "beta.c",
            "int tri(int x) { return x + x + x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += tri(i); return s & 0xff; }",
        ),
        (
            "gamma.c",
            "int half(int x) { return x / 2; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += half(i); return s & 0xff; }",
        ),
    ];
    units
        .iter()
        .map(|(name, text)| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p.to_str().unwrap().to_string()
        })
        .collect()
}

/// Batch flag set shared by the baseline, every kill run, and every
/// resume (the kill fault itself is the only difference, and `journal:*`
/// specs are excluded from the campaign fingerprint by design).
fn batch_args<'a>(
    units: &'a [String],
    beta: &'a str,
    report: &'a str,
    journal: &'a str,
) -> Vec<&'a str> {
    let mut v: Vec<&str> = vec!["batch"];
    v.extend(units.iter().map(String::as_str));
    v.extend([
        "--retries",
        "0",
        "--fault",
        "inline:verify",
        "--fault-unit",
        beta,
        "--report-dir",
        report,
        "--journal",
        journal,
    ]);
    v
}

#[test]
fn batch_crash_resume_matrix_is_exact() {
    let dir = tmp_dir("batch-matrix");
    let units = write_units(&dir);
    let beta = units[1].clone();

    // Uninterrupted journaled baseline: beta quarantines (exit 10), a
    // crash report lands in the report dir.
    let base_report = dir.join("base-reports");
    let base_journal = dir.join("base.journal");
    let base = impactc(&batch_args(
        &units,
        &beta,
        base_report.to_str().unwrap(),
        base_journal.to_str().unwrap(),
    ));
    assert_eq!(base.code, Some(10), "baseline: {}", base.stderr);
    let base_stdout = canon(&base.stdout, &base_report);
    let base_files = snapshot(&base_report);
    assert!(
        base_files.keys().any(|n| n.ends_with(".json")),
        "baseline wrote no crash report: {base_files:?}"
    );

    // With 3 units the journal sees 8 appends (campaign-start, 3 ×
    // unit-start/unit-done, campaign-end); the loop discovers that bound
    // by walking until a kill no longer fires.
    for class in ["journal:crash", "journal:torn", "journal:crash-after"] {
        let mut crashed_at_least_once = false;
        for n in 1..=16u32 {
            let tag = format!("{}-{n}", class.replace(':', "-"));
            let report = dir.join(format!("reports-{tag}"));
            let journal = dir.join(format!("{tag}.journal"));
            let report_s = report.to_str().unwrap().to_string();
            let journal_s = journal.to_str().unwrap().to_string();
            let kill = format!("{class}={n}");
            let mut args = batch_args(&units, &beta, &report_s, &journal_s);
            args.extend(["--fault", &kill]);
            let killed = impactc(&args);
            if killed.code.is_some() {
                // The kill point sits past the campaign's last journal
                // append: the run completed; the matrix for this class is
                // exhausted.
                assert_eq!(killed.code, Some(10), "{tag}: {}", killed.stderr);
                assert!(n > 1, "{class} never fired");
                break;
            }
            crashed_at_least_once = true;
            assert_no_torn_artifacts(&report);

            // Resume without the kill fault: the campaign must complete
            // with the baseline's exact summary and report set.
            let mut args = batch_args(&units, &beta, &report_s, &journal_s);
            args.push("--resume");
            let resumed = impactc(&args);
            assert_eq!(
                resumed.code,
                Some(10),
                "{tag} resume failed: {}",
                resumed.stderr
            );
            assert_eq!(
                canon(&resumed.stdout, &report),
                base_stdout,
                "{tag}: resumed summary diverged from the uninterrupted run"
            );
            assert_eq!(
                snapshot(&report),
                base_files,
                "{tag}: resumed report set diverged from the uninterrupted run"
            );
            assert_no_torn_artifacts(&report);
        }
        assert!(crashed_at_least_once, "{class} fired for no kill index");
    }
}

#[test]
fn fuzz_clean_campaign_crash_resume_matrix_is_exact() {
    let dir = tmp_dir("fuzz-matrix");

    let base_journal = dir.join("base.journal");
    let base = impactc(&[
        "fuzz",
        "--seed",
        "7",
        "--budget",
        "3",
        "--journal",
        base_journal.to_str().unwrap(),
    ]);
    assert_eq!(base.code, Some(0), "baseline: {}", base.stderr);
    let base_stdout = canon(&base.stdout, &dir);

    for class in ["journal:crash", "journal:torn", "journal:crash-after"] {
        let mut crashed_at_least_once = false;
        for n in 1..=16u32 {
            let tag = format!("{}-{n}", class.replace(':', "-"));
            let journal = dir.join(format!("{tag}.journal"));
            let journal_s = journal.to_str().unwrap().to_string();
            let kill = format!("{class}={n}");
            let killed = impactc(&[
                "fuzz",
                "--seed",
                "7",
                "--budget",
                "3",
                "--journal",
                &journal_s,
                "--fault",
                &kill,
            ]);
            if killed.code.is_some() {
                assert_eq!(killed.code, Some(0), "{tag}: {}", killed.stderr);
                assert!(n > 1, "{class} never fired");
                break;
            }
            crashed_at_least_once = true;
            let resumed = impactc(&[
                "fuzz",
                "--seed",
                "7",
                "--budget",
                "3",
                "--journal",
                &journal_s,
                "--resume",
            ]);
            assert_eq!(
                resumed.code,
                Some(0),
                "{tag} resume failed: {}",
                resumed.stderr
            );
            assert_eq!(
                canon(&resumed.stdout, &dir),
                base_stdout,
                "{tag}: resumed summary diverged"
            );
        }
        assert!(crashed_at_least_once, "{class} fired for no kill index");
    }
}

#[test]
fn fuzz_finding_campaign_resumes_with_identical_reports() {
    let dir = tmp_dir("fuzz-finding");
    let base_report = dir.join("base-reports");
    let base_journal = dir.join("base.journal");
    let finding_args = |report: &str, journal: &str| -> Vec<String> {
        [
            "fuzz",
            "--seed",
            "42",
            "--budget",
            "2",
            "--fault",
            "expand:verify",
            "--report-dir",
            report,
            "--journal",
            journal,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };
    let base = impactc(&finding_args(
        base_report.to_str().unwrap(),
        base_journal.to_str().unwrap(),
    ));
    assert_eq!(base.code, Some(12), "baseline: {}", base.stderr);
    let base_stdout = canon(&base.stdout, &base_report);
    let base_files = snapshot(&base_report);
    assert!(
        base_files.keys().any(|n| n.ends_with(".repro.c")),
        "baseline wrote no reproducer: {base_files:?}"
    );

    // One targeted kill mid-campaign (the 3rd journal append lands inside
    // program p0/p1 processing), then resume.
    let report = dir.join("reports-kill");
    let journal = dir.join("kill.journal");
    let mut args = finding_args(report.to_str().unwrap(), journal.to_str().unwrap());
    args.extend(["--fault".to_string(), "journal:crash=3".to_string()]);
    let killed = impactc(&args);
    assert_eq!(killed.code, None, "the kill point must abort the process");
    assert_no_torn_artifacts(&report);

    let mut args = finding_args(report.to_str().unwrap(), journal.to_str().unwrap());
    args.push("--resume".to_string());
    let resumed = impactc(&args);
    assert_eq!(
        resumed.code,
        Some(12),
        "resume must finish the finding campaign: {}",
        resumed.stderr
    );
    assert_eq!(
        canon(&resumed.stdout, &report),
        base_stdout,
        "resumed finding summary diverged"
    );
    assert_eq!(
        snapshot(&report),
        base_files,
        "resumed finding reports diverged"
    );
    assert_no_torn_artifacts(&report);
}

#[test]
fn resume_refuses_a_different_campaign_without_force() {
    let dir = tmp_dir("fingerprint");
    let units = write_units(&dir);
    let journal = dir.join("c.journal");
    let journal_s = journal.to_str().unwrap().to_string();

    let first = impactc(&[
        "batch",
        &units[0],
        "--journal",
        &journal_s,
        "--threshold",
        "5",
    ]);
    assert_eq!(first.code, Some(0), "{}", first.stderr);

    // Same journal, different flags: refused, and the message names both
    // fingerprints plus the override.
    let mismatched = impactc(&[
        "batch",
        &units[0],
        "--journal",
        &journal_s,
        "--threshold",
        "6",
        "--resume",
    ]);
    assert_eq!(mismatched.code, Some(2), "{}", mismatched.stdout);
    assert!(
        mismatched.stderr.contains("--force-resume"),
        "{}",
        mismatched.stderr
    );
    assert!(
        mismatched.stderr.contains("fingerprint"),
        "{}",
        mismatched.stderr
    );

    // --force-resume overrides.
    let forced = impactc(&[
        "batch",
        &units[0],
        "--journal",
        &journal_s,
        "--threshold",
        "6",
        "--resume",
        "--force-resume",
    ]);
    assert_eq!(forced.code, Some(0), "{}", forced.stderr);

    // A fresh (non-resume) run refuses to clobber an existing journal.
    let clobber = impactc(&["batch", &units[0], "--journal", &journal_s]);
    assert_eq!(clobber.code, Some(2));
    assert!(clobber.stderr.contains("--resume"), "{}", clobber.stderr);

    // --resume without --journal, and journal flags on non-campaign
    // commands, are usage errors.
    let orphan = impactc(&["batch", &units[0], "--resume"]);
    assert_eq!(orphan.code, Some(2));
    assert!(orphan.stderr.contains("--journal"), "{}", orphan.stderr);
    let wrong_cmd = impactc(&["compile", &units[0], "--journal", &journal_s]);
    assert_eq!(wrong_cmd.code, Some(2));
    assert!(
        wrong_cmd.stderr.contains("campaign commands"),
        "{}",
        wrong_cmd.stderr
    );
}
