//! Parallel-campaign robustness matrix: `impactc batch --jobs 4` must be
//! observationally identical to a serial run — same summary, same report
//! set — and the crash→resume guarantees of the journal must hold under
//! concurrent unit completion:
//!
//! 1. a campaign killed mid-flight at any journal append leaves a
//!    replayable journal (the single-writer design means only the *tail*
//!    can be torn, never an interior record) and no torn report
//!    artifacts, and
//! 2. `--resume --jobs 4` reproduces the uninterrupted **serial** run's
//!    summary and reports byte-for-byte (modulo `; journal:` lines and
//!    wall-clock fields), because rendering is in canonical unit order
//!    and per-unit timings are journaled, not re-measured.
//!
//! The artifact cache rides the same harness: a bit-flipped cache entry
//! must be detected, quarantined with an incident report, and
//! transparently recompiled — never served.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_impactc");

struct RunResult {
    /// `None` when the process died on a signal (SIGABRT from a kill
    /// point); `Some(code)` for a normal exit.
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn impactc<S: AsRef<std::ffi::OsStr>>(args: &[S]) -> RunResult {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn impactc");
    RunResult {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("impactc-parallel-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drops `; journal:` status lines, rewrites the report dir to a
/// placeholder, and normalizes elapsed-time tokens plus the column
/// padding they shift (see `crash_recovery.rs` for the rationale).
fn canon(s: &str, report_dir: &Path) -> String {
    let kept = s
        .lines()
        .filter(|l| !l.starts_with("; journal:"))
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        .replace(report_dir.to_str().unwrap(), "<REPORT_DIR>");
    collapse_spaces(&normalize_ms(&kept))
}

/// Replaces every `<digits>ms` token with `<N>ms`.
fn normalize_ms(s: &str) -> String {
    let pieces: Vec<&str> = s.split("ms").collect();
    let mut out = String::with_capacity(s.len());
    for (i, piece) in pieces.iter().enumerate() {
        if i > 0 {
            out.push_str("ms");
        }
        let head = piece.trim_end_matches(|c: char| c.is_ascii_digit());
        if i + 1 < pieces.len() && head.len() < piece.len() {
            out.push_str(head);
            out.push_str("<N>");
        } else {
            out.push_str(piece);
        }
    }
    out
}

/// Collapses runs of spaces to a single space.
fn collapse_spaces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev_space = false;
    for c in s.chars() {
        if c == ' ' {
            if !prev_space {
                out.push(c);
            }
            prev_space = true;
        } else {
            prev_space = false;
            out.push(c);
        }
    }
    out
}

/// Zeroes every `"wall_ms": N` in a JSON report.
fn normalize_wall_ms(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("\"wall_ms\": ") {
        let tail = &rest[i + "\"wall_ms\": ".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..i]);
        out.push_str("\"wall_ms\": 0");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Snapshot of a report dir: file name → normalized content.
fn snapshot(dir: &Path) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    if !dir.is_dir() {
        return map;
    }
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.path().is_dir() || name == "campaign.manifest" {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).unwrap();
        map.insert(
            name,
            normalize_wall_ms(&text).replace(dir.to_str().unwrap(), "<REPORT_DIR>"),
        );
    }
    map
}

/// Post-kill invariant: no torn *published* artifact — no `*.tmp`
/// outside `.staging/`, every published JSON document complete. The
/// `.staging/` scratch area is excluded: a parallel kill can interrupt
/// a pool worker mid-staging-write (the abort fires on the journal
/// thread while compiles are in flight), and the crash-consistency
/// contract is that such in-flight files are never *published* and are
/// scrubbed on the next campaign start (`assert_staging_scrubbed`).
fn assert_no_torn_artifacts(dir: &Path) {
    if !dir.is_dir() {
        return;
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == ".staging") {
                    continue;
                }
                stack.push(p);
                continue;
            }
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "torn staging file visible after kill: {}",
                p.display()
            );
            if name.ends_with(".json") {
                let text = std::fs::read_to_string(&p).unwrap();
                let opens = text.matches('{').count();
                let closes = text.matches('}').count();
                assert!(
                    opens > 0 && opens == closes && text.ends_with('\n'),
                    "truncated JSON visible after kill: {} ({opens} open / {closes} close braces)",
                    p.display()
                );
            }
        }
    }
}

/// After a completed (resumed) campaign, even the scratch area is
/// clean: campaign start scrubs staging leftovers a crash stranded.
fn assert_staging_scrubbed(dir: &Path) {
    let staging = dir.join(".staging");
    if !staging.is_dir() {
        return;
    }
    for entry in std::fs::read_dir(&staging).unwrap() {
        let p = entry.unwrap().path();
        panic!(
            "stale staging file survived the resumed campaign: {}",
            p.display()
        );
    }
}

/// A killed campaign's journal must still replay: the pool design keeps
/// appends on a single thread, so an abort mid-append can tear only the
/// final record — never interleave records of concurrently-finishing
/// units.
fn assert_journal_replayable(journal: &Path) {
    let text = std::fs::read_to_string(journal).unwrap_or_default();
    if let Err(e) = impact_driver::journal::replay(&text) {
        panic!(
            "killed parallel campaign left an unreplayable journal ({e}): {}",
            journal.display()
        );
    }
}

fn write_units(dir: &Path) -> Vec<String> {
    let units = [
        (
            "alpha.c",
            "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += sq(i); return s & 0xff; }",
        ),
        (
            "beta.c",
            "int tri(int x) { return x + x + x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += tri(i); return s & 0xff; }",
        ),
        (
            "gamma.c",
            "int half(int x) { return x / 2; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += half(i); return s & 0xff; }",
        ),
    ];
    units
        .iter()
        .map(|(name, text)| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p.to_str().unwrap().to_string()
        })
        .collect()
}

/// Shared flag set: beta quarantines via an injected verifier fault, so
/// the batch exercises ok units, a failing unit, and crash reporting.
fn batch_args<'a>(
    units: &'a [String],
    beta: &'a str,
    report: &'a str,
    journal: &'a str,
) -> Vec<&'a str> {
    let mut v: Vec<&str> = vec!["batch"];
    v.extend(units.iter().map(String::as_str));
    v.extend([
        "--retries",
        "0",
        "--fault",
        "inline:verify",
        "--fault-unit",
        beta,
        "--report-dir",
        report,
        "--journal",
        journal,
    ]);
    v
}

#[test]
fn parallel_batch_matches_serial_batch_exactly() {
    let dir = tmp_dir("vs-serial");
    let units = write_units(&dir);
    let beta = units[1].clone();

    let serial_report = dir.join("serial-reports");
    let serial_journal = dir.join("serial.journal");
    let serial = impactc(&batch_args(
        &units,
        &beta,
        serial_report.to_str().unwrap(),
        serial_journal.to_str().unwrap(),
    ));
    assert_eq!(serial.code, Some(10), "serial baseline: {}", serial.stderr);

    let par_report = dir.join("par-reports");
    let par_journal = dir.join("par.journal");
    let mut args = batch_args(
        &units,
        &beta,
        par_report.to_str().unwrap(),
        par_journal.to_str().unwrap(),
    );
    args.extend(["--jobs", "4"]);
    let parallel = impactc(&args);
    assert_eq!(parallel.code, Some(10), "parallel run: {}", parallel.stderr);

    assert_eq!(
        canon(&parallel.stdout, &par_report),
        canon(&serial.stdout, &serial_report),
        "parallel summary diverged from serial"
    );
    assert_eq!(
        snapshot(&par_report),
        snapshot(&serial_report),
        "parallel report set diverged from serial"
    );
}

#[test]
fn parallel_crash_resume_matrix_is_exact() {
    let dir = tmp_dir("kill-matrix");
    let units = write_units(&dir);
    let beta = units[1].clone();

    // The comparison baseline is the uninterrupted SERIAL run: a resumed
    // parallel campaign must match it, proving jobs count changes nothing
    // observable.
    let base_report = dir.join("base-reports");
    let base_journal = dir.join("base.journal");
    let base = impactc(&batch_args(
        &units,
        &beta,
        base_report.to_str().unwrap(),
        base_journal.to_str().unwrap(),
    ));
    assert_eq!(base.code, Some(10), "baseline: {}", base.stderr);
    let base_stdout = canon(&base.stdout, &base_report);
    let base_files = snapshot(&base_report);

    for class in ["journal:crash", "journal:torn", "journal:crash-after"] {
        let mut crashed_at_least_once = false;
        for n in 1..=16u32 {
            let tag = format!("{}-{n}", class.replace(':', "-"));
            let report = dir.join(format!("reports-{tag}"));
            let journal = dir.join(format!("{tag}.journal"));
            let report_s = report.to_str().unwrap().to_string();
            let journal_s = journal.to_str().unwrap().to_string();
            let kill = format!("{class}={n}");
            let mut args = batch_args(&units, &beta, &report_s, &journal_s);
            args.extend(["--jobs", "4", "--fault", &kill]);
            let killed = impactc(&args);
            if killed.code.is_some() {
                assert_eq!(killed.code, Some(10), "{tag}: {}", killed.stderr);
                assert!(n > 1, "{class} never fired");
                break;
            }
            crashed_at_least_once = true;
            assert_no_torn_artifacts(&report);
            assert_journal_replayable(&journal);

            let mut args = batch_args(&units, &beta, &report_s, &journal_s);
            args.extend(["--jobs", "4", "--resume"]);
            let resumed = impactc(&args);
            assert_eq!(
                resumed.code,
                Some(10),
                "{tag} resume failed: {}",
                resumed.stderr
            );
            assert_eq!(
                canon(&resumed.stdout, &report),
                base_stdout,
                "{tag}: resumed parallel summary diverged from the serial run"
            );
            assert_eq!(
                snapshot(&report),
                base_files,
                "{tag}: resumed parallel report set diverged from the serial run"
            );
            assert_no_torn_artifacts(&report);
            assert_staging_scrubbed(&report);
        }
        assert!(crashed_at_least_once, "{class} fired for no kill index");
    }
}

#[test]
fn jobs_count_is_excluded_from_the_campaign_fingerprint() {
    let dir = tmp_dir("fingerprint-jobs");
    let units = write_units(&dir);
    let beta = units[1].clone();

    let base_report = dir.join("base-reports");
    let base_journal = dir.join("base.journal");
    let base = impactc(&batch_args(
        &units,
        &beta,
        base_report.to_str().unwrap(),
        base_journal.to_str().unwrap(),
    ));
    assert_eq!(base.code, Some(10), "baseline: {}", base.stderr);
    let base_stdout = canon(&base.stdout, &base_report);
    let base_files = snapshot(&base_report);

    // Kill a SERIAL campaign mid-flight, then resume it with --jobs 4:
    // the service knobs are operator tuning, not campaign identity, so
    // the fingerprint check must accept the switch.
    let report = dir.join("reports-switch");
    let journal = dir.join("switch.journal");
    let report_s = report.to_str().unwrap().to_string();
    let journal_s = journal.to_str().unwrap().to_string();
    let mut args = batch_args(&units, &beta, &report_s, &journal_s);
    args.extend(["--fault", "journal:crash=3"]);
    let killed = impactc(&args);
    assert_eq!(killed.code, None, "the kill point must abort the process");

    let mut args = batch_args(&units, &beta, &report_s, &journal_s);
    args.extend(["--jobs", "4", "--resume"]);
    let resumed = impactc(&args);
    assert_eq!(
        resumed.code,
        Some(10),
        "serial campaign must resume under --jobs 4: {}",
        resumed.stderr
    );
    assert_eq!(canon(&resumed.stdout, &report), base_stdout);
    assert_eq!(snapshot(&report), base_files);
}

#[test]
fn corrupted_cache_entry_is_quarantined_and_recompiled() {
    let dir = tmp_dir("cache-corruption");
    let units = write_units(&dir);
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap().to_string();
    let run = |extra: &[&str]| {
        let mut args: Vec<&str> = vec!["batch"];
        args.extend(units.iter().map(String::as_str));
        args.extend(["--cache-dir", &cache_s]);
        args.extend(extra);
        impactc(&args)
    };

    // Cold run populates the cache; the units exit 0, so the whole batch
    // does too.
    let cold = run(&[]);
    assert_eq!(cold.code, Some(0), "cold run: {}", cold.stderr);
    assert!(
        !cold.stdout.contains("; cache:"),
        "cold run emitted a cache note: {}",
        cold.stdout
    );
    let entries: Vec<PathBuf> = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "entry")).then_some(p)
        })
        .collect();
    assert_eq!(entries.len(), 3, "one cache entry per unit");

    // Warm run: byte-identical summary (cache hits record zero elapsed
    // time, and elapsed tokens are normalized either way), and the
    // metrics counters prove every unit was served from cache.
    let metrics = dir.join("warm-metrics.json");
    let warm = run(&["--metrics-out", metrics.to_str().unwrap()]);
    assert_eq!(warm.code, Some(0), "warm run: {}", warm.stderr);
    assert_eq!(
        canon(&warm.stdout, &dir),
        canon(&cold.stdout, &dir),
        "warm summary diverged from cold"
    );
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.contains("\"name\": \"cache:hits\", \"value\": 3"),
        "warm run did not hit the cache 3 times: {metrics_text}"
    );

    // Flip one payload bit in one entry. The corrupted entry must never
    // be served: the run detects it, quarantines it with an incident
    // report, recompiles, and re-stores a good entry.
    let victim = &entries[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, &bytes).unwrap();

    // The startup scan-and-validate catches the corruption before any
    // lookup: the entry is quarantined (counted in the metrics, with
    // the incident report as the durable record) and the unit
    // recompiles — never served the bad bytes.
    let metrics_rec = dir.join("recovery-metrics.json");
    let recovered = run(&["--metrics-out", metrics_rec.to_str().unwrap()]);
    assert_eq!(
        recovered.code,
        Some(0),
        "recovery run: {}",
        recovered.stderr
    );
    let metrics_rec_text = std::fs::read_to_string(&metrics_rec).unwrap();
    assert!(
        metrics_rec_text.contains("\"name\": \"cache:quarantined\", \"value\": 1"),
        "corruption was not reported: {metrics_rec_text}"
    );
    let stem = victim.file_stem().unwrap().to_str().unwrap();
    assert!(
        cache.join(format!("{stem}.quarantined")).is_file(),
        "corrupt entry was not moved aside"
    );
    let incident = cache.join(format!("{stem}.incident.json"));
    let incident_text = std::fs::read_to_string(&incident).expect("incident report written");
    assert!(
        incident_text.contains("cache-incident"),
        "incident report malformed: {incident_text}"
    );
    assert!(
        victim.is_file(),
        "recompiled result was not re-stored under the same key"
    );

    // And the re-stored entry serves clean hits again.
    let metrics2 = dir.join("rewarm-metrics.json");
    let rewarm = run(&["--metrics-out", metrics2.to_str().unwrap()]);
    assert_eq!(rewarm.code, Some(0), "re-warm run: {}", rewarm.stderr);
    assert!(
        !rewarm.stdout.contains("; cache: quarantined"),
        "re-warm run still sees corruption: {}",
        rewarm.stdout
    );
    let metrics2_text = std::fs::read_to_string(&metrics2).unwrap();
    assert!(
        metrics2_text.contains("\"name\": \"cache:hits\", \"value\": 3"),
        "re-warm run did not hit the cache 3 times: {metrics2_text}"
    );
}
