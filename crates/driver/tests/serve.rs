//! `impactc serve` lifecycle matrix: the daemon must compile over its
//! Unix socket, serve cache hits, shed overload with an immediate `busy`
//! (never queue unboundedly), isolate request-worker panics from the
//! process, and on SIGTERM finish in-flight requests before exiting 0.
//!
//! Every test drives the real binary: a spawned daemon process, client
//! requests via `impactc request`, and `kill -TERM` for the drain path.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_impactc");

struct RunResult {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

fn impactc<S: AsRef<std::ffi::OsStr>>(args: &[S]) -> RunResult {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn impactc");
    RunResult {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("impactc-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_hot_c(dir: &Path) -> String {
    let p = dir.join("hot.c");
    std::fs::write(
        &p,
        "int add(int x) { return x + 1; }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 8; i++) s += add(i); return s & 0; }",
    )
    .unwrap();
    p.to_str().unwrap().to_string()
}

/// Spawns the daemon and waits (bounded) for it to bind its socket.
fn spawn_daemon(sock: &Path, extra: &[&str]) -> Child {
    let child = Command::new(BIN)
        .arg("serve")
        .arg(sock)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve daemon");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !sock.exists() {
        assert!(
            Instant::now() < deadline,
            "daemon never bound {}",
            sock.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

fn sigterm(child: &Child) {
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill -TERM failed");
}

/// SIGTERMs the daemon, waits (bounded) for the graceful drain, and
/// returns its exit code and stdout.
fn stop_and_collect(mut child: Child) -> (Option<i32>, String) {
    sigterm(&child);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("poll daemon").is_none() {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not drain within 30s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = child.wait_with_output().expect("collect daemon output");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn request(sock: &Path, file: &str) -> RunResult {
    impactc(&["request", sock.to_str().unwrap(), file])
}

/// A request with extra client flags (e.g. `--retries 0` where a test
/// needs exactly one attempt for its accounting to be deterministic).
fn request_with(sock: &Path, file: &str, extra: &[&str]) -> RunResult {
    let mut args = vec!["request", sock.to_str().unwrap(), file];
    args.extend_from_slice(extra);
    impactc(&args)
}

/// Spawns a client request as a child process (for concurrency tests).
fn spawn_request(sock: &Path, file: &str) -> Child {
    Command::new(BIN)
        .args(["request", sock.to_str().unwrap(), file])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn request client")
}

fn wait_client(child: Child) -> RunResult {
    let out = child.wait_with_output().expect("collect client output");
    RunResult {
        code: out.status.code(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

#[test]
fn serve_compiles_caches_and_drains_cleanly() {
    let dir = tmp_dir("lifecycle");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");
    let metrics = dir.join("metrics.json");
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    // First compile is a miss, second is a hit serving the exact stored
    // report plus the hit marker.
    let r1 = request(&sock, &hot);
    assert_eq!(r1.code, Some(0), "first request: {}", r1.stderr);
    assert!(!r1.stdout.is_empty(), "first request produced no report");
    assert!(
        !r1.stdout.contains("; cache: hit"),
        "first request cannot be a cache hit: {}",
        r1.stdout
    );
    let r2 = request(&sock, &hot);
    assert_eq!(r2.code, Some(0), "second request: {}", r2.stderr);
    assert_eq!(
        r2.stdout,
        format!("{}; cache: hit\n", r1.stdout),
        "cached response must replay the stored report byte-for-byte"
    );

    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "graceful drain must exit 0: {stdout}");
    assert!(
        stdout.contains("; serve: drained after 2 requests, 2 ok, 0 errors, 0 shed"),
        "drain summary wrong: {stdout}"
    );
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written on drain");
    assert!(
        metrics_text.contains("\"name\": \"cache:hits\", \"value\": 1"),
        "metrics missed the cache hit: {metrics_text}"
    );
    assert!(
        metrics_text.contains("\"name\": \"serve:requests\", \"value\": 2"),
        "metrics missed the request count: {metrics_text}"
    );
    assert!(!sock.exists(), "drained daemon must remove its socket");
}

#[test]
fn serve_sheds_overload_with_immediate_busy() {
    let dir = tmp_dir("overload");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    // One worker that stalls on its first request + a queue of one slot:
    // request A occupies the worker, B the queue slot, so C must be shed
    // immediately rather than queued.
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--queue-depth",
            "1",
            "--fault",
            "serve:stall=1",
        ],
    );

    let a = spawn_request(&sock, &hot);
    std::thread::sleep(Duration::from_millis(500));
    let b = spawn_request(&sock, &hot);
    std::thread::sleep(Duration::from_millis(300));
    // --retries 0: one attempt keeps the shed count at exactly 1.
    let c = request_with(&sock, &hot, &["--retries", "0"]);
    assert_eq!(c.code, Some(2), "shed request must fail fast: {}", c.stdout);
    assert!(
        c.stderr.contains("server busy"),
        "shed request lacks the busy notice: {}",
        c.stderr
    );

    // The stalled and queued requests still complete.
    let a = wait_client(a);
    assert_eq!(a.code, Some(0), "stalled request failed: {}", a.stderr);
    let b = wait_client(b);
    assert_eq!(b.code, Some(0), "queued request failed: {}", b.stderr);

    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "drain after shed must exit 0: {stdout}");
    assert!(
        stdout.contains("; serve: drained after 3 requests, 2 ok, 0 errors, 1 shed"),
        "shed accounting wrong: {stdout}"
    );
}

#[test]
fn serve_isolates_request_worker_panics() {
    let dir = tmp_dir("panic");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let daemon = spawn_daemon(&sock, &["--jobs", "1", "--fault", "serve:panic=1"]);

    // The injected panic fires inside the first request's worker; the
    // client sees a structured error, not a hang or a dead daemon.
    // --retries 0: a retry would succeed past the one-shot fault and
    // hide the error this test is about.
    let r1 = request_with(&sock, &hot, &["--retries", "0"]);
    assert_eq!(
        r1.code,
        Some(2),
        "panicked request must error: {}",
        r1.stdout
    );
    assert!(
        r1.stderr.contains("request worker panicked"),
        "panic not reported to the client: {}",
        r1.stderr
    );

    // The daemon keeps serving.
    let r2 = request(&sock, &hot);
    assert_eq!(r2.code, Some(0), "daemon died after a panic: {}", r2.stderr);

    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "drain after panic must exit 0: {stdout}");
    assert!(
        stdout.contains("; serve: drained after 2 requests, 1 ok, 1 errors, 0 shed"),
        "panic accounting wrong: {stdout}"
    );
}

#[test]
fn sigterm_drains_in_flight_requests_before_exiting() {
    let dir = tmp_dir("drain");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let daemon = spawn_daemon(&sock, &["--jobs", "1", "--fault", "serve:stall=1"]);

    // Request A stalls inside the worker; SIGTERM lands while it is
    // in-flight. Graceful drain means A still gets its full response.
    let a = spawn_request(&sock, &hot);
    std::thread::sleep(Duration::from_millis(400));
    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "drain must exit 0: {stdout}");
    assert!(
        stdout.contains("; serve: drained after 1 requests, 1 ok, 0 errors, 0 shed"),
        "in-flight request lost on drain: {stdout}"
    );
    let a = wait_client(a);
    assert_eq!(
        a.code,
        Some(0),
        "in-flight request must complete across SIGTERM: {}",
        a.stderr
    );
    assert!(!a.stdout.is_empty(), "drained request produced no report");
}

#[test]
fn ping_reports_daemon_health() {
    let dir = tmp_dir("ping");
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");
    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "2", "--cache-dir", cache.to_str().unwrap()],
    );

    let p = impactc(&["request", sock.to_str().unwrap(), "--ping"]);
    assert_eq!(p.code, Some(0), "healthy daemon must ping 0: {}", p.stderr);
    assert!(p.stdout.contains("; serve: healthy"), "{}", p.stdout);
    assert!(p.stdout.contains("; workers: 2"), "{}", p.stdout);
    assert!(p.stdout.contains("; cache: writable"), "{}", p.stdout);

    // --ping takes no files.
    let bad = impactc(&["request", sock.to_str().unwrap(), "x.c", "--ping"]);
    assert_eq!(bad.code, Some(2));
    assert!(bad.stderr.contains("--ping"), "{}", bad.stderr);

    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "drain after ping must exit 0: {stdout}");
    assert!(
        stdout.contains("1 pings"),
        "ping missing from the drain summary: {stdout}"
    );
}

/// Reserves a loopback port by binding port 0 and releasing it. A small
/// race remains (something else could claim the port before the daemon
/// does), which the per-test tag keeps improbable enough for CI.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind port 0")
        .local_addr()
        .expect("local addr")
        .port()
}

#[test]
fn tcp_listener_serves_the_same_protocol_as_the_unix_socket() {
    let dir = tmp_dir("tcp");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let port = free_port();
    let tcp = format!("127.0.0.1:{port}");
    // The daemon binds TCP before the Unix socket, so the socket file
    // appearing means both listeners are live.
    let daemon = spawn_daemon(&sock, &["--jobs", "1", "--tcp", &tcp]);

    let over_unix = request(&sock, &hot);
    assert_eq!(
        over_unix.code,
        Some(0),
        "unix request: {}",
        over_unix.stderr
    );
    let over_tcp = impactc(&["request", &tcp, &hot]);
    assert_eq!(over_tcp.code, Some(0), "tcp request: {}", over_tcp.stderr);
    assert_eq!(
        over_tcp.stdout, over_unix.stdout,
        "the transports must serve byte-identical reports"
    );

    // Health checks work over TCP too.
    let p = impactc(&["request", &tcp, "--ping"]);
    assert_eq!(p.code, Some(0), "tcp ping: {}", p.stderr);
    assert!(p.stdout.contains("; serve: healthy"), "{}", p.stdout);

    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "drain with tcp must exit 0: {stdout}");
    assert!(
        stdout.contains("; serve: drained after 3 requests, 2 ok, 0 errors, 0 shed"),
        "tcp requests missing from the drain accounting: {stdout}"
    );
    assert!(!sock.exists(), "drained daemon must remove its socket");
}

#[test]
fn tcp_flag_rejects_malformed_addresses() {
    let bad = impactc(&["serve", "/tmp/unused.sock", "--tcp", "7070"]);
    assert_eq!(bad.code, Some(2));
    assert!(bad.stderr.contains("--tcp"), "{}", bad.stderr);
    let swapped = impactc(&["serve", "/tmp/unused.sock", "--tcp", "/tmp/d.sock"]);
    assert_eq!(swapped.code, Some(2));
    assert!(swapped.stderr.contains("--tcp"), "{}", swapped.stderr);
}

#[test]
fn serve_usage_and_connection_errors() {
    let dir = tmp_dir("usage");
    let hot = write_hot_c(&dir);

    let no_sock = impactc(&["serve"]);
    assert_eq!(no_sock.code, Some(2));
    assert!(no_sock.stderr.contains("socket path"), "{}", no_sock.stderr);

    let missing = dir.join("missing.sock");
    let dead = impactc(&["request", missing.to_str().unwrap(), &hot]);
    assert_eq!(dead.code, Some(2));
    assert!(dead.stderr.contains("cannot connect"), "{}", dead.stderr);

    let no_files = impactc(&["request", missing.to_str().unwrap()]);
    assert_eq!(no_files.code, Some(2));
    assert!(
        no_files.stderr.contains("at least one .c file"),
        "{}",
        no_files.stderr
    );
}

#[test]
fn stats_op_reports_the_live_registry_in_three_formats() {
    let dir = tmp_dir("stats");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let cache = dir.join("cache");
    let daemon = spawn_daemon(
        &sock,
        &["--jobs", "2", "--cache-dir", cache.to_str().unwrap()],
    );

    // Populate the registry: a miss, then a hit.
    assert_eq!(request(&sock, &hot).code, Some(0));
    assert_eq!(request(&sock, &hot).code, Some(0));

    let table = impactc(&["request", sock.to_str().unwrap(), "--stats"]);
    assert_eq!(table.code, Some(0), "stats table: {}", table.stderr);
    assert!(table.stdout.contains("; serve stats\n"), "{}", table.stdout);
    assert!(table.stdout.contains("; workers: 2\n"), "{}", table.stdout);
    assert!(table.stdout.contains("; cache: 1 live"), "{}", table.stdout);
    assert!(
        table.stdout.contains(";   serve:ok 2\n"),
        "{}",
        table.stdout
    );
    assert!(
        table.stdout.contains(";   cache:hits 1\n"),
        "{}",
        table.stdout
    );
    assert!(
        table.stdout.contains(";   hist:queue-wait-us count="),
        "queue-wait histogram missing: {}",
        table.stdout
    );
    assert!(
        table.stdout.contains(";   hist:service-us count="),
        "service-time histogram missing: {}",
        table.stdout
    );
    // The client appends its own side of the wire: breaker states.
    assert!(
        table.stdout.contains("; breaker") && table.stdout.contains(": closed\n"),
        "breaker line missing: {}",
        table.stdout
    );

    let prom = impactc(&["request", sock.to_str().unwrap(), "--stats-prom"]);
    assert_eq!(prom.code, Some(0), "stats prom: {}", prom.stderr);
    assert!(
        prom.stdout
            .contains("# TYPE impact_serve_ok counter\nimpact_serve_ok 2\n"),
        "{}",
        prom.stdout
    );
    assert!(
        prom.stdout
            .contains("# TYPE impact_hist_queue_wait_us histogram\n"),
        "{}",
        prom.stdout
    );
    assert!(
        prom.stdout.contains("_bucket{le=\"+Inf\"}"),
        "{}",
        prom.stdout
    );

    let json = impactc(&["request", sock.to_str().unwrap(), "--stats-json"]);
    assert_eq!(json.code, Some(0), "stats json: {}", json.stderr);
    assert!(json.stdout.contains("\"version\": 1"), "{}", json.stdout);
    assert!(
        json.stdout.contains("\"kind\": \"impact-serve-stats\""),
        "{}",
        json.stdout
    );
    assert!(json.stdout.contains("\"buckets_us\": ["), "{}", json.stdout);

    // Stats snapshots take no files, like --ping.
    let bad = impactc(&["request", sock.to_str().unwrap(), "x.c", "--stats"]);
    assert_eq!(bad.code, Some(2));
    assert!(bad.stderr.contains("--stats"), "{}", bad.stderr);

    let (code, stdout) = stop_and_collect(daemon);
    assert_eq!(code, Some(0), "drain after stats must exit 0: {stdout}");
    assert!(
        stdout.contains("3 stats"),
        "stats ops missing from the drain summary: {stdout}"
    );
}

/// Minimal parse of one Chrome trace event object: (name, ts, dur,
/// trace-arg), enough to check nesting without a JSON dependency.
fn parse_trace_events(trace_json: &str) -> Vec<(String, u64, u64, String)> {
    let mut events = Vec::new();
    for chunk in trace_json.split("{\"name\":\"").skip(1) {
        let name = chunk.split('"').next().unwrap().to_string();
        let field = |key: &str| {
            chunk
                .split(key)
                .nth(1)
                .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next())
                .and_then(|v| v.parse::<u64>().ok())
        };
        let (Some(ts), Some(dur)) = (field("\"ts\":"), field("\"dur\":")) else {
            continue;
        };
        let trace = chunk
            .split("\"trace\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or("")
            .to_string();
        events.push((name, ts, dur, trace));
    }
    events
}

#[test]
fn trace_out_stitches_daemon_spans_under_the_client_span() {
    let dir = tmp_dir("stitch");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let trace_path = dir.join("trace.json");
    let daemon = spawn_daemon(&sock, &["--jobs", "1"]);

    let r = request_with(&sock, &hot, &["--trace-out", trace_path.to_str().unwrap()]);
    assert_eq!(r.code, Some(0), "traced request: {}", r.stderr);
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));

    let trace_json = std::fs::read_to_string(&trace_path).expect("trace written");
    let events = parse_trace_events(&trace_json);
    let client = events
        .iter()
        .find(|(name, ..)| name == "client:request")
        .expect("client:request span missing from the stitched trace");
    let trace_id = &client.3;
    assert_eq!(trace_id.len(), 16, "client span untagged: {trace_json}");

    // Every daemon-side span with this trace id nests inside the client
    // span's [ts, ts+dur] window — that is what "stitched" means.
    let daemon_spans: Vec<_> = events
        .iter()
        .filter(|(name, _, _, trace)| trace == trace_id && name != "client:request")
        .collect();
    assert!(
        daemon_spans
            .iter()
            .any(|(name, ..)| name == "serve:request"),
        "daemon spans missing from the stitched trace: {trace_json}"
    );
    assert!(
        daemon_spans
            .iter()
            .any(|(name, ..)| name == "serve:queue-wait"),
        "queue-wait span missing: {trace_json}"
    );
    let (cts, cdur) = (client.1, client.2);
    for (name, ts, dur, _) in &daemon_spans {
        assert!(
            *ts >= cts && ts + dur <= cts + cdur,
            "daemon span `{name}` [{ts}, {}] escapes the client span [{cts}, {}]: {trace_json}",
            ts + dur,
            cts + cdur
        );
    }
}

#[test]
fn flight_recorder_final_ring_is_written_at_drain() {
    let dir = tmp_dir("flight");
    let hot = write_hot_c(&dir);
    let sock = dir.join("d.sock");
    let reports = dir.join("reports");
    let daemon = spawn_daemon(
        &sock,
        &[
            "--jobs",
            "1",
            "--flight-recorder",
            "8",
            "--report-dir",
            reports.to_str().unwrap(),
        ],
    );

    assert_eq!(request(&sock, &hot).code, Some(0));
    let (code, _) = stop_and_collect(daemon);
    assert_eq!(code, Some(0));

    let final_ring = reports.join("flight-final.json");
    let text = std::fs::read_to_string(&final_ring).expect("flight-final.json written at drain");
    assert!(text.contains("\"kind\": \"serve-flight-final\""), "{text}");
    assert!(text.contains("\"reason\": \"drain\""), "{text}");
    assert!(
        text.contains("\"kind\": \"accept\""),
        "ring lost the accept event: {text}"
    );
    assert!(
        text.contains("\"kind\": \"request\""),
        "ring lost the request event: {text}"
    );
}
