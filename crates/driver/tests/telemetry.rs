//! End-to-end telemetry tests: the `--explain` / `--decisions-out`
//! golden agreement contract, run-to-run determinism of the exported
//! JSON (modulo wall-clock fields), exporter file shapes, the
//! zero-artifact guarantee of a flag-free run, and the bench suite's
//! `BENCH_inline.json` report.

use impact_driver::{execute, Options};

fn strs(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// A program exercising all four call-site classes of the paper's
/// taxonomy: `__fgetc` is external, `p(i)` is a pointer call, `rare` is
/// unsafe (below the weight threshold), `hot` is safe and expanded.
const ALL_CLASSES: &str = "extern int __fgetc(int fd);\n\
     int hot(int x) { return x + 1; }\n\
     int rare(int x) { return x - 1; }\n\
     int main() { int (*p)(int); int i; int s; p = hot; s = __fgetc(0) + rare(1);\n\
       for (i = 0; i < 40; i++) s += hot(i) + p(i);\n\
       return s & 0xff; }\n";

/// A fresh temp dir holding the all-classes fixture.
fn fixture_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("impactc-telemetry-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("all_classes.c"), ALL_CLASSES).unwrap();
    dir
}

/// Zeroes every `"total_us": N` so metrics snapshots from two runs can
/// be compared; everything else in the document is deterministic.
fn strip_total_us(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("\"total_us\": ") {
        let tail = &rest[i + "\"total_us\": ".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..i]);
        out.push_str("\"total_us\": 0");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Pulls `"key": value` (unquoted or quoted scalar up to the next comma
/// or brace) out of one JSON object line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key} in {line}"));
    rest[..end].trim_matches('"')
}

#[test]
fn explain_and_decisions_out_agree_record_for_record() {
    let dir = fixture_dir("golden");
    let src = dir.join("all_classes.c");
    let djson = dir.join("decisions.json");
    let o = Options::parse(&strs(&[
        "inline",
        src.to_str().unwrap(),
        "--explain",
        "--decisions-out",
        djson.to_str().unwrap(),
    ]))
    .unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, 0, "{out}");

    let json = std::fs::read_to_string(&djson).unwrap();
    assert!(
        json.contains("\"kind\": \"impact-inline-decisions\""),
        "{json}"
    );
    assert!(json.contains("\"version\": 1"), "{json}");
    let records: Vec<&str> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"site\":"))
        .collect();
    assert!(!records.is_empty(), "{json}");

    // All four classes of the paper's taxonomy appear on this fixture.
    for class in ["external", "pointer", "unsafe", "safe"] {
        assert!(
            records.iter().any(|r| field(r, "class") == class),
            "missing class {class} in {json}"
        );
    }

    // The table header's totals match the JSON header's.
    let header = out
        .lines()
        .find(|l| l.starts_with("; inline decisions:"))
        .unwrap_or_else(|| panic!("no decisions header in {out}"));
    assert!(
        header.contains(&format!("{} sites", records.len())),
        "{header} vs {} JSON records",
        records.len()
    );
    let expanded = records
        .iter()
        .filter(|r| field(r, "accepted") == "true")
        .count();
    assert!(header.contains(&format!("{expanded} expanded")), "{header}");

    // Table data rows: `;  <site>  <class>  ... <reason>` — one per JSON
    // record, same site order, same class, same reason.
    let rows: Vec<&str> = out
        .lines()
        .filter(|l| {
            l.starts_with(";  ")
                && l.split_whitespace()
                    .nth(1)
                    .is_some_and(|t| t.chars().all(|c| c.is_ascii_digit()))
        })
        .collect();
    assert_eq!(rows.len(), records.len(), "{out}");
    for (row, rec) in rows.iter().zip(&records) {
        let mut toks = row.split_whitespace();
        assert_eq!(toks.next(), Some(";"));
        assert_eq!(toks.next(), Some(field(rec, "site")), "{row} vs {rec}");
        assert_eq!(toks.next(), Some(field(rec, "class")), "{row} vs {rec}");
        let reason = field(rec, "reason");
        assert!(row.trim_end().ends_with(reason), "{row} vs reason {reason}");
    }
}

#[test]
fn identical_runs_export_identical_json_modulo_wall_clock() {
    let dir = fixture_dir("determinism");
    let src = dir.join("all_classes.c");
    let run = |tag: &str| {
        let d = dir.join(format!("{tag}-decisions.json"));
        let m = dir.join(format!("{tag}-metrics.json"));
        let t = dir.join(format!("{tag}-trace.json"));
        let o = Options::parse(&strs(&[
            "inline",
            src.to_str().unwrap(),
            "--decisions-out",
            d.to_str().unwrap(),
            "--metrics-out",
            m.to_str().unwrap(),
            "--trace-out",
            t.to_str().unwrap(),
        ]))
        .unwrap();
        let (code, out) = execute(&o).unwrap();
        assert_eq!(code, 0, "{out}");
        (
            std::fs::read_to_string(d).unwrap(),
            std::fs::read_to_string(m).unwrap(),
            std::fs::read_to_string(t).unwrap(),
        )
    };
    let (da, ma, ta) = run("a");
    let (db, mb, tb) = run("b");
    // Decisions carry no clock data at all: byte-identical.
    assert_eq!(da, db);
    // Metrics are identical once the `total_us` timings are stripped.
    assert_eq!(strip_total_us(&ma), strip_total_us(&mb));
    // Traces are Chrome trace-event documents with the same event names.
    for t in [&ta, &tb] {
        assert!(t.starts_with("{\"displayTimeUnit\""), "{t}");
        assert!(t.ends_with("]}\n"), "{t}");
        for span in ["cfront:parse", "il:verify", "inline:expand", "vm:run"] {
            assert!(t.contains(span), "trace missing {span}: {t}");
        }
    }
    // Metrics carry the pipeline's counters.
    for counter in ["inline:sites:safe", "vm:il_executed", "cfront:functions"] {
        assert!(ma.contains(counter), "metrics missing {counter}: {ma}");
    }
    assert!(ma.contains("\"kind\": \"impact-metrics\""), "{ma}");
}

#[test]
fn flag_free_run_writes_no_telemetry_artifacts() {
    let dir = fixture_dir("silent");
    let src = dir.join("all_classes.c");
    let o = Options::parse(&strs(&["inline", src.to_str().unwrap()])).unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, 0, "{out}");
    assert!(!out.contains("inline decisions:"), "{out}");
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        entries,
        vec!["all_classes.c"],
        "unexpected artifacts: {entries:?}"
    );
}

#[test]
fn telemetry_flags_are_scoped_to_their_commands() {
    let dir = fixture_dir("scope");
    let src = dir.join("all_classes.c");
    let o = Options::parse(&strs(&["compile", src.to_str().unwrap(), "--explain"])).unwrap();
    let err = execute(&o).unwrap_err();
    assert!(err.contains("only apply to `inline`"), "{err}");
    let o = Options::parse(&strs(&[
        "compile",
        src.to_str().unwrap(),
        "--trace-out",
        dir.join("t.json").to_str().unwrap(),
    ]))
    .unwrap();
    let err = execute(&o).unwrap_err();
    assert!(err.contains("pipeline commands"), "{err}");
}

#[test]
fn batch_summary_reports_per_unit_time_and_retries() {
    let dir = fixture_dir("batch");
    let metrics = dir.join("metrics.json");
    let o = Options::parse(&strs(&[
        "batch",
        dir.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]))
    .unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, 0, "{out}");
    let header = out
        .lines()
        .find(|l| l.starts_with("unit"))
        .unwrap_or_else(|| panic!("no table header in {out}"));
    for col in ["attempts", "retries", "time", "signature"] {
        assert!(header.contains(col), "{header}");
    }
    let row = out
        .lines()
        .find(|l| l.contains("all_classes.c"))
        .unwrap_or_else(|| panic!("no unit row in {out}"));
    assert!(
        row.split_whitespace()
            .any(|t| t.ends_with("ms") && t.trim_end_matches("ms").parse::<u64>().is_ok()),
        "no time column in {row}"
    );
    assert!(out.contains("quarantined in "), "{out}");
    let m = std::fs::read_to_string(&metrics).unwrap();
    for counter in ["batch:units", "batch:ok", "vm:il_executed"] {
        assert!(m.contains(counter), "metrics missing {counter}: {m}");
    }
}

#[test]
fn bench_suite_writes_paper_style_report() {
    let dir = fixture_dir("bench");
    let o = Options::parse(&strs(&["bench", "--report-dir", dir.to_str().unwrap()])).unwrap();
    let (code, out) = execute(&o).unwrap();
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("; bench suite:"), "{out}");
    assert!(out.contains("; wrote "), "{out}");
    let json = std::fs::read_to_string(dir.join("BENCH_inline.json")).unwrap();
    assert!(json.contains("\"kind\": \"impact-bench-inline\""), "{json}");
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"static_sites\""), "{json}");
    assert!(json.contains("\"dynamic_calls\""), "{json}");
    assert!(
        json.lines()
            .any(|l| l.trim_start().starts_with("{\"name\":")),
        "no benchmark entries: {json}"
    );
    // The staging scratch dir never leaks a temp file.
    let staging = dir.join(".staging");
    if staging.is_dir() {
        assert_eq!(std::fs::read_dir(&staging).unwrap().count(), 0);
    }
}
