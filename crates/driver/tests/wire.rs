//! Property tests for the `impact-serve` wire protocol.
//!
//! Two guarantees matter to the fleet client's retry taxonomy:
//!
//! 1. **Round-trip fidelity** — any request or response the writers can
//!    produce parses back to exactly the same value, so a retried
//!    exchange can never be *mis*parsed into a different job. Since v4
//!    that includes the trace id on every frame and the span/counter
//!    summary riding on responses (arbitrary span names exercise the
//!    length-prefixed record framing).
//! 2. **Torn prefixes are retryable** — cutting the wire at *any* byte
//!    boundary must surface as an error the client classifies as
//!    retryable (it mentions `truncated`), never as a panic, a hang, or
//!    a successful parse of half a frame. This is what makes
//!    `net:torn-write`/`net:partial-frame` chaos survivable: the client
//!    sees "truncated", retries, and the daemon's idempotency table
//!    absorbs the duplicate.

use std::io::Cursor;

use impact_cfront::Source;
use impact_driver::serve::{
    read_request, read_response, write_ping, write_request, write_response, write_stats, Request,
    Response, StatsFormat,
};
use proptest::prelude::*;

fn arb_source() -> impl Strategy<Value = Source> {
    // Names and texts exercise the length-prefixed framing, including
    // embedded newlines and spaces (framing never scans for them) and
    // multi-byte UTF-8.
    (any::<String>(), any::<String>()).prop_map(|(name, text)| Source::new(name, text))
}

fn arb_sources() -> impl Strategy<Value = Vec<Source>> {
    proptest::collection::vec(arb_source(), 1..5)
}

fn arb_spans() -> impl Strategy<Value = Vec<impact_obs::SpanEvent>> {
    proptest::collection::vec(
        (any::<String>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(name, start_us, dur_us, trace)| impact_obs::SpanEvent {
                name,
                start_us,
                dur_us,
                trace,
            },
        ),
        0..4,
    )
}

fn arb_counters() -> impl Strategy<Value = Vec<(String, u64)>> {
    proptest::collection::vec((any::<String>(), any::<u64>()), 0..4)
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        prop_oneof![Just("ok"), Just("error"), Just("busy")],
        0i32..=255,
        any::<bool>(),
        any::<u64>(),
        any::<String>(),
        arb_spans(),
        arb_counters(),
    )
        .prop_map(
            |(status, exit, cached, retry_after_ms, payload, spans, counters)| Response {
                status: status.to_string(),
                exit,
                cached,
                retry_after_ms,
                payload,
                spans,
                counters,
            },
        )
}

proptest! {
    #[test]
    fn requests_round_trip(sources in arb_sources(), id in any::<u64>(), trace in any::<u64>()) {
        let mut wire = Vec::new();
        write_request(&mut wire, &sources, id, trace).unwrap();
        let back = read_request(&mut Cursor::new(wire)).unwrap();
        prop_assert_eq!(back, Request::Compile { sources, id, trace });
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let back = read_response(&mut Cursor::new(wire)).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn every_torn_request_prefix_is_a_retryable_truncation(
        sources in arb_sources(),
        id in any::<u64>(),
        trace in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        write_request(&mut wire, &sources, id, trace).unwrap();
        let cut = cut % wire.len(); // strict prefix: 0..len
        let err = read_request(&mut Cursor::new(&wire[..cut])).unwrap_err();
        prop_assert!(
            err.contains("truncated"),
            "prefix {cut}/{} gave a non-retryable error: {err}",
            wire.len()
        );
    }

    #[test]
    fn every_torn_response_prefix_is_a_retryable_truncation(
        resp in arb_response(),
        cut in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let cut = cut % wire.len();
        let err = read_response(&mut Cursor::new(&wire[..cut])).unwrap_err();
        prop_assert!(
            err.contains("truncated"),
            "prefix {cut}/{} gave a non-retryable error: {err}",
            wire.len()
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parsers(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_request(&mut Cursor::new(bytes.clone()));
        let _ = read_response(&mut Cursor::new(bytes));
    }
}

#[test]
fn torn_ping_prefixes_are_retryable_truncations() {
    let mut wire = Vec::new();
    write_ping(&mut wire, 0xdead_beef).unwrap();
    for cut in 0..wire.len() {
        let err = read_request(&mut Cursor::new(&wire[..cut])).unwrap_err();
        assert!(err.contains("truncated"), "prefix {cut}: {err}");
    }
}

#[test]
fn stats_requests_round_trip_every_format() {
    for format in [StatsFormat::Table, StatsFormat::Prom, StatsFormat::Json] {
        let mut wire = Vec::new();
        write_stats(&mut wire, format).unwrap();
        let back = read_request(&mut Cursor::new(wire.clone())).unwrap();
        assert_eq!(back, Request::Stats { format });
        for cut in 0..wire.len() {
            let err = read_request(&mut Cursor::new(&wire[..cut])).unwrap_err();
            assert!(err.contains("truncated"), "prefix {cut}: {err}");
        }
    }
}
