//! Seeded generation of well-formed, trap-free C programs that populate
//! every row of the paper's call-site classification.
//!
//! Every generated program contains, by construction:
//!
//! * **external** sites — calls to the `__fputc` builtin;
//! * **pointer** sites — calls through a function-pointer variable whose
//!   value is (re)assigned from address-taken leaf functions;
//! * **unsafe** sites — a cold helper called exactly once (below the
//!   paper's weight threshold) and, probabilistically, direct
//!   self-recursion and a big-frame function on a recursive path (the
//!   control-stack hazard of §2.3.2);
//! * **safe** sites — leaf and mid-level helpers called from
//!   weight-skewed loops, with multi-call-site fan-out.
//!
//! Programs are trap-free by construction: divisors are masked to be
//! nonzero, shift amounts are literal and small, recursion depths are
//! bounded, and array indices are masked to the array size. Generation is
//! a pure function of the seed, so a corpus is reproducible everywhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Generates one C program from `seed`. Deterministic: equal seeds yield
/// byte-identical programs.
pub fn generate(seed: u64) -> String {
    Gen {
        rng: StdRng::seed_from_u64(seed),
    }
    .program()
}

struct Gen {
    rng: StdRng,
}

impl Gen {
    /// A trap-free integer expression over the parameters `a` and `b`.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return match self.rng.gen_range(0..4) {
                0 => "a".to_string(),
                1 => "b".to_string(),
                _ => self.rng.gen_range(1..64).to_string(),
            };
        }
        let l = self.expr(depth - 1);
        let r = self.expr(depth - 1);
        match self.rng.gen_range(0..10) {
            0 => format!("({l} + {r})"),
            1 => format!("({l} - {r})"),
            2 => format!("(({l} * {r}) & 0xffff)"),
            3 => format!("({l} ^ {r})"),
            4 => format!("({l} | {r})"),
            5 => format!("({l} & {r})"),
            6 => {
                let k = self.rng.gen_range(1..5);
                format!("(({l} & 0xff) << {k})")
            }
            7 => {
                let k = self.rng.gen_range(1..5);
                format!("(({l} & 0xffff) >> {k})")
            }
            // Masked divisor: always in 1..=8, so never a division trap.
            8 => format!("({l} / (({r} & 7) + 1))"),
            _ => {
                let t = self.expr(depth - 1);
                format!("({l} < {r} ? {t} : {r})")
            }
        }
    }

    fn program(&mut self) -> String {
        let n_leaf = self.rng.gen_range(2..5usize);
        let n_mid = self.rng.gen_range(1..4usize);
        let with_srec = self.rng.gen_bool(0.7);
        let with_mutual = self.rng.gen_bool(0.7);
        let with_bigframe = self.rng.gen_bool(0.35);
        let with_hot_extern = self.rng.gen_bool(0.5);
        let fp_alternates = self.rng.gen_bool(0.5);
        let loop_n = self.rng.gen_range(24..81);

        let mut s = String::new();
        let w = &mut s;
        let _ = writeln!(w, "extern int __fputc(int c, int fd);");
        let _ = writeln!(w, "int gv0;");
        let _ = writeln!(w, "int garr[8];");

        // Leaves: pure arithmetic, the hot inlining fodder.
        for i in 0..n_leaf {
            let body = self.expr(3);
            let _ = writeln!(w, "int leaf{i}(int a, int b) {{ return {body}; }}");
        }

        // Mids: multi-call-site fan-out over the leaves.
        for i in 0..n_mid {
            let fan = self.rng.gen_range(2..4usize);
            let mut terms = Vec::new();
            for _ in 0..fan {
                let callee = self.rng.gen_range(0..n_leaf);
                let c = self.rng.gen_range(1..32);
                terms.push(format!("leaf{callee}((a + {c}), b)"));
            }
            let _ = writeln!(
                w,
                "int mid{i}(int a, int b) {{ int t; t = ({}) & 0xffffff; return t; }}",
                terms.join(" ^ ")
            );
        }

        // A cold helper, called exactly once from main: its arc weight of
        // 1 sits far below the paper's threshold of 10.
        {
            let callee = self.rng.gen_range(0..n_leaf);
            let c = self.rng.gen_range(1..64);
            let _ = writeln!(
                w,
                "int cold0(int a, int b) {{ return (leaf{callee}((a + b), 3) + {c}) & 0xffff; }}"
            );
        }

        if with_srec {
            let _ = writeln!(
                w,
                "int srec(int n) {{ if (n <= 1) return 1; return (n * srec(n - 1)) & 0x7fff; }}"
            );
        }
        if with_mutual {
            let c1 = self.rng.gen_range(1..16);
            let c2 = self.rng.gen_range(1..16);
            let _ = writeln!(w, "int mr_b(int n);");
            let _ = writeln!(
                w,
                "int mr_a(int n) {{ if (n <= 0) return 0; return (mr_b(n - 1) ^ {c1}) & 0x7fff; }}"
            );
            let _ = writeln!(
                w,
                "int mr_b(int n) {{ if (n <= 0) return 1; return (mr_a(n - 1) + {c2}) & 0x7fff; }}"
            );
        }
        if with_bigframe {
            // Frame > the default 4096-byte stack bound, on a recursive
            // path: the RecursiveStack hazard row.
            let frame = self.rng.gen_range(5000..8000);
            let last = frame - 1;
            let _ = writeln!(
                w,
                "int bigleaf(int n) {{ char big[{frame}]; big[0] = n; big[{last}] = 3; \
                 return big[0] + big[{last}]; }}"
            );
            let _ = writeln!(
                w,
                "int brec(int n) {{ if (n <= 0) return 0; return (bigleaf(n) + brec(n - 1)) & 0xffff; }}"
            );
        }

        // main: the weight-skewed hot loop plus one-shot cold calls.
        let _ = writeln!(w, "int main() {{");
        let _ = writeln!(w, "  int i; int s; int (*fp)(int, int);");
        let fp0 = self.rng.gen_range(0..n_leaf);
        let fp1 = self.rng.gen_range(0..n_leaf);
        let _ = writeln!(w, "  s = 0;");
        let _ = writeln!(w, "  fp = leaf{fp0};");
        let _ = writeln!(w, "  for (i = 0; i < {loop_n}; i++) {{");
        for m in 0..n_mid {
            let c = self.rng.gen_range(1..32);
            let _ = writeln!(w, "    s = (s + mid{m}(i, (i + {c}))) & 0xffffff;");
        }
        if fp_alternates {
            let _ = writeln!(
                w,
                "    if ((i & 1) == 0) fp = leaf{fp1}; else fp = leaf{fp0};"
            );
        }
        let c = self.rng.gen_range(1..32);
        let _ = writeln!(w, "    s = (s ^ fp(i, {c})) & 0xffffff;");
        let _ = writeln!(w, "    gv0 = (gv0 + i) & 0xff;");
        let lz = self.rng.gen_range(0..n_leaf);
        let _ = writeln!(
            w,
            "    garr[i & 7] = (garr[i & 7] + leaf{lz}(i, gv0)) & 0xffff;"
        );
        if with_hot_extern {
            let _ = writeln!(w, "    if ((i & 15) == 0) __fputc('.', 1);");
        }
        let _ = writeln!(w, "  }}");
        if with_srec {
            let d = self.rng.gen_range(6..13);
            let _ = writeln!(w, "  s = (s + srec({d})) & 0xffffff;");
        }
        if with_mutual {
            let d = self.rng.gen_range(24..41);
            let _ = writeln!(w, "  s = (s + mr_a({d})) & 0xffffff;");
        }
        if with_bigframe {
            let d = self.rng.gen_range(4..9);
            let _ = writeln!(w, "  s = (s + brec({d})) & 0xffffff;");
        }
        let c = self.rng.gen_range(1..64);
        let _ = writeln!(w, "  s = (s + cold0(3, {c})) & 0xffffff;");
        let _ = writeln!(w, "  for (i = 0; i < 8; i++) s = (s + garr[i]) & 0xffffff;");
        let _ = writeln!(w, "  __fputc('A' + s % 26, 1);");
        let _ = writeln!(w, "  __fputc(10, 1);");
        let _ = writeln!(w, "  return s & 0x7f;");
        let _ = writeln!(w, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(generate(seed), generate(seed));
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_programs_compile_verify_and_run() {
        for seed in 0..25u64 {
            let src = generate(seed);
            let module = compile(&[Source::new("fuzz.c", &src)])
                .unwrap_or_else(|e| panic!("seed {seed} failed to compile: {e:?}\n{src}"));
            impact_il::verify_module(&module)
                .unwrap_or_else(|e| panic!("seed {seed} failed to verify: {e:?}\n{src}"));
            let out = run(&module, vec![], vec![], &VmConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed} trapped: {e}\n{src}"));
            assert!(
                !out.stdout.is_empty(),
                "seed {seed} produced no observable output"
            );
        }
    }

    #[test]
    fn every_program_contains_all_classification_ingredients() {
        for seed in 0..10u64 {
            let src = generate(seed);
            assert!(src.contains("__fputc"), "external: {src}");
            assert!(src.contains("(*fp)"), "pointer: {src}");
            assert!(src.contains("cold0"), "unsafe (cold): {src}");
            assert!(src.contains("mid0"), "safe fan-out: {src}");
        }
    }
}
