//! # impact-fuzz — differential oracle fuzzing for the inline expander
//!
//! A seeded, deterministic fuzzer for the whole compilation pipeline:
//!
//! * [`generator`] produces well-formed, trap-free C programs that
//!   populate every row of the paper's call-site classification —
//!   external calls, function-pointer calls, unsafe sites (cold arcs,
//!   recursion, big frames on recursive paths), and hot safe sites with
//!   multi-call-site fan-out under weight-skewed loops.
//! * [`oracle`] runs each program under a lattice of configurations
//!   (no-inline baseline; inlining with default/tight budgets, a tight
//!   stack bound, an adversarial linear order; optimizer on/off) and
//!   checks behavioral equivalence plus four metamorphic profile
//!   invariants (flow conservation, exact size accounting, linear-order
//!   compliance, and call-overhead-bounded instruction attribution).
//! * [`run_campaign`] drives a whole corpus from one campaign seed and
//!   aggregates findings; the `impactc fuzz` subcommand wraps it with
//!   repro-file shrinking and JSON reports.
//!
//! Everything is a pure function of the campaign seed: the same seed and
//! budget reproduce the same corpus, byte for byte, on any machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod oracle;

pub use generator::generate;
pub use oracle::{
    check_source, config_names, Divergence, DivergenceKind, OracleConfig, OracleReport,
};

use impact_inline::ClassTotals;

/// Derives the per-program seed for program `index` of a campaign — a
/// splitmix64 step, so neighboring indices yield decorrelated streams.
pub fn program_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z =
        campaign_seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Knobs of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign seed: fixes the entire corpus.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub budget: u64,
    /// Arc-weight threshold handed to the oracle's inline configs.
    pub weight_threshold: u64,
    /// Fault specs armed (freshly) for every configuration of every
    /// program — the positive control that proves the oracle alarms.
    pub fault_specs: Vec<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            budget: 100,
            weight_threshold: 10,
            fault_specs: Vec::new(),
        }
    }
}

/// One diverging program, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Position in the campaign (0-based).
    pub index: u64,
    /// The per-program generator seed ([`program_seed`]).
    pub program_seed: u64,
    /// The generated C source.
    pub source: String,
    /// Every oracle check that failed on it.
    pub divergences: Vec<Divergence>,
}

/// Aggregate outcome of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignOutcome {
    /// Programs checked.
    pub programs: u64,
    /// Programs skipped because the baseline itself trapped (a generator
    /// bug if ever nonzero — the generator is trap-free by construction).
    pub skipped: u64,
    /// Summed static classification over the corpus (Table 2 shape).
    pub static_classes: ClassTotals,
    /// Summed dynamic classification over the corpus (Table 3 shape).
    pub dynamic_classes: ClassTotals,
    /// The diverging programs.
    pub findings: Vec<Finding>,
}

/// Runs a whole campaign: generate, check, aggregate.
///
/// `progress` is called after each program with `(index, divergences so
/// far)` — the driver uses it for a heartbeat line; pass a no-op closure
/// otherwise.
pub fn run_campaign(
    config: &CampaignConfig,
    mut progress: impl FnMut(u64, usize),
) -> CampaignOutcome {
    let oc = OracleConfig {
        weight_threshold: config.weight_threshold,
        fault_specs: config.fault_specs.clone(),
    };
    let mut out = CampaignOutcome::default();
    for index in 0..config.budget {
        let pseed = program_seed(config.seed, index);
        let source = generate(pseed);
        let report = check_source(&source, &oc);
        out.programs += 1;
        if report.skipped {
            out.skipped += 1;
        }
        add_totals(&mut out.static_classes, &report.static_classes);
        add_totals(&mut out.dynamic_classes, &report.dynamic_classes);
        if !report.divergences.is_empty() {
            out.findings.push(Finding {
                index,
                program_seed: pseed,
                source,
                divergences: report.divergences,
            });
        }
        progress(index, out.findings.len());
    }
    out
}

fn add_totals(acc: &mut ClassTotals, inc: &ClassTotals) {
    acc.external += inc.external;
    acc.pointer += inc.pointer;
    acc.r#unsafe += inc.r#unsafe;
    acc.safe += inc.safe;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_seeds_are_decorrelated_and_deterministic() {
        let a: Vec<u64> = (0..16).map(|i| program_seed(42, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| program_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "collisions in {a:?}");
        assert_ne!(program_seed(42, 0), program_seed(43, 0));
    }

    #[test]
    fn small_campaign_is_clean_and_covers_every_class() {
        let config = CampaignConfig {
            budget: 6,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&config, |_, _| {});
        assert_eq!(out.programs, 6);
        assert_eq!(out.skipped, 0);
        assert!(
            out.findings.is_empty(),
            "clean campaign diverged: {:?}",
            out.findings
                .iter()
                .flat_map(|f| &f.divergences)
                .collect::<Vec<_>>()
        );
        assert!(out.static_classes.external > 0, "{:?}", out.static_classes);
        assert!(out.static_classes.pointer > 0, "{:?}", out.static_classes);
        assert!(out.static_classes.r#unsafe > 0, "{:?}", out.static_classes);
        assert!(out.static_classes.safe > 0, "{:?}", out.static_classes);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let config = CampaignConfig {
            budget: 3,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&config, |_, _| {});
        let b = run_campaign(&config, |_, _| {});
        assert_eq!(a.static_classes, b.static_classes);
        assert_eq!(a.dynamic_classes, b.dynamic_classes);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn injected_fault_produces_findings() {
        let config = CampaignConfig {
            budget: 2,
            fault_specs: vec!["expand:verify".to_string()],
            ..CampaignConfig::default()
        };
        let out = run_campaign(&config, |_, _| {});
        assert!(
            !out.findings.is_empty(),
            "an armed expand fault must surface as a finding"
        );
        let f = &out.findings[0];
        assert!(f
            .divergences
            .iter()
            .any(|d| d.kind == DivergenceKind::Incident));
        assert!(!f.source.is_empty());
    }
}
