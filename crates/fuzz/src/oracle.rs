//! The differential oracle: one generated program, a lattice of compiler
//! configurations, and a set of metamorphic invariants.
//!
//! Every program is executed on the VM under a no-inline **baseline** and
//! a lattice of inline/optimize configurations (default and tight size
//! budgets, a tight stack bound, an adversarial linear order, opt passes
//! on and off). Observable behavior — stdout bytes and exit code — must
//! be identical everywhere. On top of behavioral equivalence, four
//! metamorphic invariants are checked:
//!
//! * **I1 flow conservation** — every function's recorded entry count
//!   equals the sum of its incoming recorded arc weights (plus the OS
//!   entry of `main`), on the baseline profile *and* on every re-profile
//!   of an inlined module ([`Profile::flow_residuals`]).
//! * **I2 size accounting** — after a rollback-free expansion, the
//!   measured module size equals the plan's exact prediction
//!   (`InlineReport::predicted_size` vs `InlineReport::size_expanded`).
//! * **I3 linear order** — every physically expanded arc points from an
//!   earlier (callee) to a strictly later (caller) position in the
//!   linearization (§3.3's constraint).
//! * **I4 instruction attribution** — re-profiling after inlining
//!   conserves total dynamic IL attribution modulo call/return overhead:
//!   each eliminated dynamic call may add at most `max_params + 1`
//!   instructions (parameter-buffering movs plus a return-value mov) and
//!   can never *remove* work when the optimizer is off.
//!
//! Orthogonal to the lattice, every execution is also replayed on the
//! VM's second engine (the tree-walking interpreter; the lattice runs on
//! the default register-bytecode engine) and any disagreement — behavior,
//! trap, or profile record — is an `engine` divergence.
//!
//! Any injected fault that makes the recovery layer roll an arc back
//! surfaces here as an `incident` divergence (and usually a size-
//! accounting mismatch too) — the fuzzer's designed-in positive control.

use std::fmt;

use impact_cfront::{compile, Source};
use impact_il::verify_module;
use impact_inline::{inline_module, positions_of, ClassTotals, InlineConfig, Linearization};
use impact_opt::optimize_module_isolated;
use impact_vm::{profile_runs, Engine, FaultPlan, Profile, RunOutcome, VmConfig, VmError};

/// Oracle-wide knobs.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Arc-weight threshold threaded into every inline configuration of
    /// the lattice (except the deliberately aggressive point).
    pub weight_threshold: u64,
    /// `--fault` specs armed freshly for every configuration of every
    /// program (one-shot counters never leak across runs).
    pub fault_specs: Vec<String>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            weight_threshold: 10,
            fault_specs: Vec::new(),
        }
    }
}

/// What kind of oracle check failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DivergenceKind {
    /// The generated program did not compile (a generator/front-end bug).
    Compile,
    /// A module failed IL verification.
    Verify,
    /// Observable behavior (stdout, exit code) differed from baseline.
    Behavior,
    /// The recovery layer rolled a transformation back.
    Incident,
    /// I2: measured post-expansion size != the plan's exact prediction.
    SizeAccounting,
    /// I3: an expanded arc violates the linear order.
    LinearOrder,
    /// I1: a profile failed flow conservation.
    FlowConservation,
    /// I4: dynamic IL attribution outside the call-overhead envelope.
    Attribution,
    /// The two execution engines disagreed — on behavior, a trap, or a
    /// profile record — for the same module at the same lattice point.
    Engine,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::Compile => "compile",
            DivergenceKind::Verify => "verify",
            DivergenceKind::Behavior => "behavior",
            DivergenceKind::Incident => "incident",
            DivergenceKind::SizeAccounting => "size-accounting",
            DivergenceKind::LinearOrder => "linear-order",
            DivergenceKind::FlowConservation => "flow-conservation",
            DivergenceKind::Attribution => "attribution",
            DivergenceKind::Engine => "engine",
        };
        f.write_str(s)
    }
}

/// One oracle failure, attributed to the configuration that produced it.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The failed check.
    pub kind: DivergenceKind,
    /// The lattice point (`baseline`, `inline-default`, ...).
    pub config: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Divergence {
    /// A stable signature for minimization: the failure is considered
    /// reproduced when a candidate program diverges with the same kind
    /// under the same configuration.
    pub fn signature(&self) -> String {
        format!("{}@{}", self.kind, self.config)
    }
}

/// The oracle's verdict on one program.
#[derive(Clone, Debug, Default)]
pub struct OracleReport {
    /// The baseline itself trapped: no ground truth, program skipped
    /// (not counted as a divergence).
    pub skipped: bool,
    /// Every failed check across the lattice. Empty == equivalence held.
    pub divergences: Vec<Divergence>,
    /// Static call-site classification of the program (Table 2 row).
    pub static_classes: ClassTotals,
    /// Dynamic (weighted) classification (Table 3 row).
    pub dynamic_classes: ClassTotals,
}

/// One point of the configuration lattice.
struct LatticePoint {
    name: &'static str,
    /// `None` = no inlining at this point.
    inline: Option<InlineConfig>,
    /// Run the classical optimization passes after (possible) inlining.
    opt: bool,
}

/// The names of every configuration the oracle runs, baseline included
/// (for reports and usage text).
pub fn config_names() -> Vec<&'static str> {
    let mut names = vec!["baseline"];
    names.extend(lattice(10, &[]).iter().map(|p| p.name));
    names
}

fn lattice(threshold: u64, fault_specs: &[String]) -> Vec<LatticePoint> {
    let armed = |mut cfg: InlineConfig| {
        let fault = FaultPlan::new();
        for spec in fault_specs {
            // Specs are validated by the driver before the campaign runs.
            let _ = fault.arm_spec(spec);
        }
        cfg.fault = fault;
        cfg.weight_threshold = threshold;
        cfg
    };
    vec![
        LatticePoint {
            name: "inline-default",
            inline: Some(armed(InlineConfig::default())),
            opt: false,
        },
        LatticePoint {
            name: "inline-tight-budget",
            inline: Some(armed(InlineConfig {
                code_growth_limit: 1.05,
                ..InlineConfig::default()
            })),
            opt: false,
        },
        LatticePoint {
            name: "inline-tight-stack",
            inline: Some(armed(InlineConfig {
                stack_bound: 64,
                ..InlineConfig::default()
            })),
            opt: false,
        },
        LatticePoint {
            name: "inline-aggressive",
            inline: Some({
                let mut cfg = armed(InlineConfig {
                    code_growth_limit: 4.0,
                    ..InlineConfig::default()
                });
                cfg.weight_threshold = 1;
                cfg
            }),
            opt: false,
        },
        LatticePoint {
            name: "inline-reverse",
            inline: Some(armed(InlineConfig {
                linearization: Linearization::ReverseNodeWeight,
                ..InlineConfig::default()
            })),
            opt: false,
        },
        LatticePoint {
            name: "inline-opt",
            inline: Some(armed(InlineConfig::default())),
            opt: true,
        },
        LatticePoint {
            name: "opt-only",
            inline: None,
            opt: true,
        },
    ]
}

/// Runs one program through the whole lattice and every invariant.
pub fn check_source(src: &str, oc: &OracleConfig) -> OracleReport {
    let mut report = OracleReport::default();
    let div = |report: &mut OracleReport, kind, config: &str, detail: String| {
        report.divergences.push(Divergence {
            kind,
            config: config.to_string(),
            detail,
        });
    };

    let module = match compile(&[Source::new("fuzz.c", src)]) {
        Ok(m) => m,
        Err(e) => {
            div(
                &mut report,
                DivergenceKind::Compile,
                "compile",
                format!("generated program failed to compile: {}", e.message),
            );
            return report;
        }
    };
    if let Err(errors) = verify_module(&module) {
        div(
            &mut report,
            DivergenceKind::Verify,
            "compile",
            format!("post-compile verification failed: {:?}", errors),
        );
        return report;
    }

    let runs = vec![(vec![], vec![])];
    let base = profile_runs(&module, &runs, &VmConfig::default());
    // The engine axis: whatever the default (bytecode) engine produced —
    // results or a trap — the tree-walking interpreter must reproduce it
    // exactly. Checked even on trapping baselines the oracle skips: trap
    // parity needs no ground truth.
    if let Some(detail) = engine_divergence(&base, &profile_runs(&module, &runs, &interp_config()))
    {
        div(&mut report, DivergenceKind::Engine, "baseline", detail);
    }
    let (base_profile, base_outs) = match base {
        Ok(x) => x,
        Err(_) => {
            // The original program traps: no ground truth to diff against.
            report.skipped = true;
            return report;
        }
    };
    let base_behavior: Vec<(Vec<u8>, i64)> = base_outs
        .into_iter()
        .map(|o| (o.stdout, o.exit_code))
        .collect();

    // I1 on the baseline profile.
    for r in base_profile.flow_residuals(&module) {
        div(
            &mut report,
            DivergenceKind::FlowConservation,
            "baseline",
            format!(
                "`{}`: {} entries recorded but arcs predict {}",
                module.function(r.func).name,
                r.entries,
                r.expected
            ),
        );
    }

    let avg = base_profile.averaged();
    let max_params = module
        .functions
        .iter()
        .map(|f| u64::from(f.num_params))
        .max()
        .unwrap_or(0);

    for point in lattice(oc.weight_threshold, &oc.fault_specs) {
        let mut m = module.clone();
        let mut inline_ran = false;
        if let Some(cfg) = &point.inline {
            let ir = inline_module(&mut m, &avg, cfg);
            inline_ran = true;
            if point.name == "inline-default" {
                report.static_classes = ir.classification.static_totals();
                report.dynamic_classes = ir.classification.dynamic_totals();
            }
            // Rollbacks are never expected on a clean compiler: each one
            // is a finding (and the designed-in signal of `--fault`).
            for incident in &ir.incidents {
                div(
                    &mut report,
                    DivergenceKind::Incident,
                    point.name,
                    incident.to_string(),
                );
            }
            // I2: exact size accounting, valid only for complete plans.
            if ir.incidents.is_empty() && ir.predicted_size != ir.size_expanded {
                div(
                    &mut report,
                    DivergenceKind::SizeAccounting,
                    point.name,
                    format!(
                        "plan predicted {} IL instructions, expansion measured {}",
                        ir.predicted_size, ir.size_expanded
                    ),
                );
            }
            // I3: expanded arcs respect the linear order.
            let pos = positions_of(&ir.order, module.functions.len());
            for r in &ir.records {
                if pos[r.callee.index()] >= pos[r.caller.index()] {
                    div(
                        &mut report,
                        DivergenceKind::LinearOrder,
                        point.name,
                        format!(
                            "expanded arc `{}` -> `{}` violates the linear order",
                            module.function(r.callee).name,
                            module.function(r.caller).name
                        ),
                    );
                }
            }
        }
        if point.opt {
            let fault = FaultPlan::new();
            for spec in &oc.fault_specs {
                let _ = fault.arm_spec(spec);
            }
            let _ = optimize_module_isolated(&mut m, &fault);
        }
        if let Err(errors) = verify_module(&m) {
            div(
                &mut report,
                DivergenceKind::Verify,
                point.name,
                format!("transformed module failed verification: {:?}", errors),
            );
            continue;
        }
        let after = profile_runs(&m, &runs, &VmConfig::default());
        if let Some(detail) = engine_divergence(&after, &profile_runs(&m, &runs, &interp_config()))
        {
            div(&mut report, DivergenceKind::Engine, point.name, detail);
        }
        match after {
            Err(e) => div(
                &mut report,
                DivergenceKind::Behavior,
                point.name,
                format!("transformed module trapped where the baseline ran: {e}"),
            ),
            Ok((after_profile, after_outs)) => {
                let after_behavior: Vec<(Vec<u8>, i64)> = after_outs
                    .into_iter()
                    .map(|o| (o.stdout, o.exit_code))
                    .collect();
                if after_behavior != base_behavior {
                    div(
                        &mut report,
                        DivergenceKind::Behavior,
                        point.name,
                        format!(
                            "observable behavior diverged: baseline {:?}, transformed {:?}",
                            summarize(&base_behavior),
                            summarize(&after_behavior)
                        ),
                    );
                }
                if inline_ran && !point.opt {
                    // I1 on the re-profile of the inlined module.
                    for r in after_profile.flow_residuals(&m) {
                        div(
                            &mut report,
                            DivergenceKind::FlowConservation,
                            point.name,
                            format!(
                                "post-inline `{}`: {} entries recorded but arcs predict {}",
                                m.function(r.func).name,
                                r.entries,
                                r.expected
                            ),
                        );
                    }
                    // I4: attribution conservation modulo call overhead.
                    if after_profile.calls > base_profile.calls {
                        div(
                            &mut report,
                            DivergenceKind::Attribution,
                            point.name,
                            format!(
                                "dynamic calls grew: {} -> {}",
                                base_profile.calls, after_profile.calls
                            ),
                        );
                    } else {
                        let eliminated = base_profile.calls - after_profile.calls;
                        let ceiling = base_profile.il_executed + eliminated * (max_params + 1);
                        if after_profile.il_executed < base_profile.il_executed
                            || after_profile.il_executed > ceiling
                        {
                            div(
                                &mut report,
                                DivergenceKind::Attribution,
                                point.name,
                                format!(
                                    "dynamic ILs {} outside [{}, {}] \
                                     ({} calls eliminated, max {} extra each)",
                                    after_profile.il_executed,
                                    base_profile.il_executed,
                                    ceiling,
                                    eliminated,
                                    max_params + 1
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    report
}

/// The non-default engine's configuration (the lattice itself runs on
/// [`VmConfig::default`], i.e. the bytecode engine).
fn interp_config() -> VmConfig {
    VmConfig {
        engine: Engine::Interp,
        ..VmConfig::default()
    }
}

/// Diff two engines' results for the same module and run set. `None`
/// means exact agreement: identical merged and per-run profiles,
/// identical observable behavior, or the very same trap.
fn engine_divergence(
    bytecode: &Result<(Profile, Vec<RunOutcome>), VmError>,
    interp: &Result<(Profile, Vec<RunOutcome>), VmError>,
) -> Option<String> {
    match (bytecode, interp) {
        (Ok((bp, bo)), Ok((ip, io))) => {
            for (idx, (b, i)) in bo.iter().zip(io).enumerate() {
                if (b.exit_code, &b.stdout, &b.stderr, &b.files)
                    != (i.exit_code, &i.stdout, &i.stderr, &i.files)
                {
                    return Some(format!(
                        "run {idx}: observable behavior differs between engines: \
                         bytecode ({}, {:?}), interp ({}, {:?})",
                        b.exit_code,
                        String::from_utf8_lossy(&b.stdout),
                        i.exit_code,
                        String::from_utf8_lossy(&i.stdout),
                    ));
                }
                if b.profile != i.profile {
                    return Some(format!(
                        "run {idx}: per-run profiles differ between engines"
                    ));
                }
            }
            (bp != ip).then(|| "merged profiles differ between engines".to_string())
        }
        (Err(b), Err(i)) => {
            (b != i).then(|| format!("engines trapped differently: bytecode `{b}`, interp `{i}`"))
        }
        (Ok(_), Err(e)) => Some(format!("interp trapped where bytecode completed: {e}")),
        (Err(e), Ok(_)) => Some(format!("bytecode trapped where interp completed: {e}")),
    }
}

fn summarize(behavior: &[(Vec<u8>, i64)]) -> Vec<(String, i64)> {
    behavior
        .iter()
        .map(|(out, code)| (String::from_utf8_lossy(out).into_owned(), *code))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn clean_programs_pass_the_whole_lattice() {
        for seed in 0..8u64 {
            let src = generate(seed);
            let report = check_source(&src, &OracleConfig::default());
            assert!(!report.skipped, "seed {seed} skipped");
            assert!(
                report.divergences.is_empty(),
                "seed {seed} diverged: {:?}\n{src}",
                report.divergences
            );
            assert!(report.static_classes.total() > 0);
        }
    }

    #[test]
    fn injected_expand_fault_surfaces_as_divergence() {
        let oc = OracleConfig {
            fault_specs: vec!["expand:verify".to_string()],
            ..OracleConfig::default()
        };
        let src = generate(3);
        let report = check_source(&src, &oc);
        // Every inline config trips the one-shot fault independently; the
        // rollback is reported as an incident (I2 is deliberately not
        // double-reported when an incident already explains the size gap).
        let incident_configs: Vec<&str> = report
            .divergences
            .iter()
            .filter(|d| d.kind == DivergenceKind::Incident)
            .map(|d| d.config.as_str())
            .collect();
        assert!(
            incident_configs.contains(&"inline-default"),
            "expected an incident divergence on every inline config: {:?}",
            report.divergences
        );
        assert!(
            incident_configs.len() >= 5,
            "fresh fault plans must fire per config: {incident_configs:?}"
        );
        assert!(
            !report
                .divergences
                .iter()
                .any(|d| d.kind == DivergenceKind::Behavior),
            "rollback must preserve behavior: {:?}",
            report.divergences
        );
    }

    #[test]
    fn behavior_divergence_is_detected_on_a_tampered_module() {
        // Sanity-check the diffing itself: a program whose baseline and
        // "transformed" behavior differ must not silently pass. We fake it
        // by checking an uncompilable program reports a compile divergence.
        let report = check_source("int main( { return 0; }", &OracleConfig::default());
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].kind, DivergenceKind::Compile);
    }

    #[test]
    fn engine_divergence_diffs_results_and_traps() {
        let ok = |il: u64| {
            Ok((
                Profile {
                    il_executed: il,
                    ..Profile::default()
                },
                Vec::new(),
            ))
        };
        assert_eq!(engine_divergence(&ok(10), &ok(10)), None);
        let d = engine_divergence(&ok(10), &ok(11)).expect("profile gap is a divergence");
        assert!(d.contains("merged profiles differ"), "{d}");
        assert_eq!(
            engine_divergence(&Err(VmError::NoMain), &Err(VmError::NoMain)),
            None,
            "identical traps are parity"
        );
        let d = engine_divergence(&ok(10), &Err(VmError::NoMain)).expect("trap asymmetry");
        assert!(d.contains("interp trapped"), "{d}");
        let d = engine_divergence(&Err(VmError::NoMain), &ok(10)).expect("trap asymmetry");
        assert!(d.contains("bytecode trapped"), "{d}");
    }

    #[test]
    fn config_names_cover_the_lattice() {
        let names = config_names();
        assert!(names.contains(&"baseline"));
        assert!(names.contains(&"inline-default"));
        assert!(names.contains(&"opt-only"));
        assert_eq!(names.len(), 8);
    }
}
