//! Convenience builder for constructing [`Function`] bodies.
//!
//! The front end drives a `FunctionBuilder` with a notion of the *current
//! block*; instructions are appended there, and helpers allocate result
//! registers on the fly.

use crate::function::{Function, Slot};
use crate::ids::{BlockId, CallSiteId, FuncId, GlobalId, Reg, SlotId};
use crate::inst::{BinOp, Callee, CmpOp, Inst, Terminator, UnOp, Width};

/// Incremental builder for one function.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    terminated: Vec<bool>,
}

impl FunctionBuilder {
    /// Starts a function with `num_params` formals (registers
    /// `r0..r{num_params}`) and an open entry block.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        let func = Function::new(name, num_params);
        FunctionBuilder {
            func,
            current: BlockId(0),
            terminated: vec![false],
        }
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Whether the current block has already been given a terminator.
    ///
    /// Lowering uses this to avoid emitting dead code after a `return`
    /// inside a statement list.
    pub fn is_terminated(&self) -> bool {
        self.terminated[self.current.index()]
    }

    /// Creates a new (open, unterminated) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let id = self.func.add_block(Terminator::Return(None));
        self.terminated.push(false);
        id
    }

    /// Makes `block` the current block.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        self.func.new_reg()
    }

    /// Adds a frame slot.
    pub fn add_slot(&mut self, name: impl Into<String>, size: u64, align: u64) -> SlotId {
        self.func.add_slot(Slot {
            name: name.into(),
            size,
            align,
        })
    }

    /// Appends a raw instruction to the current block.
    ///
    /// Instructions pushed after the block was terminated are silently
    /// dropped — they are unreachable by construction.
    pub fn push(&mut self, inst: Inst) {
        if self.is_terminated() {
            return;
        }
        self.func.block_mut(self.current).insts.push(inst);
    }

    /// Terminates the current block. Subsequent `push`/`terminate` calls on
    /// this block are ignored (unreachable code).
    pub fn terminate(&mut self, term: Terminator) {
        if self.is_terminated() {
            return;
        }
        self.func.block_mut(self.current).term = term;
        self.terminated[self.current.index()] = true;
    }

    /// `dst = value` into a fresh register.
    pub fn const_(&mut self, value: i64) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// `dst = src` into an existing register.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.push(Inst::Mov { dst, src });
    }

    /// Unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, src: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Un { op, dst, src });
        dst
    }

    /// Binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Bin { op, dst, lhs, rhs });
        dst
    }

    /// Comparison into a fresh register.
    pub fn cmp(&mut self, op: CmpOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Cmp { op, dst, lhs, rhs });
        dst
    }

    /// Truncate-and-extend into a fresh register (see [`Inst::Ext`]).
    pub fn push_ext(&mut self, src: Reg, width: Width, signed: bool) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Ext {
            dst,
            src,
            width,
            signed,
        });
        dst
    }

    /// Sized load into a fresh register.
    pub fn load(&mut self, addr: Reg, width: Width, signed: bool) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Load {
            dst,
            addr,
            width,
            signed,
        });
        dst
    }

    /// Sized store.
    pub fn store(&mut self, addr: Reg, src: Reg, width: Width) {
        self.push(Inst::Store { addr, src, width });
    }

    /// Address of a global into a fresh register.
    pub fn addr_of_global(&mut self, global: GlobalId) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::AddrOfGlobal { dst, global });
        dst
    }

    /// Address of a frame slot into a fresh register.
    pub fn addr_of_slot(&mut self, slot: SlotId) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::AddrOfSlot { dst, slot });
        dst
    }

    /// Address of a function into a fresh register.
    pub fn addr_of_func(&mut self, func: FuncId) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::AddrOfFunc { dst, func });
        dst
    }

    /// Emits a call. When `want_ret` is true a fresh destination register
    /// is allocated and returned.
    pub fn call(
        &mut self,
        site: CallSiteId,
        callee: Callee,
        args: Vec<Reg>,
        want_ret: bool,
    ) -> Option<Reg> {
        let dst = if want_ret { Some(self.new_reg()) } else { None };
        self.push(Inst::Call {
            site,
            callee,
            args,
            dst,
        });
        dst
    }

    /// Finishes the function. Any still-open block keeps its implicit
    /// `ret` terminator (the C front end relies on this for functions that
    /// fall off the end).
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = FunctionBuilder::new("f", 1);
        let one = b.const_(1);
        let sum = b.bin(BinOp::Add, Reg(0), one);
        b.terminate(Terminator::Return(Some(sum)));
        let f = b.finish();
        assert_eq!(f.num_regs, 3);
        assert_eq!(f.size(), 3);
    }

    #[test]
    fn push_after_terminate_is_dropped() {
        let mut b = FunctionBuilder::new("f", 0);
        b.terminate(Terminator::Return(None));
        b.const_(42); // register allocated, instruction dropped
        b.terminate(Terminator::Halt); // ignored
        let f = b.finish();
        assert!(f.block(BlockId(0)).insts.is_empty());
        assert_eq!(f.block(BlockId(0)).term, Terminator::Return(None));
    }

    #[test]
    fn multi_block_construction() {
        let mut b = FunctionBuilder::new("f", 0);
        let exit = b.new_block();
        let c = b.const_(0);
        b.terminate(Terminator::Branch {
            cond: c,
            then_to: exit,
            else_to: exit,
        });
        b.switch_to(exit);
        assert!(!b.is_terminated());
        b.terminate(Terminator::Return(None));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 2);
    }

    #[test]
    fn call_allocates_dst_only_when_wanted() {
        let mut b = FunctionBuilder::new("f", 0);
        let r = b.call(CallSiteId(0), Callee::Func(FuncId(0)), vec![], true);
        assert!(r.is_some());
        let none = b.call(CallSiteId(1), Callee::Func(FuncId(0)), vec![], false);
        assert!(none.is_none());
    }
}
