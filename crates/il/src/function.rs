//! Functions, basic blocks, and frame layout.

use crate::ids::{BlockId, CallSiteId, Reg, SlotId};
use crate::inst::{Callee, Inst, Terminator};

/// A stack slot in a function frame.
///
/// Slots hold locals that must live in memory: arrays, structs, and any
/// scalar whose address is taken. Scalars that never have their address
/// taken live purely in virtual registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Source-level name, for diagnostics and the IL printer. Inline
    /// expansion qualifies names with the callee's path (paper §5:
    /// "identifiers are qualified with proper path names").
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes (power of two).
    pub align: u64,
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The instructions, executed in order.
    pub insts: Vec<Inst>,
    /// The terminator deciding what executes next.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with no instructions and the given terminator.
    pub fn new(term: Terminator) -> Self {
        Block {
            insts: Vec::new(),
            term,
        }
    }
}

/// Per-call overhead charged to the control stack, in bytes.
///
/// Models the return address plus saved frame pointer a real calling
/// convention would push; used by the stack-usage estimate that guards
/// against the paper's control-stack-explosion hazard (§2.3.2).
pub const CALL_OVERHEAD_BYTES: u64 = 16;

/// A function body in IL form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Number of formal parameters; the formals occupy registers
    /// `r0..r{num_params}` on entry.
    pub num_params: u32,
    /// Total number of virtual registers used (`>= num_params`).
    pub num_regs: u32,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Frame slots for memory-resident locals.
    pub slots: Vec<Slot>,
}

impl Function {
    /// Creates an empty function with a single `Return(None)` entry block.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        Function {
            name: name.into(),
            num_params,
            num_regs: num_params,
            blocks: vec![Block::new(Terminator::Return(None))],
            slots: Vec::new(),
        }
    }

    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Code size in IL instructions (instructions plus terminators).
    ///
    /// This is the unit the paper uses both for the code-expansion budget
    /// and for the "function code sizes estimated in terms of intermediate
    /// code size" bookkeeping (§5).
    pub fn size(&self) -> u64 {
        self.blocks.iter().map(|b| b.insts.len() as u64 + 1).sum()
    }

    /// Frame size in bytes: all slots laid out in order with their
    /// alignment, plus the fixed per-call overhead.
    ///
    /// This is the "control stack usage" the cost function compares against
    /// its bound before expanding a call into a recursive region (§2.3.2).
    pub fn frame_size(&self) -> u64 {
        let mut off = 0u64;
        for s in &self.slots {
            let align = s.align.max(1);
            off = off.next_multiple_of(align);
            off += s.size;
        }
        off.next_multiple_of(8) + CALL_OVERHEAD_BYTES
    }

    /// Byte offsets of each slot within the frame, in slot order.
    pub fn slot_offsets(&self) -> Vec<u64> {
        let mut offsets = Vec::with_capacity(self.slots.len());
        let mut off = 0u64;
        for s in &self.slots {
            let align = s.align.max(1);
            off = off.next_multiple_of(align);
            offsets.push(off);
            off += s.size;
        }
        offsets
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Appends a slot and returns its id.
    pub fn add_slot(&mut self, slot: Slot) -> SlotId {
        let id = SlotId::from_index(self.slots.len());
        self.slots.push(slot);
        id
    }

    /// Appends a new block with the given terminator and returns its id.
    pub fn add_block(&mut self, term: Terminator) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block::new(term));
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over all call instructions as
    /// `(block, index_in_block, site, callee)`.
    pub fn call_sites(&self) -> impl Iterator<Item = (BlockId, usize, CallSiteId, Callee)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, b)| {
            b.insts.iter().enumerate().filter_map(move |(ii, inst)| {
                if let Inst::Call { site, callee, .. } = inst {
                    Some((BlockId::from_index(bi), ii, *site, *callee))
                } else {
                    None
                }
            })
        })
    }

    /// Number of static call instructions in the body.
    pub fn num_call_sites(&self) -> usize {
        self.call_sites().count()
    }

    /// Invokes `f` on every instruction (immutably), in block order.
    pub fn for_each_inst(&self, mut f: impl FnMut(&Inst)) {
        for b in &self.blocks {
            for i in &b.insts {
                f(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FuncId;
    use crate::inst::{BinOp, Callee};

    fn sample_function() -> Function {
        let mut f = Function::new("sample", 2);
        let r = f.new_reg();
        let entry = f.entry();
        f.block_mut(entry).insts.push(Inst::Bin {
            op: BinOp::Add,
            dst: r,
            lhs: Reg(0),
            rhs: Reg(1),
        });
        f.block_mut(entry).term = Terminator::Return(Some(r));
        f
    }

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new("f", 0);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.size(), 1); // just the terminator
    }

    #[test]
    fn size_counts_insts_and_terminators() {
        let f = sample_function();
        assert_eq!(f.size(), 2);
    }

    #[test]
    fn new_reg_increments() {
        let mut f = Function::new("f", 1);
        assert_eq!(f.num_regs, 1);
        let r = f.new_reg();
        assert_eq!(r, Reg(1));
        assert_eq!(f.num_regs, 2);
    }

    #[test]
    fn frame_layout_respects_alignment() {
        let mut f = Function::new("f", 0);
        f.add_slot(Slot {
            name: "c".into(),
            size: 1,
            align: 1,
        });
        f.add_slot(Slot {
            name: "l".into(),
            size: 8,
            align: 8,
        });
        assert_eq!(f.slot_offsets(), vec![0, 8]);
        assert_eq!(f.frame_size(), 16 + CALL_OVERHEAD_BYTES);
    }

    #[test]
    fn empty_frame_still_has_call_overhead() {
        let f = Function::new("f", 0);
        assert_eq!(f.frame_size(), CALL_OVERHEAD_BYTES);
    }

    #[test]
    fn call_sites_reports_calls() {
        let mut f = Function::new("f", 0);
        let entry = f.entry();
        f.block_mut(entry).insts.push(Inst::Call {
            site: CallSiteId(7),
            callee: Callee::Func(FuncId(1)),
            args: vec![],
            dst: None,
        });
        let sites: Vec<_> = f.call_sites().collect();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].2, CallSiteId(7));
        assert_eq!(f.num_call_sites(), 1);
    }
}
