//! Index newtypes used throughout the IL.
//!
//! Every entity in a [`crate::Module`] is referred to by a small integer
//! index wrapped in a dedicated newtype, so that a block index can never be
//! confused with a register or a call site (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index as a `usize`, for indexing into the
            /// owning table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a table index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id! {
    /// Identifies a function within a [`crate::Module`].
    FuncId, "@f"
}

define_id! {
    /// Identifies a basic block within a [`crate::Function`].
    ///
    /// Block 0 is always the entry block.
    BlockId, "b"
}

define_id! {
    /// Identifies a virtual register within a [`crate::Function`].
    ///
    /// Registers `r0..r{num_params}` hold the formal parameters on entry.
    Reg, "r"
}

define_id! {
    /// Identifies a stack slot in a function's frame (a local variable whose
    /// address is taken, an array, or a struct).
    SlotId, "s"
}

define_id! {
    /// Identifies a global variable within a [`crate::Module`].
    GlobalId, "@g"
}

define_id! {
    /// Identifies an external function declaration — a function whose body
    /// is *not* available to the compiler (the paper's "external functions":
    /// system calls and closed library routines).
    ExternId, "@x"
}

define_id! {
    /// Uniquely identifies a static call site across the whole module.
    ///
    /// The paper requires each call-graph arc to carry a unique identifier
    /// because several arcs may connect the same caller/callee pair (§2.2).
    /// Call sites are never reused: when inline expansion duplicates a call
    /// instruction, the copy receives a fresh `CallSiteId`.
    CallSiteId, "cs"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let f = FuncId::from_index(7);
        assert_eq!(f.index(), 7);
        assert_eq!(usize::from(f), 7);
        assert_eq!(f, FuncId(7));
    }

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(FuncId(3).to_string(), "@f3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(Reg(12).to_string(), "r12");
        assert_eq!(SlotId(1).to_string(), "s1");
        assert_eq!(GlobalId(2).to_string(), "@g2");
        assert_eq!(ExternId(4).to_string(), "@x4");
        assert_eq!(CallSiteId(9).to_string(), "cs9");
    }

    #[test]
    fn id_debug_matches_display() {
        assert_eq!(format!("{:?}", Reg(5)), "r5");
    }

    #[test]
    fn id_ordering_follows_index() {
        assert!(BlockId(1) < BlockId(2));
        assert!(Reg(0) < Reg(1));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn id_from_huge_index_panics() {
        let _ = FuncId::from_index(usize::MAX);
    }
}
