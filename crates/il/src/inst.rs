//! IL instructions, operators, and block terminators.
//!
//! The IL is a classic (non-SSA) three-address code, as used by compiler
//! mid-ends of the paper's era: each function owns a set of virtual
//! registers, every register holds a 64-bit integer, and memory is accessed
//! through explicit sized loads and stores.

use crate::ids::{BlockId, CallSiteId, ExternId, FuncId, GlobalId, Reg, SlotId};

/// Width of a memory access in bytes.
///
/// The front end maps C types onto widths: `char` → [`Width::W1`],
/// `short` → [`Width::W2`], `int` → [`Width::W4`], `long` and pointers →
/// [`Width::W8`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// One byte.
    W1,
    /// Two bytes.
    W2,
    /// Four bytes.
    W4,
    /// Eight bytes.
    W8,
}

impl Width {
    /// Number of bytes covered by this width.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Builds a width from a byte count.
    ///
    /// Returns `None` unless `bytes` is 1, 2, 4, or 8.
    pub fn from_bytes(bytes: u64) -> Option<Self> {
        match bytes {
            1 => Some(Width::W1),
            2 => Some(Width::W2),
            4 => Some(Width::W4),
            8 => Some(Width::W8),
            _ => None,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement (`~`).
    BitNot,
    /// Logical negation: yields 1 if the operand is 0, otherwise 0.
    LogNot,
}

/// Binary arithmetic and bitwise operators.
///
/// Division and remainder come in signed and unsigned flavours because the
/// front end lowers C's unsigned arithmetic onto the same 64-bit registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on division by zero).
    Div,
    /// Signed remainder (traps on division by zero).
    Rem,
    /// Unsigned division.
    UDiv,
    /// Unsigned remainder.
    URem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (shift count masked to 0..=63).
    Shl,
    /// Arithmetic (sign-propagating) right shift.
    Shr,
    /// Logical (zero-filling) right shift.
    UShr,
}

/// Comparison operators; the result register receives 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
}

/// The target of a call instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Direct call to a user function whose body is in the module.
    Func(FuncId),
    /// Call to an external function — the body is unavailable, so the call
    /// graph routes this arc through the `$$$` node (paper §3.2).
    Ext(ExternId),
    /// Indirect call through a function pointer held in a register — routed
    /// through the `###` node (paper §3.2).
    Reg(Reg),
}

/// A single three-address IL instruction.
///
/// Every instruction counts as one "intermediate instruction" (IL) in the
/// dynamic counts reported by the profiler, matching the paper's
/// measurement unit (§4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op src`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs op rhs` for a comparison; `dst` receives 0 or 1.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = &global`.
    AddrOfGlobal {
        /// Destination register.
        dst: Reg,
        /// Global whose address is taken.
        global: GlobalId,
    },
    /// `dst = &slot` — address of a stack slot in the current frame.
    AddrOfSlot {
        /// Destination register.
        dst: Reg,
        /// Frame slot whose address is taken.
        slot: SlotId,
    },
    /// `dst = &func` — materializes a function pointer.
    AddrOfFunc {
        /// Destination register.
        dst: Reg,
        /// Function whose address is taken.
        func: FuncId,
    },
    /// `dst = extend(truncate(src, width))` — truncates `src` to `width`
    /// bytes and sign- or zero-extends back to 64 bits. Lowered from C
    /// casts and stores into narrow register-allocated variables.
    Ext {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Width to truncate to.
        width: Width,
        /// Whether to sign-extend (`true`) or zero-extend (`false`).
        signed: bool,
    },
    /// `dst = *(width*)addr`, sign- or zero-extended to 64 bits.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address register.
        addr: Reg,
        /// Access width.
        width: Width,
        /// Whether to sign-extend (`true`) or zero-extend (`false`).
        signed: bool,
    },
    /// `*(width*)addr = src` (truncating to `width`).
    Store {
        /// Address register.
        addr: Reg,
        /// Value register.
        src: Reg,
        /// Access width.
        width: Width,
    },
    /// `dst = callee(args...)`.
    ///
    /// Each call instruction carries a module-unique [`CallSiteId`]; the
    /// weighted call graph keys its arcs on this id (§2.2).
    Call {
        /// Unique static call-site identifier.
        site: CallSiteId,
        /// Call target.
        callee: Callee,
        /// Argument registers, in order.
        args: Vec<Reg>,
        /// Register receiving the return value, if used.
        dst: Option<Reg>,
    },
}

impl Inst {
    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::AddrOfGlobal { dst, .. }
            | Inst::AddrOfSlot { dst, .. }
            | Inst::AddrOfFunc { dst, .. }
            | Inst::Ext { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } => *dst,
        }
    }

    /// Invokes `f` for every register read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match self {
            Inst::Const { .. }
            | Inst::AddrOfGlobal { .. }
            | Inst::AddrOfSlot { .. }
            | Inst::AddrOfFunc { .. } => {}
            Inst::Mov { src, .. } | Inst::Un { src, .. } | Inst::Ext { src, .. } => f(*src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { addr, src, .. } => {
                f(*addr);
                f(*src);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Reg(r) = callee {
                    f(*r);
                }
                for a in args {
                    f(*a);
                }
            }
        }
    }

    /// Whether this instruction has an effect beyond writing its
    /// destination register (memory writes, calls).
    ///
    /// Loads are treated as effect-free: the VM traps on wild addresses,
    /// but the IL's dead-code elimination may delete a load whose result
    /// is unused, exactly as IMPACT-I's optimizer would.
    pub fn has_side_effect(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }

    /// Whether this is a call instruction.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }
}

/// Block terminator: every basic block ends in exactly one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `cond != 0`.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Target when `cond != 0`.
        then_to: BlockId,
        /// Target when `cond == 0`.
        else_to: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return(Option<Reg>),
    /// Stops the whole program (reached only via generated shutdown stubs).
    Halt,
}

impl Terminator {
    /// Invokes `f` for every successor block of this terminator.
    pub fn for_each_successor(&self, mut f: impl FnMut(BlockId)) {
        match self {
            Terminator::Jump(b) => f(*b),
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                f(*then_to);
                f(*else_to);
            }
            Terminator::Return(_) | Terminator::Halt => {}
        }
    }

    /// Rewrites every successor block id through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                *then_to = f(*then_to);
                *else_to = f(*else_to);
            }
            Terminator::Return(_) | Terminator::Halt => {}
        }
    }

    /// Whether this terminator transfers control within the function
    /// (a jump or branch), as opposed to leaving it.
    ///
    /// The profiler counts executed intra-function transfers as "control
    /// transfers other than function call/return" (Table 1's `control`
    /// column).
    pub fn is_control_transfer(&self) -> bool {
        matches!(self, Terminator::Jump(_) | Terminator::Branch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_round_trips_through_bytes() {
        for w in [Width::W1, Width::W2, Width::W4, Width::W8] {
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bytes(3), None);
        assert_eq!(Width::from_bytes(16), None);
    }

    #[test]
    fn def_and_uses_of_bin() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(0), Reg(1)]);
        assert!(!i.has_side_effect());
    }

    #[test]
    fn store_has_no_def_and_two_uses() {
        let i = Inst::Store {
            addr: Reg(4),
            src: Reg(5),
            width: Width::W4,
        };
        assert_eq!(i.def(), None);
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(4), Reg(5)]);
        assert!(i.has_side_effect());
    }

    #[test]
    fn indirect_call_uses_callee_register() {
        let i = Inst::Call {
            site: CallSiteId(0),
            callee: Callee::Reg(Reg(9)),
            args: vec![Reg(1)],
            dst: Some(Reg(2)),
        };
        assert!(i.is_call());
        assert!(i.has_side_effect());
        assert_eq!(i.def(), Some(Reg(2)));
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(9), Reg(1)]);
    }

    #[test]
    fn terminator_successors() {
        let mut succs = Vec::new();
        Terminator::Branch {
            cond: Reg(0),
            then_to: BlockId(1),
            else_to: BlockId(2),
        }
        .for_each_successor(|b| succs.push(b));
        assert_eq!(succs, vec![BlockId(1), BlockId(2)]);

        succs.clear();
        Terminator::Return(None).for_each_successor(|b| succs.push(b));
        assert!(succs.is_empty());
    }

    #[test]
    fn map_successors_rewrites_targets() {
        let mut t = Terminator::Jump(BlockId(3));
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(t, Terminator::Jump(BlockId(13)));
    }

    #[test]
    fn control_transfer_classification() {
        assert!(Terminator::Jump(BlockId(0)).is_control_transfer());
        assert!(!Terminator::Return(None).is_control_transfer());
        assert!(!Terminator::Halt.is_control_transfer());
    }
}
