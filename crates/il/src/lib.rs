//! # impact-il — three-address intermediate language
//!
//! The IL is the program representation shared by every stage of this
//! reproduction of Hwu & Chang, *Inline Function Expansion for Compiling C
//! Programs* (PLDI 1989): the C front end lowers into it, the profiling VM
//! executes it, and the inline expander transforms it.
//!
//! Design points that mirror the paper:
//!
//! * **Intermediate instructions are the unit of measurement.** Dynamic
//!   instruction counts (`IL's` in the paper's tables) count executed IL
//!   instructions, and code-size bookkeeping counts static IL instructions
//!   ([`Function::size`]).
//! * **Call sites carry unique ids** ([`CallSiteId`]) because several
//!   call-graph arcs may connect the same caller/callee pair (§2.2).
//! * **External functions are first-class** ([`ExternDecl`]): they have
//!   declarations but no bodies, exactly like the system calls and library
//!   archives the paper's compiler could not see (§2.5).
//! * **Function pointers work**: [`Inst::AddrOfFunc`] materializes them,
//!   [`Callee::Reg`] calls through them, and [`Global::func_relocs`] lets
//!   dispatch tables live in initialized globals.
//!
//! ## Example
//!
//! Build `int add1(int x) { return x + 1; }` by hand and print it:
//!
//! ```
//! use impact_il::{BinOp, FunctionBuilder, Module, Reg, Terminator};
//!
//! let mut module = Module::new();
//! let mut b = FunctionBuilder::new("add1", 1);
//! let one = b.const_(1);
//! let sum = b.bin(BinOp::Add, Reg(0), one);
//! b.terminate(Terminator::Return(Some(sum)));
//! module.add_function(b.finish());
//!
//! impact_il::verify_module(&module).expect("well-formed");
//! let text = impact_il::module_to_string(&module);
//! assert!(text.contains("add"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod function;
mod ids;
mod inst;
mod module;
mod printer;
mod verify;

pub use builder::FunctionBuilder;
pub use function::{Block, Function, Slot, CALL_OVERHEAD_BYTES};
pub use ids::{BlockId, CallSiteId, ExternId, FuncId, GlobalId, Reg, SlotId};
pub use inst::{BinOp, Callee, CmpOp, Inst, Terminator, UnOp, Width};
pub use module::{ExternDecl, Global, Module};
pub use printer::{function_to_string, module_to_string, write_inst, write_terminator};
pub use verify::{verify_function, verify_module, VerifyError};
