//! The translation unit: functions, globals, and external declarations.

use std::collections::{HashMap, HashSet};

use crate::function::Function;
use crate::ids::{CallSiteId, ExternId, FuncId, GlobalId};
use crate::inst::{Callee, Inst};

/// A global variable with optional initial bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Source-level name (unique within the module).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes (power of two).
    pub align: u64,
    /// Initial contents; bytes beyond `init.len()` are zero.
    pub init: Vec<u8>,
    /// Function-pointer relocations: at byte `offset`, the loader writes
    /// the runtime address of `func` (8 bytes). This is how dispatch
    /// tables — the source of the paper's call-through-pointer arcs —
    /// are initialized.
    pub func_relocs: Vec<(u64, FuncId)>,
}

impl Global {
    /// A zero-initialized global.
    pub fn zeroed(name: impl Into<String>, size: u64, align: u64) -> Self {
        Global {
            name: name.into(),
            size,
            align,
            init: Vec::new(),
            func_relocs: Vec::new(),
        }
    }

    /// A global initialized with the given bytes.
    pub fn with_bytes(name: impl Into<String>, bytes: Vec<u8>, align: u64) -> Self {
        Global {
            name: name.into(),
            size: bytes.len() as u64,
            align,
            init: bytes,
            func_relocs: Vec::new(),
        }
    }
}

/// Declaration of an external function: a routine whose body the compiler
/// cannot see (the paper's system calls and closed libraries, §2.5).
///
/// The VM implements these as builtins; the inliner can never expand them
/// and must assume the worst about what they call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExternDecl {
    /// Name, e.g. `__fgetc`.
    pub name: String,
    /// Number of parameters.
    pub num_params: u32,
    /// Whether the function produces a return value.
    pub has_ret: bool,
}

/// A whole program in IL form.
///
/// `Module` is the unit the profiler executes and the inliner transforms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// Function bodies; indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Global variables; indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// External declarations; indexed by [`ExternId`].
    pub externs: Vec<ExternDecl>,
    next_call_site: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::from_index(self.functions.len());
        self.functions.push(f);
        id
    }

    /// Adds a global and returns its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(g);
        id
    }

    /// Adds an external declaration and returns its id.
    pub fn add_extern(&mut self, e: ExternDecl) -> ExternId {
        let id = ExternId::from_index(self.externs.len());
        self.externs.push(e);
        id
    }

    /// Allocates a module-unique call-site id.
    ///
    /// Call sites are never reused, so ids stay unique even as inline
    /// expansion clones call instructions.
    pub fn fresh_call_site(&mut self) -> CallSiteId {
        let id = CallSiteId(self.next_call_site);
        self.next_call_site += 1;
        id
    }

    /// Number of call-site ids ever allocated (an upper bound for dense
    /// per-site tables).
    pub fn call_site_limit(&self) -> u32 {
        self.next_call_site
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks up a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }

    /// Looks up an external declaration by name.
    pub fn extern_by_name(&self, name: &str) -> Option<ExternId> {
        self.externs
            .iter()
            .position(|e| e.name == name)
            .map(ExternId::from_index)
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_index)
    }

    /// The program entry point, `main` (the paper's call-graph root).
    pub fn main_id(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Total static code size in IL instructions.
    pub fn total_size(&self) -> u64 {
        self.functions.iter().map(Function::size).sum()
    }

    /// All functions whose address is taken anywhere: by an `AddrOfFunc`
    /// instruction or a global-initializer relocation.
    ///
    /// This is the paper's "maximum set … of all functions whose addresses
    /// have been used in computation" — the conservative target set for
    /// calls through pointers (§2.5).
    pub fn address_taken_funcs(&self) -> HashSet<FuncId> {
        let mut set = HashSet::new();
        for g in &self.globals {
            for (_, f) in &g.func_relocs {
                set.insert(*f);
            }
        }
        for f in &self.functions {
            f.for_each_inst(|i| {
                if let Inst::AddrOfFunc { func, .. } = i {
                    set.insert(*func);
                }
            });
        }
        set
    }

    /// Iterates every static call site in the module as
    /// `(caller, site, callee)`.
    pub fn all_call_sites(&self) -> Vec<(FuncId, CallSiteId, Callee)> {
        let mut out = Vec::new();
        for (fi, f) in self.functions.iter().enumerate() {
            for (_, _, site, callee) in f.call_sites() {
                out.push((FuncId::from_index(fi), site, callee));
            }
        }
        out
    }

    /// A map from call-site id to its caller function.
    pub fn site_callers(&self) -> HashMap<CallSiteId, FuncId> {
        self.all_call_sites()
            .into_iter()
            .map(|(caller, site, _)| (site, caller))
            .collect()
    }

    /// Whether the module contains any call to an external function.
    ///
    /// When it does, the worst-case assumptions of §2.5 kick in: every
    /// function must be presumed reachable and callable through pointers.
    pub fn has_external_calls(&self) -> bool {
        self.functions.iter().any(|f| {
            f.call_sites()
                .any(|(_, _, _, callee)| matches!(callee, Callee::Ext(_)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::inst::Terminator;

    fn module_with_two_funcs() -> Module {
        let mut m = Module::new();
        m.add_function(Function::new("main", 0));
        m.add_function(Function::new("helper", 1));
        m
    }

    #[test]
    fn lookup_by_name() {
        let m = module_with_two_funcs();
        assert_eq!(m.func_by_name("helper"), Some(FuncId(1)));
        assert_eq!(m.func_by_name("missing"), None);
        assert_eq!(m.main_id(), Some(FuncId(0)));
    }

    #[test]
    fn fresh_call_sites_are_unique() {
        let mut m = Module::new();
        let a = m.fresh_call_site();
        let b = m.fresh_call_site();
        assert_ne!(a, b);
        assert_eq!(m.call_site_limit(), 2);
    }

    #[test]
    fn address_taken_via_inst_and_reloc() {
        let mut m = module_with_two_funcs();
        let entry = m.function(FuncId(0)).entry();
        let r = m.function_mut(FuncId(0)).new_reg();
        m.function_mut(FuncId(0))
            .block_mut(entry)
            .insts
            .push(Inst::AddrOfFunc {
                dst: r,
                func: FuncId(1),
            });
        let mut g = Global::zeroed("table", 8, 8);
        g.func_relocs.push((0, FuncId(0)));
        m.add_global(g);
        let taken = m.address_taken_funcs();
        assert!(taken.contains(&FuncId(0)));
        assert!(taken.contains(&FuncId(1)));
    }

    #[test]
    fn total_size_sums_functions() {
        let m = module_with_two_funcs();
        assert_eq!(m.total_size(), 2); // two bare Return terminators
    }

    #[test]
    fn has_external_calls_detects_ext_callee() {
        let mut m = module_with_two_funcs();
        assert!(!m.has_external_calls());
        let x = m.add_extern(ExternDecl {
            name: "__putc".into(),
            num_params: 1,
            has_ret: false,
        });
        let site = m.fresh_call_site();
        let f = m.function_mut(FuncId(0));
        let r = f.new_reg();
        let entry = f.entry();
        f.block_mut(entry)
            .insts
            .push(Inst::Const { dst: r, value: 65 });
        f.block_mut(entry).insts.push(Inst::Call {
            site,
            callee: Callee::Ext(x),
            args: vec![r],
            dst: None,
        });
        f.block_mut(entry).term = Terminator::Return(None);
        assert!(m.has_external_calls());
    }

    #[test]
    fn all_call_sites_lists_caller_and_callee() {
        let mut m = module_with_two_funcs();
        let site = m.fresh_call_site();
        let entry = m.function(FuncId(0)).entry();
        m.function_mut(FuncId(0))
            .block_mut(entry)
            .insts
            .push(Inst::Call {
                site,
                callee: Callee::Func(FuncId(1)),
                args: vec![Reg(0)],
                dst: None,
            });
        let sites = m.all_call_sites();
        assert_eq!(sites, vec![(FuncId(0), site, Callee::Func(FuncId(1)))]);
        assert_eq!(m.site_callers()[&site], FuncId(0));
    }
}
