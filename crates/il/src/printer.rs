//! Textual IL dump, for debugging and golden tests.
//!
//! The format is line-oriented and stable:
//!
//! ```text
//! func @f0 main(0 params, 3 regs) {
//!   slots: s0 buf[64]
//!   b0:
//!     r0 = const 7
//!     r1 = call cs0 @f1(r0)
//!     ret r1
//! }
//! ```

use std::fmt::{self, Write as _};

use crate::function::Function;
use crate::inst::{BinOp, Callee, CmpOp, Inst, Terminator, UnOp, Width};
use crate::module::Module;

fn un_op_str(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::BitNot => "bitnot",
        UnOp::LogNot => "lognot",
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::UDiv => "udiv",
        BinOp::URem => "urem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::UShr => "ushr",
    }
}

fn cmp_op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::SLt => "slt",
        CmpOp::SLe => "sle",
        CmpOp::SGt => "sgt",
        CmpOp::SGe => "sge",
        CmpOp::ULt => "ult",
        CmpOp::ULe => "ule",
        CmpOp::UGt => "ugt",
        CmpOp::UGe => "uge",
    }
}

fn width_str(w: Width) -> &'static str {
    match w {
        Width::W1 => "w1",
        Width::W2 => "w2",
        Width::W4 => "w4",
        Width::W8 => "w8",
    }
}

/// Writes one instruction in the stable textual form.
pub fn write_inst(out: &mut impl fmt::Write, module: &Module, inst: &Inst) -> fmt::Result {
    match inst {
        Inst::Const { dst, value } => write!(out, "{dst} = const {value}"),
        Inst::Mov { dst, src } => write!(out, "{dst} = {src}"),
        Inst::Un { op, dst, src } => write!(out, "{dst} = {} {src}", un_op_str(*op)),
        Inst::Bin { op, dst, lhs, rhs } => {
            write!(out, "{dst} = {} {lhs}, {rhs}", bin_op_str(*op))
        }
        Inst::Cmp { op, dst, lhs, rhs } => {
            write!(out, "{dst} = {} {lhs}, {rhs}", cmp_op_str(*op))
        }
        Inst::AddrOfGlobal { dst, global } => {
            let name = module
                .globals
                .get(global.index())
                .map(|g| g.name.as_str())
                .unwrap_or("?");
            write!(out, "{dst} = addr {global} ; {name}")
        }
        Inst::AddrOfSlot { dst, slot } => write!(out, "{dst} = addr {slot}"),
        Inst::AddrOfFunc { dst, func } => {
            let name = module
                .functions
                .get(func.index())
                .map(|f| f.name.as_str())
                .unwrap_or("?");
            write!(out, "{dst} = addr {func} ; {name}")
        }
        Inst::Ext {
            dst,
            src,
            width,
            signed,
        } => write!(
            out,
            "{dst} = ext.{}{} {src}",
            width_str(*width),
            if *signed { "s" } else { "u" }
        ),
        Inst::Load {
            dst,
            addr,
            width,
            signed,
        } => write!(
            out,
            "{dst} = load.{}{} [{addr}]",
            width_str(*width),
            if *signed { "s" } else { "u" }
        ),
        Inst::Store { addr, src, width } => {
            write!(out, "store.{} [{addr}], {src}", width_str(*width))
        }
        Inst::Call {
            site,
            callee,
            args,
            dst,
        } => {
            if let Some(d) = dst {
                write!(out, "{d} = ")?;
            }
            write!(out, "call {site} ")?;
            match callee {
                Callee::Func(f) => {
                    let name = module
                        .functions
                        .get(f.index())
                        .map(|f| f.name.as_str())
                        .unwrap_or("?");
                    write!(out, "{f}:{name}")?;
                }
                Callee::Ext(x) => {
                    let name = module
                        .externs
                        .get(x.index())
                        .map(|e| e.name.as_str())
                        .unwrap_or("?");
                    write!(out, "{x}:{name}")?;
                }
                Callee::Reg(r) => write!(out, "*{r}")?,
            }
            write!(out, "(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write!(out, "{a}")?;
            }
            write!(out, ")")
        }
    }
}

/// Writes a terminator in the stable textual form.
pub fn write_terminator(out: &mut impl fmt::Write, term: &Terminator) -> fmt::Result {
    match term {
        Terminator::Jump(b) => write!(out, "jump {b}"),
        Terminator::Branch {
            cond,
            then_to,
            else_to,
        } => write!(out, "branch {cond}, {then_to}, {else_to}"),
        Terminator::Return(Some(r)) => write!(out, "ret {r}"),
        Terminator::Return(None) => write!(out, "ret"),
        Terminator::Halt => write!(out, "halt"),
    }
}

/// Renders one function.
pub fn function_to_string(module: &Module, func: &Function) -> String {
    let mut s = String::new();
    let id = module
        .func_by_name(&func.name)
        .map(|f| f.to_string())
        .unwrap_or_else(|| "@f?".into());
    let _ = writeln!(
        s,
        "func {id} {}({} params, {} regs) {{",
        func.name, func.num_params, func.num_regs
    );
    if !func.slots.is_empty() {
        let _ = write!(s, "  slots:");
        for (i, slot) in func.slots.iter().enumerate() {
            let _ = write!(s, " s{i} {}[{}]", slot.name, slot.size);
        }
        let _ = writeln!(s);
    }
    for (bi, b) in func.blocks.iter().enumerate() {
        let _ = writeln!(s, "  b{bi}:");
        for inst in &b.insts {
            let _ = write!(s, "    ");
            let _ = write_inst(&mut s, module, inst);
            let _ = writeln!(s);
        }
        let _ = write!(s, "    ");
        let _ = write_terminator(&mut s, &b.term);
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders the whole module: externs, globals, then every function.
pub fn module_to_string(module: &Module) -> String {
    let mut s = String::new();
    for (i, x) in module.externs.iter().enumerate() {
        let _ = writeln!(
            s,
            "extern @x{i} {}({} params){}",
            x.name,
            x.num_params,
            if x.has_ret { " -> val" } else { "" }
        );
    }
    for (i, g) in module.globals.iter().enumerate() {
        let _ = writeln!(
            s,
            "global @g{i} {}[{}] align {}{}",
            g.name,
            g.size,
            g.align,
            if g.init.is_empty() { "" } else { " init" }
        );
    }
    for f in &module.functions {
        s.push_str(&function_to_string(module, f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::ids::{FuncId, Reg};

    #[test]
    fn prints_simple_function() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let r = f.new_reg();
        let site = m.fresh_call_site();
        let entry = f.entry();
        f.block_mut(entry)
            .insts
            .push(Inst::Const { dst: r, value: 7 });
        f.block_mut(entry).insts.push(Inst::Call {
            site,
            callee: Callee::Func(FuncId(1)),
            args: vec![r],
            dst: Some(r),
        });
        f.block_mut(entry).term = Terminator::Return(Some(r));
        m.add_function(f);
        let mut id = Function::new("id", 1);
        let e = id.entry();
        id.block_mut(e).term = Terminator::Return(Some(Reg(0)));
        m.add_function(id);

        let text = module_to_string(&m);
        assert!(text.contains("func @f0 main(0 params, 1 regs)"));
        assert!(text.contains("r0 = const 7"));
        assert!(text.contains("r0 = call cs0 @f1:id(r0)"));
        assert!(text.contains("ret r0"));
    }

    #[test]
    fn prints_memory_ops_with_width_and_sign() {
        let m = Module::new();
        let mut s = String::new();
        write_inst(
            &mut s,
            &m,
            &Inst::Load {
                dst: Reg(1),
                addr: Reg(0),
                width: Width::W1,
                signed: true,
            },
        )
        .unwrap();
        assert_eq!(s, "r1 = load.w1s [r0]");
        s.clear();
        write_inst(
            &mut s,
            &m,
            &Inst::Store {
                addr: Reg(0),
                src: Reg(1),
                width: Width::W8,
            },
        )
        .unwrap();
        assert_eq!(s, "store.w8 [r0], r1");
    }

    #[test]
    fn prints_terminators() {
        let mut s = String::new();
        write_terminator(
            &mut s,
            &Terminator::Branch {
                cond: Reg(3),
                then_to: crate::ids::BlockId(1),
                else_to: crate::ids::BlockId(2),
            },
        )
        .unwrap();
        assert_eq!(s, "branch r3, b1, b2");
    }
}
